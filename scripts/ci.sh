#!/usr/bin/env bash
# Offline CI: build, test, lint, and a one-iteration benchmark smoke run.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release (workspace)"
cargo build --release --workspace

echo "== cargo test -q (workspace)"
cargo test -q --release --workspace

echo "== cargo clippy -- -D warnings (workspace, all targets)"
cargo clippy --release --workspace --all-targets -- -D warnings

echo "== wfs-analyze (banned-pattern scan vs analyze-allow.txt)"
cargo run --release -p wfs-analyze -- --workspace

echo "== quickbench smoke (1 iteration)"
cargo run --release -p wfs-bench --bin quickbench -- 1 >/dev/null
test -s BENCH_sched_time.json
echo "BENCH_sched_time.json written"

echo "CI OK"
