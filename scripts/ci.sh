#!/usr/bin/env bash
# Offline CI: build, test, lint, and a one-iteration benchmark smoke run.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release (workspace)"
cargo build --release --workspace

echo "== cargo test -q (workspace)"
cargo test -q --release --workspace

echo "== cargo clippy -- -D warnings (workspace, all targets)"
cargo clippy --release --workspace --all-targets -- -D warnings

echo "== wfs-analyze (banned-pattern scan vs analyze-allow.txt)"
cargo run --release -p wfs-analyze -- --workspace

echo "== fault-injection smoke grid (2 workflows x 2 policies, fixed seeds)"
WFS=target/release/wfs
FAULTS_TMP=$(mktemp -d)
trap 'rm -rf "$FAULTS_TMP"' EXIT
"$WFS" gen montage 30 --seed 1 -o "$FAULTS_TMP/montage30.json" >/dev/null
"$WFS" gen ligo 30 --seed 2 -o "$FAULTS_TMP/ligo30.json" >/dev/null
for wf in montage30 ligo30; do
  for pol in retry reschedule; do
    # --lint makes violations a non-zero exit: recovered plans must stay
    # invariant-clean in every epoch.
    "$WFS" faults "$FAULTS_TMP/$wf.json" --budget 3.0 --policy "$pol" \
      --mtbf 600 --boot-fail 0.1 --seed 7 --max-epochs 24 --lint >/dev/null
    echo "  faults $wf/$pol: lint-clean"
  done
done

echo "== trace round-trip smoke (wfs trace + faults --trace/--ledger)"
"$WFS" trace "$FAULTS_TMP/montage30.json" --budget 2.0 --seed 3 --ledger --counters \
  -o "$FAULTS_TMP/montage30.trace.json" | grep -q "reconciles  yes (exact)"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$FAULTS_TMP/montage30.trace.json" \
  2>/dev/null || test -s "$FAULTS_TMP/montage30.trace.json"
"$WFS" faults "$FAULTS_TMP/ligo30.json" --budget 3.0 --mtbf 600 --boot-fail 0.1 \
  --seed 7 --trace "$FAULTS_TMP/ligo30.trace.json" --ledger | grep -q "reconciles  yes (exact)"
test -s "$FAULTS_TMP/ligo30.trace.json"
echo "  trace exports written, ledgers reconcile exactly"

echo "== quickbench smoke + zero-overhead gate (1 iteration vs pinned medians)"
# Writes to a temp file (the pin is regenerated only by deliberate 9-iteration
# runs) and gates the fast-path medians against BENCH_sched_time.json: the
# median ratio across all cells must stay within 1.5x — a NoopSink that
# stopped compiling away would shift every cell, which the gate catches even
# at 1 iteration.
cargo run --release -p wfs-bench --bin quickbench -- 1 \
  --out "$FAULTS_TMP/bench-smoke.json" --gate BENCH_sched_time.json 2>&1 | tail -n 5
test -s "$FAULTS_TMP/bench-smoke.json"

echo "CI OK"
