//! # budget-sched — budget-aware scheduling of scientific workflows on IaaS clouds
//!
//! A full reproduction, in Rust, of *"Budget-aware scheduling algorithms for
//! scientific workflows with stochastic task weights on heterogeneous IaaS
//! Cloud platforms"* (Caniou, Caron, Kong Win Chang, Robert — IPDPSW 2018,
//! DOI 10.1109/IPDPSW.2018.00014).
//!
//! This facade crate re-exports the four building blocks:
//!
//! - [`workflow`] — DAGs with stochastic task weights + Pegasus-style
//!   benchmark generators (CYBERSHAKE / LIGO / MONTAGE / EPIGENOMICS);
//! - [`platform`] — heterogeneous VM categories, datacenter, billing;
//! - [`simulator`] — discrete-event execution of schedules, deterministic
//!   or with Gaussian-sampled task weights;
//! - [`scheduler`] — MIN-MIN(BUDG), HEFT(BUDG), HEFTBUDG+/+INV, and the
//!   extended competitors BDT and CG/CG+.
//!
//! ## Quickstart
//!
//! ```
//! use budget_sched::prelude::*;
//!
//! // A 30-task MONTAGE instance with σ = 50 % of the mean weight.
//! let wf = montage(GenConfig::new(30, 1));
//! let platform = Platform::paper_default();
//!
//! // Schedule under a $2 budget with HEFTBUDG.
//! let (schedule, _) = heft_budg(&wf, &platform, 2.0);
//!
//! // Replay with stochastic weights and check the bill.
//! let run = simulate(&wf, &platform, &schedule, &SimConfig::stochastic(42)).unwrap();
//! println!("makespan {:.0}s, cost ${:.3}", run.makespan, run.total_cost);
//! assert!(run.within_budget(2.0));
//! ```

pub use wfs_observe as observe;
pub use wfs_platform as platform;
pub use wfs_scheduler as scheduler;
pub use wfs_simulator as simulator;
pub use wfs_workflow as workflow;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use wfs_observe::{
        BudgetLedger, ChromeTrace, Counters, Event, EventSink, Histogram, NoopSink, RecordingSink,
    };
    pub use wfs_platform::{BillingPolicy, CategoryId, Datacenter, Platform, VmCategory};
    pub use wfs_scheduler::{
        bdt, cg, cg_plus, divide_budget, heft, heft_budg, heft_budg_plus, max_min, max_min_budg,
        min_budget_for_deadline, min_cost_schedule, min_min, min_min_budg, plan_bicriteria,
        run_online, run_with_recovery, run_with_recovery_observed, sufferage, sufferage_budg,
        Algorithm, Bicriteria, OnlineConfig, RecoveryConfig, RecoveryOutcome, RecoveryPolicy,
        RefineOrder,
    };
    pub use wfs_simulator::{
        simulate, simulate_observed, simulate_with_faults, simulate_with_faults_observed,
        BootFaultModel, CrashModel, DcCapacity, DegradationModel, FaultConfig, FaultRun,
        FaultStats, Schedule, SimConfig, SimulationReport, VmId, WeightModel,
    };
    pub use wfs_workflow::gen::{
        bag_of_tasks, chain, cybershake, epigenomics, fork_join, layered_random, ligo, montage,
        sipht, BenchmarkType, GenConfig, LayeredParams,
    };
    pub use wfs_workflow::{
        analysis, StochasticWeight, TaskId, Workflow, WorkflowBuilder,
    };
}
