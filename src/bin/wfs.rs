//! `wfs` — command-line front end to the budget-sched library.
//!
//! ```text
//! wfs gen <cybershake|ligo|montage|epigenomics|sipht> <tasks> [--seed N] [--sigma R] [-o FILE]
//! wfs stats <workflow.json>
//! wfs dot <workflow.json> [-o FILE]
//! wfs schedule <workflow.json> --alg <name> --budget <dollars>
//!              [--platform FILE] [-o FILE]
//! wfs simulate <workflow.json> <schedule.json> [--seed N | --conservative | --mean]
//!              [--platform FILE] [--budget B] [--gantt]
//! wfs sweep <workflow.json> --budgets <b1,b2,...> [--algs <a1,a2,...>] [--platform FILE]
//! wfs faults <workflow.json> --budget <dollars> [--alg NAME] [--policy failstop|retry|reschedule]
//!            [--mtbf SECS] [--shape K] [--boot-fail P] [--degrade F:GAP:DUR]
//!            [--seed N] [--stochastic N] [--max-epochs N] [--platform FILE] [--lint]
//!            [--trace FILE] [--ledger]
//! wfs trace <workflow.json> --budget <dollars> [--alg NAME] [--seed N | --conservative | --mean]
//!           [--platform FILE] [-o FILE] [--ledger] [--counters]
//! wfs platform [-o FILE]
//! ```
//!
//! Workflows, schedules and platforms are JSON files; `wfs platform` dumps
//! the paper's Table II platform as a starting point for edits.

use budget_sched::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("wfs: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  wfs gen <cybershake|ligo|montage|epigenomics|sipht> <tasks> [--seed N] [--sigma R] [-o FILE]
  wfs stats <workflow.json>
  wfs dot <workflow.json> [-o FILE]
  wfs schedule <workflow.json> --alg <name> --budget <dollars> [--platform FILE] [-o FILE]
  wfs simulate <workflow.json> <schedule.json> [--seed N | --conservative | --mean]
               [--platform FILE] [--budget B] [--gantt]
  wfs sweep <workflow.json> --budgets <b1,b2,...> [--algs <a1,a2,...>] [--platform FILE]
  wfs faults <workflow.json> --budget <dollars> [--alg NAME] [--policy failstop|retry|reschedule]
             [--mtbf SECS] [--shape K] [--boot-fail P] [--degrade F:GAP:DUR]
             [--seed N] [--stochastic N] [--max-epochs N] [--platform FILE] [--lint]
             [--trace FILE] [--ledger]
  wfs trace <workflow.json> --budget <dollars> [--alg NAME] [--seed N | --conservative | --mean]
            [--platform FILE] [-o FILE] [--ledger] [--counters]
  wfs deadline <workflow.json> --deadline <secs> [--platform FILE]
  wfs platform [-o FILE]

algorithms: MIN-MIN HEFT MIN-MINBUDG HEFTBUDG HEFTBUDG+ HEFTBUDG+INV BDT CG CG+";

type CliResult = Result<(), String>;

/// Fetch the value following a `--flag`.
fn opt<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: `{s}`"))
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn emit(out: Option<&str>, content: &str) -> CliResult {
    match out {
        Some(path) => {
            std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
            Ok(())
        }
        None => {
            println!("{content}");
            Ok(())
        }
    }
}

/// Reference speed for DAX runtime <-> work conversion (Gflop/s): the
/// paper platform's cheapest category.
const DAX_REF_SPEED: f64 = 10.0;

/// Load a workflow from `.json` (native) or `.dax`/`.xml` (Pegasus DAX).
fn load_workflow(path: &str) -> Result<Workflow, String> {
    let content = read_file(path)?;
    if path.ends_with(".dax") || path.ends_with(".xml") {
        budget_sched::workflow::dax::from_dax(&content, DAX_REF_SPEED)
            .map_err(|e| format!("bad DAX {path}: {e}"))
    } else {
        Workflow::from_json(&content).map_err(|e| format!("bad workflow {path}: {e}"))
    }
}

fn load_platform(args: &[String]) -> Result<Platform, String> {
    match opt(args, "--platform") {
        Some(path) => serde_json::from_str(&read_file(path)?)
            .map_err(|e| format!("bad platform {path}: {e}")),
        None => Ok(Platform::paper_default()),
    }
}

fn run(args: &[String]) -> CliResult {
    let cmd = args.first().ok_or("missing command")?;
    let rest = &args[1..];
    match cmd.as_str() {
        "gen" => cmd_gen(rest),
        "stats" => cmd_stats(rest),
        "dot" => cmd_dot(rest),
        "schedule" => cmd_schedule(rest),
        "simulate" => cmd_simulate(rest),
        "sweep" => cmd_sweep(rest),
        "faults" => cmd_faults(rest),
        "trace" => cmd_trace(rest),
        "deadline" => cmd_deadline(rest),
        "platform" => emit(opt(rest, "-o"), &pretty(&Platform::paper_default())?),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn pretty<T: serde::Serialize>(v: &T) -> Result<String, String> {
    serde_json::to_string_pretty(v).map_err(|e| e.to_string())
}

fn cmd_gen(args: &[String]) -> CliResult {
    let ty = args.first().ok_or("gen: missing workflow type")?;
    let tasks: usize = parse(args.get(1).ok_or("gen: missing task count")?, "task count")?;
    let seed: u64 = opt(args, "--seed").map_or(Ok(1), |s| parse(s, "seed"))?;
    let sigma: f64 = opt(args, "--sigma").map_or(Ok(0.5), |s| parse(s, "sigma ratio"))?;
    let cfg = GenConfig::new(tasks, seed).with_sigma_ratio(sigma);
    let wf = match ty.as_str() {
        "epigenomics" => epigenomics(cfg),
        "sipht" => sipht(cfg),
        other => parse::<BenchmarkType>(other, "workflow type")?.generate(cfg),
    };
    // Emit DAX when the output file asks for it, JSON otherwise.
    let out = opt(args, "-o");
    if has_flag(args, "--dax") || out.is_some_and(|p| p.ends_with(".dax") || p.ends_with(".xml")) {
        emit(out, &budget_sched::workflow::dax::to_dax(&wf, DAX_REF_SPEED))
    } else {
        emit(out, &wf.to_json())
    }
}

fn cmd_stats(args: &[String]) -> CliResult {
    let wf = load_workflow(args.first().ok_or("stats: missing workflow file")?)?;
    let s = analysis::stats(&wf);
    println!("workflow      {}", wf.name);
    println!("tasks         {}", s.tasks);
    println!("edges         {}", s.edges);
    println!("depth/width   {}/{}", s.depth, s.width);
    println!("entries/exits {}/{}", s.entries, s.exits);
    println!("total work    {:.1} Gflop", s.total_work);
    println!("total data    {:.1} MB", s.total_data / 1e6);
    println!("external I/O  {:.1} MB in / {:.1} MB out", wf.external_input_data() / 1e6, wf.external_output_data() / 1e6);
    Ok(())
}

fn cmd_dot(args: &[String]) -> CliResult {
    let wf = load_workflow(args.first().ok_or("dot: missing workflow file")?)?;
    emit(opt(args, "-o"), &budget_sched::workflow::dot::to_dot(&wf))
}

fn cmd_schedule(args: &[String]) -> CliResult {
    let wf = load_workflow(args.first().ok_or("schedule: missing workflow file")?)?;
    let alg: Algorithm = parse(opt(args, "--alg").ok_or("schedule: missing --alg")?, "algorithm")?;
    let budget: f64 = parse(opt(args, "--budget").ok_or("schedule: missing --budget")?, "budget")?;
    if !budget.is_finite() || budget < 0.0 {
        return Err(format!("budget must be a finite non-negative amount, got {budget}"));
    }
    let platform = load_platform(args)?;
    let t0 = std::time::Instant::now();
    let sched = alg.run(&wf, &platform, budget);
    eprintln!(
        "{alg}: {} VMs in {:.1} ms",
        sched.used_vm_count(),
        t0.elapsed().as_secs_f64() * 1e3
    );
    emit(opt(args, "-o"), &pretty(&sched)?)
}

fn cmd_simulate(args: &[String]) -> CliResult {
    let wf = load_workflow(args.first().ok_or("simulate: missing workflow file")?)?;
    let sched: Schedule =
        serde_json::from_str(&read_file(args.get(1).ok_or("simulate: missing schedule file")?)?)
            .map_err(|e| format!("bad schedule: {e}"))?;
    let platform = load_platform(args)?;
    let cfg = if has_flag(args, "--conservative") {
        SimConfig::planning()
    } else if has_flag(args, "--mean") {
        SimConfig::new(WeightModel::Mean)
    } else {
        let seed: u64 = opt(args, "--seed").map_or(Ok(0), |s| parse(s, "seed"))?;
        SimConfig::stochastic(seed)
    };
    let r = simulate(&wf, &platform, &sched, &cfg).map_err(|e| e.to_string())?;
    println!("makespan   {:.1} s", r.makespan);
    println!("vm cost    ${:.4}", r.vm_cost);
    println!("dc cost    ${:.4}", r.datacenter_cost);
    println!("total cost ${:.4}", r.total_cost);
    println!("VMs used   {}", r.vms_used);
    if let Some(b) = opt(args, "--budget") {
        let b: f64 = parse(b, "budget")?;
        println!("in budget  {}", if r.within_budget(b) { "yes" } else { "NO" });
    }
    if has_flag(args, "--gantt") {
        println!("\n{}", r.gantt(72));
    }
    if let Some(path) = opt(args, "--svg") {
        let svg = budget_sched::simulator::svg::to_svg(
            &r,
            budget_sched::simulator::svg::SvgOptions::default(),
        );
        std::fs::write(path, svg).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// `wfs deadline <workflow.json> --deadline <secs> [--platform FILE]`:
/// the smallest budget whose HEFTBUDG schedule meets the deadline.
fn cmd_deadline(args: &[String]) -> CliResult {
    let wf = load_workflow(args.first().ok_or("deadline: missing workflow file")?)?;
    let d: f64 = parse(opt(args, "--deadline").ok_or("deadline: missing --deadline")?, "deadline")?;
    let platform = load_platform(args)?;
    match min_budget_for_deadline(&wf, &platform, d) {
        Some((budget, sched)) => {
            let r = simulate(&wf, &platform, &sched, &SimConfig::planning())
                .map_err(|e| e.to_string())?;
            println!("min budget  ${budget:.4}");
            println!("makespan    {:.1} s (deadline {d:.1} s)", r.makespan);
            println!("VMs         {}", sched.used_vm_count());
            Ok(())
        }
        None => Err(format!("deadline {d}s is unreachable at any budget")),
    }
}

/// `wfs trace <workflow.json> --budget B [--alg NAME] [...]`: plan and
/// simulate once with a recording sink, export the execution as a
/// Chrome-trace-event JSON (loadable in Perfetto / `chrome://tracing`) and
/// print a text summary; `--ledger` audits the budget ledger against the
/// simulator's bill and `--counters` prints the hot-path counter table.
fn cmd_trace(args: &[String]) -> CliResult {
    let wf_path = args.first().ok_or("trace: missing workflow file")?;
    let wf = load_workflow(wf_path)?;
    let budget: f64 = parse(opt(args, "--budget").ok_or("trace: missing --budget")?, "budget")?;
    if !budget.is_finite() || budget < 0.0 {
        return Err(format!("budget must be a finite non-negative amount, got {budget}"));
    }
    let alg: Algorithm =
        opt(args, "--alg").map_or(Ok(Algorithm::HeftBudg), |s| parse(s, "algorithm"))?;
    let platform = load_platform(args)?;
    let cfg = if has_flag(args, "--conservative") {
        SimConfig::planning()
    } else if has_flag(args, "--mean") {
        SimConfig::new(WeightModel::Mean)
    } else {
        let seed: u64 = opt(args, "--seed").map_or(Ok(0), |s| parse(s, "seed"))?;
        SimConfig::stochastic(seed)
    };

    let mut rec = RecordingSink::new();
    let sched = alg.run_observed(&wf, &platform, budget, &mut rec);
    let report = simulate_observed(&wf, &platform, &sched, &cfg, &mut rec)
        .map_err(|e| e.to_string())?;

    let trace = ChromeTrace::from_events(&rec.events);
    let out_path = match opt(args, "-o") {
        Some(p) => p.to_string(),
        None => default_trace_path(wf_path),
    };
    std::fs::write(&out_path, trace.to_json())
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    eprintln!("wrote {out_path}");

    println!("algorithm  {alg}");
    println!("events     {}", rec.events.len());
    println!("spans      {} ({} instants)", trace.span_count(), trace.instant_count());
    println!("makespan   {:.1} s", report.makespan);
    println!("total cost ${:.4} (budget ${budget:.4})", report.total_cost);
    if has_flag(args, "--ledger") {
        let ledger = BudgetLedger::from_events(&rec.events);
        println!();
        print!("{}", ledger.summary());
        println!(
            "reconciles  {}",
            if ledger.reconcile(report.total_cost) { "yes (exact)" } else { "NO" }
        );
    }
    if has_flag(args, "--counters") {
        let counters = Counters::from_events(&rec.events);
        println!();
        print!("{}", counters.table());
    }
    Ok(())
}

/// Default output path of `wfs trace`: the workflow file with its
/// extension replaced by `.trace.json`.
fn default_trace_path(input: &str) -> String {
    let stem = input
        .strip_suffix(".json")
        .or_else(|| input.strip_suffix(".dax"))
        .or_else(|| input.strip_suffix(".xml"))
        .unwrap_or(input);
    format!("{stem}.trace.json")
}

/// `wfs faults <workflow.json> --budget B [--policy P] [...]`: run the
/// workflow to durable completion under seeded fault injection, recovering
/// per the chosen policy, and print the per-epoch breakdown.
fn cmd_faults(args: &[String]) -> CliResult {
    let wf = load_workflow(args.first().ok_or("faults: missing workflow file")?)?;
    let budget: f64 = parse(opt(args, "--budget").ok_or("faults: missing --budget")?, "budget")?;
    if !budget.is_finite() || budget < 0.0 {
        return Err(format!("budget must be a finite non-negative amount, got {budget}"));
    }
    let alg: Algorithm = opt(args, "--alg").map_or(Ok(Algorithm::HeftBudg), |s| parse(s, "algorithm"))?;
    let policy: RecoveryPolicy =
        opt(args, "--policy").map_or(Ok(RecoveryPolicy::RescheduleBudgetAware), |s| parse(s, "policy"))?;
    let platform = load_platform(args)?;
    let seed: u64 = opt(args, "--seed").map_or(Ok(0), |s| parse(s, "seed"))?;

    let mut faults = FaultConfig::new(seed);
    if let Some(m) = opt(args, "--mtbf") {
        let mtbf: f64 = parse(m, "mtbf")?;
        let crash = match opt(args, "--shape") {
            Some(k) => CrashModel::weibull(mtbf, parse(k, "shape")?),
            None => CrashModel::exponential(mtbf),
        };
        faults = faults.with_crash(crash);
    }
    if let Some(p) = opt(args, "--boot-fail") {
        faults = faults.with_boot(BootFaultModel::new(parse(p, "boot-fail probability")?, 3));
    }
    if let Some(spec) = opt(args, "--degrade") {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 3 {
            return Err(format!("--degrade wants FACTOR:GAP:DURATION, got `{spec}`"));
        }
        faults = faults.with_degradation(DegradationModel::new(
            parse(parts[0], "degrade factor")?,
            parse(parts[1], "degrade gap")?,
            parse(parts[2], "degrade duration")?,
        ));
    }

    let mut cfg = RecoveryConfig::new(alg, policy, budget, faults);
    if let Some(s) = opt(args, "--stochastic") {
        cfg = cfg.with_weights(WeightModel::Stochastic { seed: parse(s, "stochastic seed")? });
    }
    if let Some(n) = opt(args, "--max-epochs") {
        cfg = cfg.with_max_epochs(parse(n, "max epochs")?);
    }
    if has_flag(args, "--lint") {
        cfg = cfg.with_lint();
    }

    let trace_path = opt(args, "--trace");
    let want_ledger = has_flag(args, "--ledger");
    let mut rec = RecordingSink::new();
    let out = if trace_path.is_some() || want_ledger {
        run_with_recovery_observed(&wf, &platform, &cfg, &mut rec)
    } else {
        run_with_recovery(&wf, &platform, &cfg)
    }
    .map_err(|e| e.to_string())?;
    println!("{:<6} {:>6} {:>8} {:>10} {:>10} {:>8} {:>6} {:>6}",
        "epoch", "tasks", "durable", "cost $", "budget $", "span s", "crash", "retry");
    for e in &out.epochs {
        println!(
            "{:<6} {:>6} {:>8} {:>10.4} {:>10.4} {:>8.0} {:>6} {:>6}",
            e.epoch, e.scheduled, e.newly_durable, e.cost, e.budget_before, e.makespan,
            e.stats.crashes, e.stats.boot_retries
        );
    }
    println!();
    println!("outcome     {}", if out.completed { "COMPLETED" } else { "INCOMPLETE" });
    println!("policy      {policy} ({alg})");
    println!("total cost  ${:.4} / ${:.4}{}", out.total_cost, out.budget,
        if out.within_budget() { "" } else { "  OVER BUDGET" });
    println!("wall clock  {:.0} s over {} epoch(s), {} re-plan(s)",
        out.wall_clock, out.epochs.len(), out.replans);
    println!("faults      {} crash(es), {} task(s) lost, {} boot retry(ies), {} degradation window(s)",
        out.stats.crashes, out.stats.tasks_lost, out.stats.boot_retries, out.stats.degradation_windows);
    println!("waste       {:.0} s compute lost, {:.0} s billed-but-wasted",
        out.stats.wasted_compute_seconds, out.stats.wasted_billed_seconds);
    if out.degraded_to_cheapest {
        println!("degraded    fell back to cheapest-category VM (budget exhausted)");
    }
    if let Some(tp) = trace_path {
        let trace = ChromeTrace::from_events(&rec.events);
        std::fs::write(tp, trace.to_json()).map_err(|e| format!("cannot write {tp}: {e}"))?;
        eprintln!("wrote {tp}");
    }
    if want_ledger {
        let ledger = BudgetLedger::from_events(&rec.events);
        println!();
        print!("{}", ledger.summary());
        println!(
            "reconciles  {}",
            if ledger.reconcile(out.total_cost) { "yes (exact)" } else { "NO" }
        );
    }
    if !out.lint_violations.is_empty() {
        eprintln!("\nlint violations:");
        for v in &out.lint_violations {
            eprintln!("  {v}");
        }
        return Err(format!("{} lint violation(s)", out.lint_violations.len()));
    }
    Ok(())
}

fn cmd_sweep(args: &[String]) -> CliResult {
    let wf = load_workflow(args.first().ok_or("sweep: missing workflow file")?)?;
    let platform = load_platform(args)?;
    let budgets: Vec<f64> = opt(args, "--budgets")
        .ok_or("sweep: missing --budgets")?
        .split(',')
        .map(|s| parse(s.trim(), "budget"))
        .collect::<Result<_, _>>()?;
    let algs: Vec<Algorithm> = match opt(args, "--algs") {
        Some(list) => list
            .split(',')
            .map(|s| parse(s.trim(), "algorithm"))
            .collect::<Result<_, _>>()?,
        None => vec![Algorithm::MinMinBudg, Algorithm::HeftBudg],
    };
    println!("{:<14} {:>10} {:>10} {:>10} {:>5}", "algorithm", "budget $", "makespan", "cost $", "VMs");
    for &b in &budgets {
        for &alg in &algs {
            let sched = alg.run(&wf, &platform, b);
            let r = simulate(&wf, &platform, &sched, &SimConfig::planning())
                .map_err(|e| e.to_string())?;
            println!(
                "{:<14} {:>10.3} {:>9.0}s {:>10.4} {:>5}",
                alg.name(),
                b,
                r.makespan,
                r.total_cost,
                r.vms_used
            );
        }
    }
    Ok(())
}
