//! Reproducing the paper's LIGO anomaly (§V-B): with many parallel tasks
//! moving large data simultaneously, a *finite* datacenter bandwidth
//! becomes a bottleneck the planning model did not account for — and a few
//! executions overrun budgets that were safe under the infinite-capacity
//! assumption.
//!
//! Run with: `cargo run --release --example dc_contention`

// Examples are demo code: panicking on a broken fixture is the right UX.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use budget_sched::prelude::*;

const REPS: u64 = 15;

fn main() {
    let platform = Platform::paper_default();
    let wf = ligo(GenConfig::new(90, 1));
    let floor = simulate(
        &wf,
        &platform,
        &min_cost_schedule(&wf, &platform),
        &SimConfig::planning(),
    )
    .unwrap();
    // A budget just past the parallelization threshold — many VMs, spend
    // close to the budget: exactly where the paper saw overruns.
    let budget = floor.total_cost * 1.25;
    let (schedule, _) = heft_budg(&wf, &platform, budget);
    println!(
        "LIGO-90, budget ${budget:.3} ({} VMs enrolled)\n",
        schedule.used_vm_count()
    );

    println!("{:<28} {:>12} {:>12} {:>10}", "datacenter model", "avg makespan", "avg cost $", "in budget");
    let link = platform.datacenter.bandwidth;
    let scenarios: [(&str, Option<f64>); 4] = [
        ("infinite capacity (paper)", None),
        ("capacity = 8 links", Some(8.0 * link)),
        ("capacity = 2 links", Some(2.0 * link)),
        ("capacity = 1 link", Some(link)),
    ];
    for (name, cap) in scenarios {
        let mut mk = 0.0;
        let mut cost = 0.0;
        let mut ok = 0usize;
        for seed in 0..REPS {
            let mut cfg = SimConfig::stochastic(seed);
            if let Some(c) = cap {
                cfg = cfg.with_dc_capacity(c);
            }
            let r = simulate(&wf, &platform, &schedule, &cfg).unwrap();
            mk += r.makespan;
            cost += r.total_cost;
            if r.within_budget(budget) {
                ok += 1;
            }
        }
        println!(
            "{:<28} {:>11.0}s {:>12.3} {:>8.0}%",
            name,
            mk / REPS as f64,
            cost / REPS as f64,
            100.0 * ok as f64 / REPS as f64
        );
    }
    println!(
        "\nSaturating the datacenter stretches every VM's rental window, so the\n\
         same schedule that held the budget under the infinite-bandwidth model\n\
         can overrun it — matching the overruns the paper reports for LIGO."
    );
}
