//! Using the library on your own workflow and platform — not a Pegasus
//! benchmark: a hand-built video-analytics pipeline on a 4-category
//! platform, scheduled with every algorithm, refined with HEFTBUDG+.
//!
//! Run with: `cargo run --release --example custom_pipeline`

// Examples are demo code: panicking on a broken fixture is the right UX.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use budget_sched::prelude::*;

/// decode -> {detect_1..k} -> track -> {annotate, index} -> publish
fn build_pipeline(cameras: usize) -> Workflow {
    let mut b = WorkflowBuilder::new("video-analytics");
    let gb = 1e9;
    let decode = b.add_task("decode", StochasticWeight::new(400.0, 80.0));
    b.set_external_input(decode, 2.0 * gb);
    let track = b.add_task("track", StochasticWeight::new(600.0, 120.0));
    for i in 0..cameras {
        let det = b.add_task(format!("detect_{i}"), StochasticWeight::new(1500.0, 600.0));
        b.add_edge(decode, det, 0.3 * gb).unwrap();
        b.add_edge(det, track, 0.05 * gb).unwrap();
    }
    let annotate = b.add_task("annotate", StochasticWeight::new(300.0, 60.0));
    let index = b.add_task("index", StochasticWeight::new(200.0, 40.0));
    let publish = b.add_task("publish", StochasticWeight::new(100.0, 10.0));
    b.add_edge(track, annotate, 0.1 * gb).unwrap();
    b.add_edge(track, index, 0.02 * gb).unwrap();
    b.add_edge(annotate, publish, 0.1 * gb).unwrap();
    b.add_edge(index, publish, 0.01 * gb).unwrap();
    b.set_external_output(publish, 0.5 * gb);
    b.build().expect("pipeline is a DAG")
}

fn main() {
    let wf = build_pipeline(12);
    println!("{} tasks / {} edges; DOT preview:\n", wf.task_count(), wf.edge_count());
    // Print the first lines of the Graphviz export.
    let dot = wfs_workflow::dot::to_dot(&wf);
    for line in dot.lines().take(6) {
        println!("  {line}");
    }
    println!("  ...\n");

    // A custom 4-category platform: note `burst` is fast but over-priced,
    // so cost is NOT linear in speed here.
    let platform = Platform::new(
        vec![
            VmCategory::new("eco", 8.0, 0.04, 0.002, 60.0),
            VmCategory::new("std", 16.0, 0.09, 0.002, 60.0),
            VmCategory::new("perf", 32.0, 0.18, 0.004, 90.0),
            VmCategory::new("burst", 48.0, 0.40, 0.010, 45.0),
        ],
        Datacenter::new(250.0e6, 0.03, 0.05e-9),
    );

    // A binding budget: 1.3x the cheapest possible execution.
    let floor = simulate(
        &wf,
        &platform,
        &min_cost_schedule(&wf, &platform),
        &SimConfig::planning(),
    )
    .unwrap()
    .total_cost;
    let budget = floor * 1.3;
    println!("cheapest execution ${floor:.3}; comparison under a ${budget:.3} budget:");
    println!("{:<14} {:>9} {:>9} {:>5} {:>7}", "algorithm", "makespan", "cost $", "VMs", "ok?");
    let cfg = SimConfig::stochastic(11);
    for alg in Algorithm::ALL {
        let s = alg.run(&wf, &platform, budget);
        let r = simulate(&wf, &platform, &s, &cfg).unwrap();
        println!(
            "{:<14} {:>8.0}s {:>9.3} {:>5} {:>7}",
            alg.name(),
            r.makespan,
            r.total_cost,
            r.vms_used,
            if r.within_budget(budget) { "yes" } else { "NO" }
        );
    }

    // Drill into the refined schedule.
    let refined = heft_budg_plus(&wf, &platform, budget, RefineOrder::Forward);
    let r = simulate(&wf, &platform, &refined, &SimConfig::planning()).unwrap();
    println!("\nHEFTBUDG+ planned execution:\n{}", r.gantt(70));
}
