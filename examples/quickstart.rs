//! Quickstart: generate a benchmark workflow, schedule it under a budget,
//! replay the execution with stochastic task weights, inspect the result.
//!
//! Run with: `cargo run --release --example quickstart`

// Examples are demo code: panicking on a broken fixture is the right UX.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use budget_sched::prelude::*;

fn main() {
    // 1. A 30-task MONTAGE instance; task weights are Gaussian with
    //    σ = 50 % of the mean (the paper's default uncertainty level).
    let wf = montage(GenConfig::new(30, 1));
    println!("workflow: {} tasks, {} edges", wf.task_count(), wf.edge_count());
    let st = analysis::stats(&wf);
    println!("depth {} / width {} / CCR {:.2} bytes per unit of work\n", st.depth, st.width, st.ccr);

    // 2. The paper's 3-category platform (Table II).
    let platform = Platform::paper_default();
    for (i, cat) in platform.categories().iter().enumerate() {
        println!(
            "cat{i} `{}`: {:.0} Gflop/s at ${:.2}/h (+${:.3} init, {:.0}s boot)",
            cat.name, cat.speed, cat.cost_per_hour, cat.init_cost, cat.boot_time
        );
    }

    // 3. Schedule with HEFTBUDG under a $2 budget.
    let budget = 2.0;
    let (schedule, _priority) = heft_budg(&wf, &platform, budget);
    println!("\nHEFTBUDG enrolled {} VMs for a ${budget} budget", schedule.used_vm_count());

    // 4. Conservative planning forecast, then 5 stochastic replays.
    let planned = simulate(&wf, &platform, &schedule, &SimConfig::planning()).unwrap();
    println!(
        "planned (conservative): makespan {:.0}s, cost ${:.3}",
        planned.makespan, planned.total_cost
    );
    for seed in 0..5 {
        let run = simulate(&wf, &platform, &schedule, &SimConfig::stochastic(seed)).unwrap();
        println!(
            "  seed {seed}: makespan {:>6.0}s  cost ${:.3}  within budget: {}",
            run.makespan,
            run.total_cost,
            run.within_budget(budget)
        );
    }

    // 5. A text Gantt chart of the planned execution.
    println!("\n{}", planned.gantt(72));
}
