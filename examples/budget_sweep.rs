//! Budget sweep on a 90-task workflow — a miniature of the paper's Fig. 1:
//! how makespan, spent cost and VM enrollment react to the initial budget
//! for MIN-MIN(BUDG) and HEFT(BUDG), with the `min_cost` floor for context.
//!
//! Run with: `cargo run --release --example budget_sweep [cybershake|ligo|montage]`

// Examples are demo code: panicking on a broken fixture is the right UX.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use budget_sched::prelude::*;

fn main() {
    let ty: BenchmarkType = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "montage".into())
        .parse()
        .expect("workflow type: cybershake | ligo | montage");
    let wf = ty.generate(GenConfig::new(90, 1));
    let platform = Platform::paper_default();

    // The cost floor: everything on one cheapest VM.
    let floor = simulate(
        &wf,
        &platform,
        &min_cost_schedule(&wf, &platform),
        &SimConfig::planning(),
    )
    .unwrap();
    println!(
        "{}-90  min_cost: ${:.3} (makespan {:.0}s)\n",
        ty.name(),
        floor.total_cost,
        floor.makespan
    );

    // Budget-oblivious baselines for reference.
    let cfg = SimConfig::stochastic(7);
    for alg in [Algorithm::MinMin, Algorithm::Heft] {
        let s = alg.run(&wf, &platform, f64::INFINITY);
        let r = simulate(&wf, &platform, &s, &cfg).unwrap();
        println!(
            "{:<12} (no budget): makespan {:>7.0}s  cost ${:<8.3} VMs {}",
            alg.name(),
            r.makespan,
            r.total_cost,
            r.vms_used
        );
    }

    println!(
        "\n{:>8} | {:>22} | {:>22}",
        "budget", "MIN-MINBUDG", "HEFTBUDG"
    );
    println!("{:>8} | {:>9} {:>8} {:>3} | {:>9} {:>8} {:>3}", "$", "makespan", "cost", "VMs", "makespan", "cost", "VMs");
    let base = floor.total_cost;
    for mult in [1.0, 1.5, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0] {
        let budget = base * mult;
        let mut cells = Vec::new();
        for alg in [Algorithm::MinMinBudg, Algorithm::HeftBudg] {
            let s = alg.run(&wf, &platform, budget);
            let r = simulate(&wf, &platform, &s, &cfg).unwrap();
            cells.push(format!("{:>9.0} {:>8.3} {:>3}", r.makespan, r.total_cost, r.vms_used));
        }
        println!("{budget:>8.2} | {} | {}", cells[0], cells[1]);
    }
    println!("\n(makespans in seconds; one stochastic replay per cell, σ = 50 %)");
}
