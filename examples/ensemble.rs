//! Workflow ensembles under one global budget — the setting of the paper's
//! closest related work ([19]): several prioritized workflows compete for
//! one budget; maximize the total priority of those that complete.
//!
//! Run with: `cargo run --release --example ensemble`

// Examples are demo code: panicking on a broken fixture is the right UX.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use budget_sched::prelude::*;
use budget_sched::scheduler::{schedule_ensemble, EnsembleMember};

fn main() {
    let platform = Platform::paper_default();
    let members = vec![
        EnsembleMember { workflow: montage(GenConfig::new(60, 1)), priority: 8.0 },
        EnsembleMember { workflow: cybershake(GenConfig::new(60, 2)), priority: 5.0 },
        EnsembleMember { workflow: ligo(GenConfig::new(60, 3)), priority: 3.0 },
        EnsembleMember { workflow: epigenomics(GenConfig::new(60, 4)), priority: 6.0 },
        EnsembleMember { workflow: sipht(GenConfig::new(60, 5)), priority: 2.0 },
    ];
    let max_priority: f64 = members.iter().map(|m| m.priority).sum();

    println!(
        "{:>10} | {:>9} {:>12} | {:>8} {:>8}",
        "budget $", "admitted", "priority", "spent $", "rejected"
    );
    for budget in [0.1, 0.3, 0.6, 1.0, 2.0, 5.0] {
        let r = schedule_ensemble(&members, &platform, budget);
        println!(
            "{budget:>10.2} | {:>9} {:>7.0}/{max_priority:<4.0} | {:>8.3} {:>8}",
            r.admitted.len(),
            r.admitted_priority,
            r.total_planned_cost,
            r.rejected.len()
        );
    }

    // Detail at a mid budget.
    let budget = 1.0;
    let r = schedule_ensemble(&members, &platform, budget);
    println!("\nat ${budget}: admission order (greedy by priority per estimated dollar):");
    for a in &r.admitted {
        let m = &members[a.index];
        println!(
            "  {:<18} prio {:>4}  chunk ${:<7.3} spent ${:<7.3} makespan {:>6.0}s  {} VMs",
            m.workflow.name,
            m.priority,
            a.budget,
            a.planned_cost,
            a.planned_makespan,
            a.schedule.used_vm_count()
        );
    }
    for &i in &r.rejected {
        println!("  {:<18} prio {:>4}  REJECTED", members[i].workflow.name, members[i].priority);
    }
}
