//! Impact of task-weight uncertainty — the extended-version experiment the
//! paper cites in §V-B: sweep the standard deviation σ over 25/50/75/100 %
//! of the mean and measure how often HEFTBUDG's executions still fit the
//! budget, and what the conservative `w̄ + σ` planning costs in makespan.
//!
//! Run with: `cargo run --release --example uncertainty`

// Examples are demo code: panicking on a broken fixture is the right UX.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use budget_sched::prelude::*;

const REPS: u64 = 25;

fn main() {
    let platform = Platform::paper_default();
    println!(
        "{:<12} {:>6} | {:>10} {:>12} {:>14}",
        "workflow", "sigma", "% in budget", "avg cost $", "avg makespan s"
    );
    for ty in BenchmarkType::ALL {
        for sigma in [0.25, 0.50, 0.75, 1.00] {
            let wf = ty.generate(GenConfig::new(60, 1).with_sigma_ratio(sigma));
            // A comfortable budget: 3x the cheapest execution (2x is the
            // exact transition band for MONTAGE, where compliance wobbles).
            let floor = simulate(
                &wf,
                &platform,
                &min_cost_schedule(&wf, &platform),
                &SimConfig::planning(),
            )
            .unwrap();
            let budget = floor.total_cost * 3.0;
            let (schedule, _) = heft_budg(&wf, &platform, budget);

            let mut within = 0usize;
            let mut cost_sum = 0.0;
            let mut mk_sum = 0.0;
            for seed in 0..REPS {
                let r = simulate(&wf, &platform, &schedule, &SimConfig::stochastic(seed)).unwrap();
                if r.within_budget(budget) {
                    within += 1;
                }
                cost_sum += r.total_cost;
                mk_sum += r.makespan;
            }
            println!(
                "{:<12} {:>5.0}% | {:>9.0}% {:>12.3} {:>14.0}",
                ty.name(),
                sigma * 100.0,
                100.0 * within as f64 / REPS as f64,
                cost_sum / REPS as f64,
                mk_sum / REPS as f64
            );
        }
    }
    println!(
        "\nPlanning with conservative weights (mean + sigma) keeps executions \
         within budget\neven when weights can double (sigma = 100%), at the \
         price of a longer planned makespan."
    );
}
