//! Online re-scheduling (the paper's §VI future-work direction): monitor
//! running tasks, interrupt stragglers and migrate them to faster VMs when
//! the remaining budget allows.
//!
//! Two regimes are contrasted:
//! - heavy-tailed (log-normal) durations — a long-elapsed task signals a
//!   straggler with lots of work left: interruption pays;
//! - Gaussian durations (the paper's model) — a long-elapsed task is almost
//!   done: the distribution-blind watchdog migrates wrongly and loses, the
//!   risk the paper explicitly warns about.
//!
//! Run with: `cargo run --release --example online_rescheduling`

// Examples are demo code: panicking on a broken fixture is the right UX.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use budget_sched::prelude::*;
use budget_sched::scheduler::{run_online, OnlineConfig};

const REPS: u64 = 25;

fn main() {
    // A wide speed ladder (16x), like real cloud size ranges: migration can
    // only beat redoing the work when much faster VMs exist.
    let platform = Platform::wide_ladder();
    // Long tasks (~20 min on the slow VMs), high uncertainty.
    let wf = layered_random(
        LayeredParams { layers: 4, width: 5, edge_prob: 0.3, work: 6000.0, data: 20e6 },
        GenConfig { tasks: 0, seed: 1, sigma_ratio: 1.0 },
    );
    let floor = simulate(
        &wf,
        &platform,
        &min_cost_schedule(&wf, &platform),
        &SimConfig::planning(),
    )
    .unwrap()
    .total_cost;
    // Tight budget: the initial plan sits on slow VMs, leaving the watchdog
    // something to improve.
    let budget = floor * 1.2;
    println!(
        "{} tasks, budget ${budget:.3} (1.2x the cheapest execution)\n",
        wf.task_count()
    );

    println!(
        "{:<22} {:>14} {:>14} {:>8} {:>8}",
        "scenario", "static (s)", "watchdog (s)", "migr.", "fires"
    );
    for (name, heavy) in [("heavy-tailed", true), ("gaussian (paper)", false)] {
        let mut static_mk = 0.0;
        let mut online_mk = 0.0;
        let mut migs = 0;
        let mut fires = 0;
        for seed in 0..REPS {
            let mut sc = OnlineConfig::static_run(seed, budget);
            let mut oc = OnlineConfig::with_watchdog(seed, budget, 1.0);
            if heavy {
                sc = sc.with_heavy_tail();
                oc = oc.with_heavy_tail();
            }
            static_mk += run_online(&wf, &platform, budget, sc).makespan;
            let o = run_online(&wf, &platform, budget, oc);
            online_mk += o.makespan;
            migs += o.migrations;
            fires += o.interruptions;
        }
        println!(
            "{:<22} {:>14.0} {:>14.0} {:>8} {:>8}",
            name,
            static_mk / REPS as f64,
            online_mk / REPS as f64,
            migs,
            fires
        );
    }
    println!(
        "\nHeavy tails: interrupting stragglers and redoing them on 16x-faster VMs\n\
         shortens the average makespan. Gaussian tails: the same watchdog wastes\n\
         nearly-finished work — the risk the paper flags for dynamic decisions."
    );
}
