//! Randomized invariant tests over random DAGs, platforms and budgets: the
//! invariants every schedule/simulation must uphold regardless of input.
//!
//! Formerly proptest-based; now plain seeded loops so the suite builds
//! offline. Each test draws its cases from a fixed-seed `StdRng`, so
//! failures are reproducible by case index.

// Helper fns in integration-test files miss the tests-only exemption.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use budget_sched::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 24;

/// Random layered workflow: 2–5 layers, 1–6 wide, random density.
fn random_workflow(rng: &mut StdRng) -> Workflow {
    layered_random(
        LayeredParams {
            layers: rng.gen_range(2..=5usize),
            width: rng.gen_range(1..=6usize),
            edge_prob: rng.gen_range(0.1..0.9f64),
            work: 500.0,
            data: 20e6,
        },
        GenConfig {
            tasks: 0,
            seed: rng.gen_range(0..1000u64),
            sigma_ratio: rng.gen_range(0.0..=1.0f64),
        },
    )
}

fn floor(wf: &Workflow, p: &Platform) -> f64 {
    simulate(wf, p, &min_cost_schedule(wf, p), &SimConfig::planning())
        .unwrap()
        .total_cost
}

/// Every algorithm yields a schedule that validates and simulates, with
/// precedence respected in the realized execution.
#[test]
fn schedules_always_valid_and_precedence_safe() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED_0001 + case);
        let wf = random_workflow(&mut rng);
        let mult = rng.gen_range(1.0..20.0f64);
        let seed = rng.gen_range(0..50u64);
        let p = Platform::paper_default();
        let budget = floor(&wf, &p) * mult;
        for alg in [
            Algorithm::MinMinBudg,
            Algorithm::HeftBudg,
            Algorithm::Bdt,
            Algorithm::Cg,
        ] {
            let s = alg.run(&wf, &p, budget);
            assert!(s.validate(&wf).is_ok(), "case {case}: {alg}");
            let r = simulate(&wf, &p, &s, &SimConfig::stochastic(seed)).unwrap();
            for e in wf.edges() {
                assert!(
                    r.task(e.to).start >= r.task(e.from).end - 1e-9,
                    "case {case}: {alg}: edge {e:?} violated"
                );
            }
            for t in &r.tasks {
                assert!(t.end >= t.start, "case {case}: {alg}");
                assert!(t.realized_weight > 0.0, "case {case}: {alg}");
            }
        }
    }
}

/// Cost breakdown always adds up, and VM accounting is consistent.
#[test]
fn report_accounting_consistent() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED_0002 + case);
        let wf = random_workflow(&mut rng);
        let seed = rng.gen_range(0..50u64);
        let p = Platform::paper_default();
        let s = Algorithm::HeftBudg.run(&wf, &p, floor(&wf, &p) * 3.0);
        let r = simulate(&wf, &p, &s, &SimConfig::stochastic(seed)).unwrap();
        assert!((r.total_cost - (r.vm_cost + r.datacenter_cost)).abs() < 1e-9);
        let vm_sum: f64 = r.vms.iter().map(|v| v.cost).sum();
        assert!((vm_sum - r.vm_cost).abs() < 1e-9, "case {case}");
        let tasks_sum: usize = r.vms.iter().map(|v| v.tasks_run).sum();
        assert_eq!(tasks_sum, wf.task_count(), "case {case}");
        for v in &r.vms {
            assert!(v.ready_at >= v.booked_at, "case {case}");
            assert!(v.released_at >= v.ready_at - 1e-9, "case {case}");
        }
        assert!(r.vms_used <= s.vm_count(), "case {case}");
    }
}

/// Billing granularity ordering: continuous <= per-second <= per-hour.
#[test]
fn billing_granularity_monotone() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED_0003 + case);
        let wf = random_workflow(&mut rng);
        let seed = rng.gen_range(0..50u64);
        let base = Platform::paper_default();
        let s = Algorithm::HeftBudg.run(&wf, &base, floor(&wf, &base) * 3.0);
        let cost = |billing| {
            let p = Platform::paper_default().with_billing(billing);
            simulate(&wf, &p, &s, &SimConfig::stochastic(seed))
                .unwrap()
                .total_cost
        };
        let c = cost(BillingPolicy::Continuous);
        let s1 = cost(BillingPolicy::PerSecond);
        let h = cost(BillingPolicy::PerHour);
        assert!(c <= s1 + 1e-9, "case {case}");
        assert!(s1 <= h + 1e-9, "case {case}");
    }
}

/// A finite datacenter capacity can only delay the execution.
#[test]
fn finite_dc_capacity_never_speeds_up() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED_0004 + case);
        let wf = random_workflow(&mut rng);
        let seed = rng.gen_range(0..50u64);
        let p = Platform::paper_default();
        let s = Algorithm::HeftBudg.run(&wf, &p, floor(&wf, &p) * 3.0);
        let inf = simulate(&wf, &p, &s, &SimConfig::stochastic(seed)).unwrap();
        let lim = simulate(
            &wf,
            &p,
            &s,
            &SimConfig::stochastic(seed).with_dc_capacity(p.datacenter.bandwidth * 1.5),
        )
        .unwrap();
        assert!(lim.makespan >= inf.makespan - 1e-6, "case {case}");
    }
}

/// Conservative weights dominate mean weights for a fixed schedule.
#[test]
fn conservative_dominates_mean() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED_0005 + case);
        let wf = random_workflow(&mut rng);
        let p = Platform::paper_default();
        let s = Algorithm::HeftBudg.run(&wf, &p, floor(&wf, &p) * 3.0);
        let mean = simulate(&wf, &p, &s, &SimConfig::new(WeightModel::Mean)).unwrap();
        let cons = simulate(&wf, &p, &s, &SimConfig::planning()).unwrap();
        assert!(cons.makespan >= mean.makespan - 1e-9, "case {case}");
    }
}

/// Budget division: shares are non-negative and sum to B_calc.
#[test]
fn budget_shares_partition_b_calc() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED_0006 + case);
        let wf = random_workflow(&mut rng);
        let b = rng.gen_range(0.0..100.0f64);
        let p = Platform::paper_default();
        let split = divide_budget(&wf, &p, b);
        assert!(split.shares.iter().all(|&s| s >= 0.0), "case {case}");
        let sum: f64 = split.shares.iter().sum();
        assert!(
            (sum - split.b_calc).abs() < 1e-6 * split.b_calc.max(1.0),
            "case {case}"
        );
        assert!(split.b_calc <= b + 1e-9, "case {case}");
    }
}

/// Simulation is a pure function of (workflow, schedule, config).
#[test]
fn simulation_deterministic() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED_0007 + case);
        let wf = random_workflow(&mut rng);
        let seed = rng.gen_range(0..50u64);
        let p = Platform::paper_default();
        let s = Algorithm::MinMinBudg.run(&wf, &p, floor(&wf, &p) * 2.0);
        let a = simulate(&wf, &p, &s, &SimConfig::stochastic(seed)).unwrap();
        let b = simulate(&wf, &p, &s, &SimConfig::stochastic(seed)).unwrap();
        assert_eq!(a, b, "case {case}");
    }
}

/// Workflow JSON round-trips structurally.
#[test]
fn workflow_json_roundtrip() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED_0008 + case);
        let wf = random_workflow(&mut rng);
        let back = Workflow::from_json(&wf.to_json()).unwrap();
        assert_eq!(back.task_count(), wf.task_count(), "case {case}");
        assert_eq!(back.edge_count(), wf.edge_count(), "case {case}");
        assert_eq!(
            back.topological_order(),
            wf.topological_order(),
            "case {case}"
        );
    }
}

#[test]
fn online_none_watchdog_matches_static_run() {
    // `timeout_sigmas = None` must be byte-for-byte the same execution as
    // a watchdog that can never fire (absurdly large k): the watchdog
    // machinery may not perturb the schedule when it never triggers.
    let mut rng = StdRng::seed_from_u64(77);
    let p = Platform::paper_default();
    for case in 0..CASES / 2 {
        let wf = random_workflow(&mut rng);
        let b = floor(&wf, &p) * rng.gen_range(1.5..6.0f64);
        let seed = rng.gen_range(0..100u64);
        let stat = run_online(&wf, &p, b, OnlineConfig::static_run(seed, b));
        let never = run_online(&wf, &p, b, OnlineConfig::with_watchdog(seed, b, 1e9));
        assert_eq!(stat, never, "case {case}");
        assert_eq!(never.interruptions, 0, "case {case}");
    }
}

#[test]
fn online_interruptions_never_double_bill() {
    // Whatever the watchdog does — interrupt, migrate, re-dispatch — the
    // reported total must equal the per-VM usage intervals priced per
    // category plus the datacenter bill: one interval per VM, no task
    // billed on two VMs for the same seconds.
    let mut rng = StdRng::seed_from_u64(78);
    let p = Platform::paper_default();
    for case in 0..CASES / 2 {
        let wf = random_workflow(&mut rng);
        let b = floor(&wf, &p) * rng.gen_range(1.5..6.0f64);
        let seed = rng.gen_range(0..100u64);
        // k = 0.5σ fires often on high-sigma instances.
        let out = run_online(&wf, &p, b, OnlineConfig::with_watchdog(seed, b, 0.5));
        let vm_total: f64 = out
            .vm_usage
            .iter()
            .map(|&(cat, secs)| {
                assert!(secs >= 0.0, "case {case}: negative usage");
                assert!(secs <= out.makespan + 1e-9, "case {case}: interval exceeds makespan");
                p.vm_cost(CategoryId(cat), secs)
            })
            .sum();
        let external = wf.external_input_data() + wf.external_output_data();
        let dc = p.datacenter.cost(out.makespan, external);
        assert!(
            (vm_total + dc - out.total_cost).abs() < 1e-9,
            "case {case}: vm {vm_total} + dc {dc} != total {}",
            out.total_cost
        );
    }
}
