//! Property-based tests over random DAGs, platforms and budgets: the
//! invariants every schedule/simulation must uphold regardless of input.

use budget_sched::prelude::*;
use proptest::prelude::*;

/// Random layered workflow: 2–5 layers, 1–6 wide, random density.
fn arb_workflow() -> impl Strategy<Value = Workflow> {
    (2usize..=5, 1usize..=6, 0.1f64..0.9, 0u64..1000, 0.0f64..=1.0).prop_map(
        |(layers, width, edge_prob, seed, sigma)| {
            layered_random(
                LayeredParams {
                    layers,
                    width,
                    edge_prob,
                    work: 500.0,
                    data: 20e6,
                },
                GenConfig { tasks: 0, seed, sigma_ratio: sigma },
            )
        },
    )
}

fn arb_budget_mult() -> impl Strategy<Value = f64> {
    1.0f64..20.0
}

fn floor(wf: &Workflow, p: &Platform) -> f64 {
    simulate(wf, p, &min_cost_schedule(wf, p), &SimConfig::planning())
        .unwrap()
        .total_cost
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every algorithm yields a schedule that validates and simulates, with
    /// precedence respected in the realized execution.
    #[test]
    fn schedules_always_valid_and_precedence_safe(
        wf in arb_workflow(),
        mult in arb_budget_mult(),
        seed in 0u64..50,
    ) {
        let p = Platform::paper_default();
        let budget = floor(&wf, &p) * mult;
        for alg in [Algorithm::MinMinBudg, Algorithm::HeftBudg, Algorithm::Bdt, Algorithm::Cg] {
            let s = alg.run(&wf, &p, budget);
            prop_assert!(s.validate(&wf).is_ok(), "{alg}");
            let r = simulate(&wf, &p, &s, &SimConfig::stochastic(seed)).unwrap();
            for e in wf.edges() {
                prop_assert!(
                    r.task(e.to).start >= r.task(e.from).end - 1e-9,
                    "{alg}: edge {:?} violated", e
                );
            }
            for t in &r.tasks {
                prop_assert!(t.end >= t.start);
                prop_assert!(t.realized_weight > 0.0);
            }
        }
    }

    /// Cost breakdown always adds up, and VM accounting is consistent.
    #[test]
    fn report_accounting_consistent(wf in arb_workflow(), seed in 0u64..50) {
        let p = Platform::paper_default();
        let s = Algorithm::HeftBudg.run(&wf, &p, floor(&wf, &p) * 3.0);
        let r = simulate(&wf, &p, &s, &SimConfig::stochastic(seed)).unwrap();
        prop_assert!((r.total_cost - (r.vm_cost + r.datacenter_cost)).abs() < 1e-9);
        let vm_sum: f64 = r.vms.iter().map(|v| v.cost).sum();
        prop_assert!((vm_sum - r.vm_cost).abs() < 1e-9);
        let tasks_sum: usize = r.vms.iter().map(|v| v.tasks_run).sum();
        prop_assert_eq!(tasks_sum, wf.task_count());
        for v in &r.vms {
            prop_assert!(v.ready_at >= v.booked_at);
            prop_assert!(v.released_at >= v.ready_at - 1e-9);
        }
        prop_assert!(r.vms_used <= s.vm_count());
    }

    /// Billing granularity ordering: continuous <= per-second <= per-hour.
    #[test]
    fn billing_granularity_monotone(wf in arb_workflow(), seed in 0u64..50) {
        let base = Platform::paper_default();
        let s = Algorithm::HeftBudg.run(&wf, &base, floor(&wf, &base) * 3.0);
        let cost = |billing| {
            let p = Platform::paper_default().with_billing(billing);
            simulate(&wf, &p, &s, &SimConfig::stochastic(seed)).unwrap().total_cost
        };
        let c = cost(BillingPolicy::Continuous);
        let s1 = cost(BillingPolicy::PerSecond);
        let h = cost(BillingPolicy::PerHour);
        prop_assert!(c <= s1 + 1e-9);
        prop_assert!(s1 <= h + 1e-9);
    }

    /// A finite datacenter capacity can only delay the execution.
    #[test]
    fn finite_dc_capacity_never_speeds_up(wf in arb_workflow(), seed in 0u64..50) {
        let p = Platform::paper_default();
        let s = Algorithm::HeftBudg.run(&wf, &p, floor(&wf, &p) * 3.0);
        let inf = simulate(&wf, &p, &s, &SimConfig::stochastic(seed)).unwrap();
        let lim = simulate(
            &wf,
            &p,
            &s,
            &SimConfig::stochastic(seed).with_dc_capacity(p.datacenter.bandwidth * 1.5),
        )
        .unwrap();
        prop_assert!(lim.makespan >= inf.makespan - 1e-6);
    }

    /// Conservative weights dominate mean weights for a fixed schedule.
    #[test]
    fn conservative_dominates_mean(wf in arb_workflow()) {
        let p = Platform::paper_default();
        let s = Algorithm::HeftBudg.run(&wf, &p, floor(&wf, &p) * 3.0);
        let mean = simulate(&wf, &p, &s, &SimConfig::new(WeightModel::Mean)).unwrap();
        let cons = simulate(&wf, &p, &s, &SimConfig::planning()).unwrap();
        prop_assert!(cons.makespan >= mean.makespan - 1e-9);
    }

    /// Budget division: shares are non-negative and sum to B_calc.
    #[test]
    fn budget_shares_partition_b_calc(wf in arb_workflow(), b in 0.0f64..100.0) {
        let p = Platform::paper_default();
        let split = divide_budget(&wf, &p, b);
        prop_assert!(split.shares.iter().all(|&s| s >= 0.0));
        let sum: f64 = split.shares.iter().sum();
        prop_assert!((sum - split.b_calc).abs() < 1e-6 * split.b_calc.max(1.0));
        prop_assert!(split.b_calc <= b + 1e-9);
    }

    /// Simulation is a pure function of (workflow, schedule, config).
    #[test]
    fn simulation_deterministic(wf in arb_workflow(), seed in 0u64..50) {
        let p = Platform::paper_default();
        let s = Algorithm::MinMinBudg.run(&wf, &p, floor(&wf, &p) * 2.0);
        let a = simulate(&wf, &p, &s, &SimConfig::stochastic(seed)).unwrap();
        let b = simulate(&wf, &p, &s, &SimConfig::stochastic(seed)).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Workflow JSON round-trips structurally.
    #[test]
    fn workflow_json_roundtrip(wf in arb_workflow()) {
        let back = Workflow::from_json(&wf.to_json()).unwrap();
        prop_assert_eq!(back.task_count(), wf.task_count());
        prop_assert_eq!(back.edge_count(), wf.edge_count());
        prop_assert_eq!(back.topological_order(), wf.topological_order());
    }
}
