//! Cross-crate integration tests: every algorithm against every benchmark
//! type, end to end (generate → schedule → simulate → check invariants).

// Helper fns in integration-test files miss the tests-only exemption.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use budget_sched::prelude::*;

fn planning(wf: &Workflow, p: &Platform, s: &Schedule) -> SimulationReport {
    simulate(wf, p, s, &SimConfig::planning()).expect("valid schedule")
}

#[test]
fn all_algorithms_all_types_produce_valid_executable_schedules() {
    let p = Platform::paper_default();
    for ty in BenchmarkType::ALL {
        let wf = ty.generate(GenConfig::new(30, 1));
        for alg in Algorithm::ALL {
            let s = alg.run(&wf, &p, 2.0);
            s.validate(&wf).unwrap_or_else(|e| panic!("{alg} on {}: {e}", ty.name()));
            let r = planning(&wf, &p, &s);
            assert!(r.makespan > 0.0 && r.total_cost > 0.0, "{alg} on {}", ty.name());
            assert!(
                (r.total_cost - (r.vm_cost + r.datacenter_cost)).abs() < 1e-9,
                "cost breakdown inconsistent for {alg}"
            );
        }
    }
}

#[test]
fn budget_aware_core_algorithms_hold_planned_cost_within_budget() {
    let p = Platform::paper_default();
    for ty in BenchmarkType::ALL {
        let wf = ty.generate(GenConfig::new(60, 1));
        let floor = planning(&wf, &p, &min_cost_schedule(&wf, &p)).total_cost;
        for mult in [1.2, 2.0, 5.0] {
            let budget = floor * mult;
            for alg in [Algorithm::MinMinBudg, Algorithm::HeftBudg] {
                let s = alg.run(&wf, &p, budget);
                let r = planning(&wf, &p, &s);
                assert!(
                    r.total_cost <= budget * 1.1,
                    "{alg} on {} x{mult}: ${} > ${budget}",
                    ty.name(),
                    r.total_cost
                );
            }
        }
    }
}

#[test]
fn heft_budg_beats_min_min_budg_on_montage() {
    // Paper §V-B: "HEFTBUDG needs a smaller initial budget than MIN-MINBUDG
    // for MONTAGE" / obtains better makespans at a given budget on
    // workflows with non-trivial dependence structure.
    let p = Platform::paper_default();
    let mut heft_wins = 0;
    let mut total = 0;
    for seed in 0..3 {
        let wf = montage(GenConfig::new(90, seed));
        let floor = planning(&wf, &p, &min_cost_schedule(&wf, &p)).total_cost;
        for mult in [1.5, 2.0, 3.0] {
            let budget = floor * mult;
            let h = planning(&wf, &p, &Algorithm::HeftBudg.run(&wf, &p, budget)).makespan;
            let m = planning(&wf, &p, &Algorithm::MinMinBudg.run(&wf, &p, budget)).makespan;
            total += 1;
            if h <= m * 1.02 {
                heft_wins += 1;
            }
        }
    }
    assert!(heft_wins * 3 >= total * 2, "HEFTBUDG won only {heft_wins}/{total}");
}

#[test]
fn infinite_budget_budg_variants_match_baselines() {
    let p = Platform::paper_default();
    for ty in BenchmarkType::ALL {
        let wf = ty.generate(GenConfig::new(30, 2));
        let heft_mk = planning(&wf, &p, &Algorithm::Heft.run(&wf, &p, 0.0)).makespan;
        let hb_mk = planning(&wf, &p, &Algorithm::HeftBudg.run(&wf, &p, 1e9)).makespan;
        assert!(
            (heft_mk - hb_mk).abs() < 1e-6,
            "{}: HEFT {heft_mk} vs HEFTBUDG(inf) {hb_mk}",
            ty.name()
        );
    }
}

#[test]
fn refined_variants_dominate_heftbudg() {
    let p = Platform::paper_default();
    for ty in BenchmarkType::ALL {
        let wf = ty.generate(GenConfig::new(30, 1));
        let floor = planning(&wf, &p, &min_cost_schedule(&wf, &p)).total_cost;
        let budget = floor * 2.0;
        let base = planning(&wf, &p, &Algorithm::HeftBudg.run(&wf, &p, budget)).makespan;
        for alg in [Algorithm::HeftBudgPlus, Algorithm::HeftBudgPlusInv] {
            let refined = planning(&wf, &p, &alg.run(&wf, &p, budget));
            assert!(
                refined.makespan <= base + 1e-6,
                "{alg} on {}: {} > {base}",
                ty.name(),
                refined.makespan
            );
            assert!(refined.total_cost <= budget + 1e-9);
        }
    }
}

#[test]
fn cg_stays_near_cheapest_schedules() {
    // Paper Fig. 3: CG's spend hugs the min-cost floor.
    let p = Platform::paper_default();
    let wf = cybershake(GenConfig::new(90, 1));
    let floor = planning(&wf, &p, &min_cost_schedule(&wf, &p)).total_cost;
    let budget = floor * 3.0;
    let cg_cost = planning(&wf, &p, &Algorithm::Cg.run(&wf, &p, budget)).total_cost;
    let heft_cost = planning(&wf, &p, &Algorithm::HeftBudg.run(&wf, &p, budget)).total_cost;
    assert!(
        cg_cost <= heft_cost * 1.2,
        "CG (${cg_cost}) should spend no more than HEFTBUDG (${heft_cost})"
    );
}

#[test]
fn stochastic_budget_compliance_rates_match_paper_shape() {
    // Fig. 3 row 2: HEFTBUDG/MIN-MINBUDG valid nearly always at moderate
    // budgets; BDT markedly less often at the smallest budgets.
    let p = Platform::paper_default();
    let wf = montage(GenConfig::new(60, 1));
    let floor = planning(&wf, &p, &min_cost_schedule(&wf, &p)).total_cost;
    let budget = floor * 1.3;
    let reps: usize = 20;
    let rate = |alg: Algorithm| {
        let s = alg.run(&wf, &p, budget);
        (0..reps)
            .filter(|&seed| {
                simulate(&wf, &p, &s, &SimConfig::stochastic(seed as u64))
                    .unwrap()
                    .within_budget(budget)
            })
            .count()
    };
    let heftbudg = rate(Algorithm::HeftBudg);
    let bdt_rate = rate(Algorithm::Bdt);
    assert!(heftbudg >= reps * 9 / 10, "HEFTBUDG only {heftbudg}/{reps} valid");
    assert!(bdt_rate <= heftbudg, "BDT ({bdt_rate}) should not beat HEFTBUDG ({heftbudg})");
}

#[test]
fn vm_enrollment_grows_with_budget() {
    let p = Platform::paper_default();
    let wf = cybershake(GenConfig::new(90, 1));
    let floor = planning(&wf, &p, &min_cost_schedule(&wf, &p)).total_cost;
    let poor = Algorithm::HeftBudg.run(&wf, &p, floor * 1.1).used_vm_count();
    let rich = Algorithm::HeftBudg.run(&wf, &p, floor * 20.0).used_vm_count();
    assert!(rich > poor, "rich {rich} !> poor {poor}");
}

#[test]
fn epigenomics_and_sipht_work_with_all_core_algorithms() {
    let p = Platform::paper_default();
    for wf in [epigenomics(GenConfig::new(60, 1)), sipht(GenConfig::new(60, 1))] {
        for alg in [Algorithm::MinMinBudg, Algorithm::HeftBudg, Algorithm::Bdt, Algorithm::Cg] {
            let s = alg.run(&wf, &p, 3.0);
            s.validate(&wf).unwrap();
            let r = planning(&wf, &p, &s);
            assert!(r.makespan > 0.0, "{alg} on {}", wf.name);
        }
    }
}

#[test]
fn budget_held_across_all_five_benchmark_types() {
    // The gap-charging cost model keeps HEFTBUDG within budget even on the
    // hub-join SIPHT topology that originally broke it (DESIGN.md §2).
    let p = Platform::paper_default();
    let workflows = [
        montage(GenConfig::new(60, 1)),
        cybershake(GenConfig::new(60, 1)),
        ligo(GenConfig::new(60, 1)),
        epigenomics(GenConfig::new(60, 1)),
        sipht(GenConfig::new(60, 1)),
    ];
    for wf in &workflows {
        let floor = planning(wf, &p, &min_cost_schedule(wf, &p)).total_cost;
        for mult in [1.0, 1.3, 2.0, 5.0] {
            let budget = floor * mult;
            let (s, _) = budget_sched::scheduler::heft_budg(wf, &p, budget);
            let r = planning(wf, &p, &s);
            assert!(
                r.total_cost <= budget * 1.05 + 1e-9,
                "{} x{mult}: planned {} > budget {budget}",
                wf.name,
                r.total_cost
            );
        }
    }
}

#[test]
fn extension_heuristics_competitive_with_min_min_budg() {
    let p = Platform::paper_default();
    let wf = cybershake(GenConfig::new(60, 2));
    let floor = planning(&wf, &p, &min_cost_schedule(&wf, &p)).total_cost;
    let budget = floor * 2.0;
    let reference = planning(&wf, &p, &Algorithm::MinMinBudg.run(&wf, &p, budget)).makespan;
    for alg in [Algorithm::MaxMinBudg, Algorithm::SufferageBudg] {
        let r = planning(&wf, &p, &alg.run(&wf, &p, budget));
        assert!(r.total_cost <= budget * 1.05, "{alg} busts the budget");
        assert!(
            r.makespan <= reference * 2.0,
            "{alg} makespan {} vs MIN-MINBUDG {reference}",
            r.makespan
        );
    }
}

#[test]
fn ensemble_respects_global_budget_end_to_end() {
    use budget_sched::scheduler::{schedule_ensemble, EnsembleMember};
    let p = Platform::paper_default();
    let members = vec![
        EnsembleMember { workflow: montage(GenConfig::new(30, 1)), priority: 4.0 },
        EnsembleMember { workflow: ligo(GenConfig::new(30, 2)), priority: 2.0 },
    ];
    let r = schedule_ensemble(&members, &p, 0.5);
    assert!(r.total_planned_cost <= 0.5);
    // Every admitted schedule replays fine with stochastic weights.
    for a in &r.admitted {
        let wf = &members[a.index].workflow;
        let rep = simulate(wf, &p, &a.schedule, &SimConfig::stochastic(9)).unwrap();
        assert!(rep.makespan > 0.0);
    }
}

#[test]
fn execution_metrics_consistent_across_algorithms() {
    use budget_sched::simulator::metrics::metrics;
    let p = Platform::paper_default();
    let wf = montage(GenConfig::new(60, 1));
    let floor = planning(&wf, &p, &min_cost_schedule(&wf, &p)).total_cost;
    for alg in [Algorithm::HeftBudg, Algorithm::Bdt] {
        let s = alg.run(&wf, &p, floor * 3.0);
        let r = simulate(&wf, &p, &s, &SimConfig::stochastic(4)).unwrap();
        let m = metrics(&r);
        assert!(m.utilization > 0.0 && m.utilization <= 1.0 + 1e-9, "{alg}: {m:?}");
        assert!(m.peak_parallelism >= 1);
        assert!(m.mean_parallelism <= m.peak_parallelism as f64 + 1e-9);
        assert!((m.speedup - m.total_compute_time / r.makespan).abs() < 1e-9);
    }
}
