//! Fault-injection regression suite: bit-exact determinism of seeded fault
//! runs, bit-exact equivalence of the zero-fault configuration with the
//! plain engine, and the recovery loop's budget/lint guarantees.

// Helper fns in integration-test files miss the tests-only exemption.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use budget_sched::prelude::*;
use budget_sched::simulator::SimError;

fn paper() -> Platform {
    Platform::paper_default()
}

fn storm(seed: u64) -> FaultConfig {
    FaultConfig::new(seed)
        .with_crash(CrashModel::exponential(600.0))
        .with_boot(BootFaultModel::new(0.2, 3).with_backoff(2.0))
        .with_degradation(DegradationModel::new(0.3, 500.0, 80.0))
}

fn mild(seed: u64) -> FaultConfig {
    FaultConfig::new(seed).with_crash(CrashModel::weibull(2400.0, 1.5))
}

/// Same seed + same fault config ⇒ bit-identical [`FaultRun`]s, across
/// algorithms and fault intensities (ISSUE 4 satellite: determinism).
#[test]
fn fault_injection_is_bit_deterministic() {
    let p = paper();
    for (wi, wf) in [montage(GenConfig::new(40, 1)), ligo(GenConfig::new(40, 2))]
        .iter()
        .enumerate()
    {
        for alg in [Algorithm::Heft, Algorithm::HeftBudg, Algorithm::MinMinBudg] {
            let sched = alg.run(wf, &p, 2.0);
            for faults in [mild(9), storm(9)] {
                let cfg = SimConfig::stochastic(5);
                let a = simulate_with_faults(wf, &p, &sched, &cfg, &faults).unwrap();
                let b = simulate_with_faults(wf, &p, &sched, &cfg, &faults).unwrap();
                assert_eq!(a, b, "wf {wi} alg {alg} not reproducible");
            }
        }
    }
}

/// Different fault seeds must actually decorrelate the injected events.
#[test]
fn fault_seeds_decorrelate() {
    let p = paper();
    let wf = montage(GenConfig::new(60, 1));
    let sched = Algorithm::HeftBudg.run(&wf, &p, 2.0);
    let cfg = SimConfig::planning();
    let runs: Vec<_> = (0..8u64)
        .map(|s| simulate_with_faults(&wf, &p, &sched, &cfg, &storm(s)).unwrap())
        .collect();
    let distinct = runs
        .iter()
        .map(|r| (r.stats.crashes, r.stats.boot_retries, r.report.makespan.to_bits()))
        .collect::<std::collections::HashSet<_>>()
        .len();
    assert!(distinct > 1, "8 seeds produced identical fault patterns");
}

/// A fault config that can never fire (infinite MTBF, zero boot-failure
/// probability) must reproduce the plain engine's report bit for bit —
/// the fault layer may not perturb the event order or the arithmetic
/// (ISSUE 4 acceptance: fault-rate-0 equivalence).
#[test]
fn zero_fault_rate_is_bit_identical_to_plain_engine() {
    let p = paper();
    let inert = FaultConfig::new(123)
        .with_crash(CrashModel::exponential(f64::INFINITY))
        .with_boot(BootFaultModel::new(0.0, 3));
    for wf in [
        montage(GenConfig::new(60, 1)),
        cybershake(GenConfig::new(60, 2)),
        ligo(GenConfig::new(60, 3)),
    ] {
        for alg in [Algorithm::Heft, Algorithm::HeftBudg, Algorithm::MinMinBudg] {
            let sched = alg.run(&wf, &p, 2.0);
            for cfg in [SimConfig::planning(), SimConfig::stochastic(17)] {
                let plain = simulate(&wf, &p, &sched, &cfg).unwrap();
                let faulted = simulate_with_faults(&wf, &p, &sched, &cfg, &inert).unwrap();
                assert_eq!(plain, faulted.report, "{alg}: zero-fault run diverged");
                assert!(faulted.complete);
                assert_eq!(faulted.stats, FaultStats::default());
                assert!(faulted.durable.iter().all(|&d| d));
            }
        }
    }
}

/// The recovery loop is deterministic end to end: same config ⇒ identical
/// outcome including every epoch record, for each policy.
#[test]
fn recovery_outcome_is_deterministic() {
    let p = paper();
    let wf = montage(GenConfig::new(40, 4));
    for policy in RecoveryPolicy::ALL {
        let cfg = RecoveryConfig::new(Algorithm::HeftBudg, policy, 3.0, storm(21))
            .with_weights(WeightModel::Stochastic { seed: 2 });
        let a = run_with_recovery(&wf, &p, &cfg).unwrap();
        let b = run_with_recovery(&wf, &p, &cfg).unwrap();
        assert_eq!(a, b, "{policy}: recovery not reproducible");
    }
}

/// Budget-aware rescheduling that completes must pass the fault-aware
/// plan lint in every epoch, including the Eq. 3 budget clause on the
/// residual budget (ISSUE 4 acceptance).
#[test]
fn reschedule_epochs_are_lint_clean() {
    let p = paper();
    for seed in [2u64, 8, 21] {
        let wf = ligo(GenConfig::new(40, seed));
        let cfg = RecoveryConfig::new(
            Algorithm::HeftBudg,
            RecoveryPolicy::RescheduleBudgetAware,
            8.0,
            mild(seed),
        )
        .with_max_epochs(40)
        .with_lint();
        let out = run_with_recovery(&wf, &p, &cfg).unwrap();
        assert!(out.lint_violations.is_empty(), "seed {seed}: {:?}", out.lint_violations);
        if out.completed {
            assert!(out.within_budget(), "seed {seed}: completed over budget");
        }
    }
}

/// `SimError::Stalled` carries the unfinished task ids and prints them
/// (ISSUE 4 satellite: richer stall diagnostics).
#[test]
fn stalled_error_reports_unfinished_tasks() {
    let e = SimError::Stalled {
        completed: 2,
        unfinished: vec![TaskId(3), TaskId(7)],
    };
    let msg = e.to_string();
    assert!(msg.contains("T3"), "missing id: {msg}");
    assert!(msg.contains("T7"), "missing id: {msg}");
    assert!(msg.contains('2'), "missing completed count: {msg}");

    // Long lists are elided, not dumped.
    let many = SimError::Stalled {
        completed: 0,
        unfinished: (0..20).map(TaskId).collect(),
    };
    let msg = many.to_string();
    assert!(msg.contains("20 total"), "missing elision: {msg}");
    assert!(!msg.contains("T19"), "should elide the tail: {msg}");
}
