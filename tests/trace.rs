//! End-to-end observability validation: Chrome-trace export round-trip on
//! a faulted MONTAGE run, and the budget-ledger ⇔ simulator-bill exact
//! reconciliation property across fault seeds and recovery policies.

// Helper fns in integration-test files miss the tests-only exemption.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use budget_sched::prelude::*;
use serde_json::Value;
use std::collections::{BTreeMap, BTreeSet};

fn stormy(seed: u64) -> FaultConfig {
    FaultConfig::new(seed)
        .with_crash(CrashModel::exponential(900.0))
        .with_boot(BootFaultModel::new(0.15, 3))
        .with_degradation(DegradationModel::new(0.25, 700.0, 90.0))
}

#[test]
fn chrome_trace_round_trips_a_faulted_montage_run() {
    let wf = montage(GenConfig::new(30, 1));
    let p = Platform::paper_default();
    let cfg = RecoveryConfig::new(
        Algorithm::HeftBudg,
        RecoveryPolicy::RescheduleBudgetAware,
        3.0,
        stormy(7),
    )
    .with_weights(WeightModel::Stochastic { seed: 5 })
    .with_max_epochs(40);
    let mut rec = RecordingSink::new();
    let out = run_with_recovery_observed(&wf, &p, &cfg, &mut rec).unwrap();
    assert!(
        out.stats.crashes + out.stats.boot_retries + out.stats.degradation_windows > 0,
        "fault config injected nothing — the round-trip would not exercise fault spans"
    );

    let trace = ChromeTrace::from_events(&rec.events);
    let json = trace.to_json();
    let v: Value = serde_json::from_str(&json).expect("exporter emits well-formed JSON");
    let evs = v["traceEvents"].as_array().expect("traceEvents is an array");
    assert!(!evs.is_empty());

    let mut tracks: BTreeMap<(u64, u64), Vec<(f64, f64)>> = BTreeMap::new();
    let (mut spans, mut instants) = (0usize, 0usize);
    for e in evs {
        let ph = e["ph"].as_str().expect("every event has a ph");
        let pid = e["pid"].as_u64().expect("every event has a numeric pid");
        let tid = e["tid"].as_u64().expect("every event has a numeric tid");
        match ph {
            "X" => {
                let ts = e["ts"].as_f64().expect("span ts");
                let dur = e["dur"].as_f64().expect("span dur");
                assert!(ts.is_finite() && ts >= 0.0, "bad ts {ts}");
                assert!(dur.is_finite() && dur >= 0.0, "bad dur {dur}");
                assert!(e["name"].as_str().is_some_and(|n| !n.is_empty()));
                tracks.entry((pid, tid)).or_default().push((ts, dur));
                spans += 1;
            }
            "i" => {
                assert_eq!(e["s"].as_str(), Some("t"), "instants are thread-scoped");
                assert!(e["ts"].as_f64().is_some_and(|t| t.is_finite() && t >= 0.0));
                instants += 1;
            }
            "M" => {
                assert!(e["args"]["name"].as_str().is_some_and(|n| !n.is_empty()));
            }
            other => panic!("unexpected ph `{other}`"),
        }
    }
    assert_eq!(spans, trace.span_count());
    assert_eq!(instants, trace.instant_count());
    assert!(spans > 0 && instants > 0, "faulted run should have both spans and instants");

    // The engine serializes activity per track (one compute task, one
    // download, one upload in flight per VM; degradation windows are
    // disjoint), so spans on each (pid, tid) track must be monotone and
    // non-overlapping. 0.01 µs slack covers the {:.3} serialization.
    for ((pid, tid), mut sp) in tracks {
        sp.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in sp.windows(2) {
            assert!(
                w[1].0 + 0.01 >= w[0].0 + w[0].1,
                "overlapping spans on pid {pid} tid {tid}: {w:?}"
            );
        }
    }

    // One trace process per recovery epoch.
    let span_pids: BTreeSet<u64> = evs
        .iter()
        .filter(|e| e["ph"].as_str() == Some("X"))
        .map(|e| e["pid"].as_u64().unwrap())
        .collect();
    assert_eq!(span_pids.len(), out.epochs.len(), "one pid per epoch");
}

#[test]
fn ledger_reconciles_exactly_across_fault_seeds_and_policies() {
    let wf = montage(GenConfig::new(30, 2));
    let p = Platform::paper_default();
    for seed in 0..8u64 {
        for policy in RecoveryPolicy::ALL {
            let cfg = RecoveryConfig::new(Algorithm::HeftBudg, policy, 2.5, stormy(seed))
                .with_weights(WeightModel::Stochastic { seed })
                .with_max_epochs(30);
            let mut rec = RecordingSink::new();
            let out = run_with_recovery_observed(&wf, &p, &cfg, &mut rec).unwrap();
            let ledger = BudgetLedger::from_events(&rec.events);
            assert!(
                ledger.reconcile(out.total_cost),
                "seed {seed} {policy}: ledger {} != bill {}",
                ledger.billed_total(),
                out.total_cost
            );
            assert_eq!(ledger.epoch_totals().len(), out.epochs.len(), "seed {seed} {policy}");
            assert_eq!(ledger.pot_violations(), 0, "seed {seed} {policy}: pot replay diverged");
        }
    }
}

#[test]
fn single_run_ledger_reconciles_and_counters_add_up() {
    let wf = ligo(GenConfig::new(40, 3));
    let p = Platform::paper_default();
    let n = u64::try_from(wf.task_count()).unwrap();
    let mut rec = RecordingSink::new();
    let sched = Algorithm::HeftBudg.run_observed(&wf, &p, 2.0, &mut rec);
    let report = simulate_observed(&wf, &p, &sched, &SimConfig::stochastic(9), &mut rec).unwrap();
    let ledger = BudgetLedger::from_events(&rec.events);
    assert!(
        ledger.reconcile(report.total_cost),
        "ledger {} != bill {}",
        ledger.billed_total(),
        report.total_cost
    );
    let c = Counters::from_events(&rec.events);
    assert_eq!(c.get("tasks_placed"), n);
    assert_eq!(c.get("sim_task_starts"), n);
    assert!(c.get("candidate_evals") > 0);
    assert_eq!(c.get("plan_candidate_evals"), c.get("candidate_evals"));
}
