//! End-to-end tests of the `wfs` CLI binary: gen → stats/dot → schedule →
//! simulate → sweep, through real files and process invocations.

// Test code may panic freely; the tests-only clippy exemption does not reach
// helper fns in integration-test files, so allow at file level.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::process::{Command, Output};

fn wfs(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wfs"))
        .args(args)
        .output()
        .expect("wfs binary runs")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wfs-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn gen_stats_dot_roundtrip() {
    let wf = tmp("m30.json");
    let out = wfs(&["gen", "montage", "30", "--seed", "2", "-o", wf.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(wf.exists());

    let out = wfs(&["stats", wf.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("tasks         30"), "{text}");
    assert!(text.contains("MONTAGE-30-s2"), "{text}");

    let out = wfs(&["dot", wf.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("digraph"));
}

#[test]
fn schedule_then_simulate() {
    let wf = tmp("c30.json");
    assert!(wfs(&["gen", "cybershake", "30", "-o", wf.to_str().unwrap()]).status.success());
    let sched = tmp("c30-sched.json");
    let out = wfs(&[
        "schedule",
        wf.to_str().unwrap(),
        "--alg",
        "heftbudg",
        "--budget",
        "1.0",
        "-o",
        sched.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = wfs(&[
        "simulate",
        wf.to_str().unwrap(),
        sched.to_str().unwrap(),
        "--seed",
        "7",
        "--budget",
        "1.0",
        "--gantt",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("makespan"), "{text}");
    assert!(text.contains("total cost"), "{text}");
    assert!(text.contains("in budget"), "{text}");
    assert!(text.contains('#'), "gantt missing: {text}");
}

#[test]
fn sweep_prints_table() {
    let wf = tmp("l30.json");
    assert!(wfs(&["gen", "ligo", "30", "-o", wf.to_str().unwrap()]).status.success());
    let out = wfs(&[
        "sweep",
        wf.to_str().unwrap(),
        "--budgets",
        "0.1,1.0",
        "--algs",
        "heftbudg,cg",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("HEFTBUDG"), "{text}");
    assert!(text.contains("CG"), "{text}");
    // 2 budgets x 2 algorithms + header.
    assert_eq!(text.lines().count(), 5, "{text}");
}

#[test]
fn platform_dump_parses_back() {
    let out = wfs(&["platform"]);
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    let p: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(p["categories"].as_array().unwrap().len(), 3);
}

#[test]
fn epigenomics_generator_exposed() {
    let out = wfs(&["gen", "epigenomics", "20"]);
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("EPIGENOMICS-20"), "{json}");
}

#[test]
fn bad_usage_exits_nonzero_with_usage() {
    let out = wfs(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let out = wfs(&["schedule", "/nonexistent.json", "--alg", "heft", "--budget", "1"]);
    assert!(!out.status.success());

    let out = wfs(&["gen", "montage", "30", "--alg"]); // stray flag ok, still generates
    assert!(out.status.success());
}

#[test]
fn dax_roundtrip_through_cli() {
    let dax = tmp("m20.dax");
    let out = wfs(&["gen", "montage", "20", "-o", dax.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let content = std::fs::read_to_string(&dax).unwrap();
    assert!(content.starts_with("<?xml"), "not DAX: {}", &content[..40.min(content.len())]);

    // The DAX file is accepted everywhere a workflow is.
    let out = wfs(&["stats", dax.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("tasks         20"));

    let sched = tmp("m20-sched.json");
    let out = wfs(&[
        "schedule",
        dax.to_str().unwrap(),
        "--alg",
        "minminbudg",
        "--budget",
        "0.5",
        "-o",
        sched.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn deadline_command_reports_min_budget() {
    let wf = tmp("m30d.json");
    assert!(wfs(&["gen", "montage", "30", "-o", wf.to_str().unwrap()]).status.success());
    let out = wfs(&["deadline", wf.to_str().unwrap(), "--deadline", "2000"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("min budget"), "{text}");

    // Unreachable deadline fails loudly.
    let out = wfs(&["deadline", wf.to_str().unwrap(), "--deadline", "0.5"]);
    assert!(!out.status.success());
}

#[test]
fn simulate_writes_svg() {
    let wf = tmp("c20.json");
    assert!(wfs(&["gen", "cybershake", "20", "-o", wf.to_str().unwrap()]).status.success());
    let sched = tmp("c20-sched.json");
    assert!(wfs(&[
        "schedule",
        wf.to_str().unwrap(),
        "--alg",
        "heftbudg",
        "--budget",
        "1",
        "-o",
        sched.to_str().unwrap()
    ])
    .status
    .success());
    let svg = tmp("c20.svg");
    let out = wfs(&[
        "simulate",
        wf.to_str().unwrap(),
        sched.to_str().unwrap(),
        "--svg",
        svg.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let content = std::fs::read_to_string(&svg).unwrap();
    assert!(content.starts_with("<svg"));
}

#[test]
fn custom_platform_file_is_used() {
    // Dump, modify nothing, and feed it back via --platform.
    let pfile = tmp("platform.json");
    let out = wfs(&["platform", "-o", pfile.to_str().unwrap()]);
    assert!(out.status.success());
    let wf = tmp("m11.json");
    assert!(wfs(&["gen", "montage", "11", "-o", wf.to_str().unwrap()]).status.success());
    let out = wfs(&[
        "sweep",
        wf.to_str().unwrap(),
        "--budgets",
        "0.5",
        "--platform",
        pfile.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn trace_subcommand_writes_chrome_trace_and_reconciles() {
    let wf = tmp("t30.json");
    assert!(wfs(&["gen", "montage", "30", "--seed", "5", "-o", wf.to_str().unwrap()])
        .status
        .success());

    // Explicit output path, with ledger and counters.
    let trace = tmp("t30-explicit.trace.json");
    let out = wfs(&[
        "trace",
        wf.to_str().unwrap(),
        "--budget",
        "2.0",
        "--seed",
        "3",
        "--ledger",
        "--counters",
        "-o",
        trace.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("algorithm  HEFTBUDG"), "{text}");
    assert!(text.contains("makespan"), "{text}");
    assert!(text.contains("budget ledger"), "{text}");
    assert!(text.contains("reconciles  yes (exact)"), "{text}");
    assert!(text.contains("tasks_placed"), "{text}");
    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace).unwrap()).unwrap();
    assert!(!json["traceEvents"].as_array().unwrap().is_empty());

    // Default output path: the workflow file with `.trace.json` extension.
    let out = wfs(&["trace", wf.to_str().unwrap(), "--budget", "2.0"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(tmp("t30.trace.json").exists());

    // Missing budget and garbage budget are usage errors.
    assert!(!wfs(&["trace", wf.to_str().unwrap()]).status.success());
    assert!(!wfs(&["trace", wf.to_str().unwrap(), "--budget", "inf"]).status.success());
}

#[test]
fn faults_trace_and_ledger_flags_export_and_reconcile() {
    let wf = tmp("ft30.json");
    assert!(wfs(&["gen", "montage", "30", "--seed", "6", "-o", wf.to_str().unwrap()])
        .status
        .success());
    let trace = tmp("ft30.trace.json");
    let out = wfs(&[
        "faults",
        wf.to_str().unwrap(),
        "--budget",
        "3.0",
        "--mtbf",
        "600",
        "--boot-fail",
        "0.15",
        "--stochastic",
        "2",
        "--seed",
        "9",
        "--trace",
        trace.to_str().unwrap(),
        "--ledger",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("outcome"), "{text}");
    assert!(text.contains("budget ledger"), "{text}");
    assert!(text.contains("reconciles  yes (exact)"), "{text}");
    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace).unwrap()).unwrap();
    assert!(!json["traceEvents"].as_array().unwrap().is_empty());
}

#[test]
fn faults_subcommand_runs_and_is_deterministic() {
    let wf = tmp("f30.json");
    assert!(wfs(&["gen", "montage", "30", "--seed", "4", "-o", wf.to_str().unwrap()])
        .status
        .success());
    let run = || {
        wfs(&[
            "faults",
            wf.to_str().unwrap(),
            "--budget",
            "3.0",
            "--policy",
            "retry",
            "--mtbf",
            "300",
            "--boot-fail",
            "0.2",
            "--seed",
            "3",
            "--lint",
        ])
    };
    let a = run();
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("outcome"), "{text}");
    assert!(text.contains("total cost"), "{text}");
    // Same seed, same output — the CLI surface is as deterministic as the
    // engine underneath.
    let b = run();
    assert_eq!(a.stdout, b.stdout);

    // Unknown policy is a usage error.
    let bad = wfs(&["faults", wf.to_str().unwrap(), "--budget", "1", "--policy", "pray"]);
    assert!(!bad.status.success());
}
