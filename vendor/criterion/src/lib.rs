//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the bench files use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`) with a simple wall-clock harness:
//! each benchmark is warmed up, then timed over `sample_size` samples whose
//! per-iteration medians are reported on stdout. No statistics beyond the
//! median, no plots, no saved baselines — just enough to keep
//! `cargo bench` runnable without network access.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Identifier for one benchmark: a function name plus an optional
/// parameter rendered via `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, like criterion's grouped ids.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { id: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Runs closures and records their timing.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Median ns/iter of the last `iter` call.
    last_median_ns: f64,
}

impl Bencher {
    /// Time `routine`, keeping its return value alive so the work is not
    /// optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget elapses, and use the
        // observed speed to size the measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        let samples = self.sample_size.max(2);
        let budget = self.measurement.as_secs_f64();
        let iters_per_sample =
            ((budget / samples as f64 / per_iter.max(1e-9)).round() as u64).max(1);

        let mut medians: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            medians.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        medians.sort_by(|a, b| a.total_cmp(b));
        self.last_median_ns = medians[medians.len() / 2];
    }
}

/// A named group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the warm-up duration for benchmarks in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement duration for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            last_median_ns: f64::NAN,
        };
        f(&mut b);
        println!(
            "{}/{}: median {}",
            self.name,
            id.id,
            format_ns(b.last_median_ns)
        );
        self
    }

    /// Run one benchmark that takes an input by reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (stdout-only harness: nothing to flush).
    pub fn finish(&mut self) {}
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "n/a (no iter call)".to_string()
    } else if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    // Defaults mirror criterion's 3 s warm-up / 5 s measurement / 100
    // samples, which the bench files override per group anyway.
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_secs(3),
            measurement: Duration::from_secs(5),
            sample_size: 100,
        }
    }
}

impl Criterion {
    /// No-op (this harness never plots); kept for API compatibility.
    pub fn without_plots(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        self
    }
}

/// Define a benchmark group: either `criterion_group!(name, target, ...)`
/// or the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
