//! Owned JSON-like value tree, the interchange format of this serde
//! stand-in. `serde_json` re-exports it as `serde_json::Value`.

use std::fmt;

/// A JSON value. Objects preserve insertion order (like serde's streaming
/// serializer does for struct fields).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 round-trip).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object: key/value pairs in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable name of the value's kind (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(xs) => Some(xs),
            _ => None,
        }
    }

    /// Mutable access to the elements if this is an array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(xs) => Some(xs),
            _ => None,
        }
    }

    /// The string slice if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The bool if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Member lookup on objects; `None` for other kinds or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Write `self` as JSON onto `out`; `indent = None` means compact.
    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_escaped(out, s),
            Value::Array(xs) => {
                write_seq(out, indent, '[', ']', xs.iter(), |out, x, ind| {
                    x.write(out, ind)
                });
            }
            Value::Object(fields) => {
                write_seq(out, indent, '{', '}', fields.iter(), |out, (k, v), ind| {
                    write_escaped(out, k);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    v.write(out, ind);
                });
            }
        }
    }

    /// Compact JSON rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// Pretty JSON rendering with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T, Option<usize>),
) {
    out.push(open);
    let n = items.len();
    if n == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|i| i + 1);
    for (i, item) in items.enumerate() {
        if let Some(level) = inner {
            out.push('\n');
            for _ in 0..level * 2 {
                out.push(' ');
            }
        }
        write_item(out, item, inner);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(level) = indent {
        out.push('\n');
        for _ in 0..level * 2 {
            out.push(' ');
        }
    }
    out.push(close);
}

/// JSON has no NaN/Infinity; like serde_json we emit `null` for them.
/// Integral values print without a fractional part so ids round-trip as
/// integers.
fn write_number(out: &mut String, n: f64) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's f64 Display is the shortest decimal that round-trips.
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if f.alternate() {
            write!(f, "{}", self.to_json_pretty())
        } else {
            write!(f, "{}", self.to_json())
        }
    }
}

/// `value["key"]` returns `Null` for missing keys / non-objects, mirroring
/// serde_json's lenient `Index` impl.
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// `value["key"] = ...` inserts into objects, creating the key on demand
/// (and turning `Null` into an object first), like serde_json.
impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if let Value::Null = self {
            *self = Value::Object(Vec::new());
        }
        match self {
            Value::Object(fields) => {
                if let Some(i) = fields.iter().position(|(k, _)| k == key) {
                    &mut fields[i].1
                } else {
                    fields.push((key.to_string(), Value::Null));
                    &mut fields.last_mut().expect("just pushed").1
                }
            }
            other => panic!("cannot index {} with a string key", other.kind()),
        }
    }
}

/// `value[i]` on arrays.
impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(xs) => &xs[i],
            other => panic!("cannot index {} with a usize", other.kind()),
        }
    }
}
