//! Helpers the `serde_derive` stand-in generates calls to.

use crate::{Deserialize, Error, Value};

/// Extract and convert the field `name` from an object value.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v {
        Value::Object(fields) => match fields.iter().find(|(k, _)| k == name) {
            Some((_, fv)) => T::from_value(fv)
                .map_err(|e| Error::msg(format!("field `{name}`: {e}"))),
            None => {
                // Missing fields still deserialize when the target accepts
                // `null` (e.g. `Option`), matching serde's common usage.
                T::from_value(&Value::Null)
                    .map_err(|_| Error::msg(format!("missing field `{name}`")))
            }
        },
        other => Err(Error::msg(format!("expected object, got {}", other.kind()))),
    }
}

/// Extract element `i` of an array value (tuple-struct fields).
pub fn element<T: Deserialize>(v: &Value, i: usize) -> Result<T, Error> {
    match v {
        Value::Array(xs) => match xs.get(i) {
            Some(x) => T::from_value(x),
            None => Err(Error::msg(format!("missing tuple element {i}"))),
        },
        other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
    }
}

/// Error for an unknown enum variant string.
pub fn unknown_variant(ty: &str, got: &Value) -> Error {
    match got {
        Value::String(s) => Error::msg(format!("unknown variant `{s}` for {ty}")),
        other => Error::msg(format!("expected string variant for {ty}, got {}", other.kind())),
    }
}
