//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the real serde cannot be
//! downloaded. This crate implements the small API subset the workspace
//! uses: `Serialize`/`Deserialize` traits (routed through an owned JSON-like
//! [`Value`] tree instead of serde's zero-copy visitor machinery) and the
//! `derive` feature re-exporting the matching derive macros from our local
//! `serde_derive`.
//!
//! The wire behaviour mirrors real serde's JSON mapping for the shapes the
//! workspace derives: named structs become objects (fields in declaration
//! order), newtype structs are transparent, unit enum variants become their
//! name as a string, `Option` maps to `null`/value, and sequences to arrays.

#![warn(missing_docs)]

pub mod de;
pub mod value;

pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Error raised when converting a [`Value`] back into a typed structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub(crate) String);

impl Error {
    /// Create an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be represented as a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`], failing with a message on shape or
    /// type mismatches.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(Error::msg(format!(
                        "expected number, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) if n.fract() == 0.0 => Ok(*n as $t),
                    Value::Number(_) => {
                        Err(Error::msg(concat!("expected integer ", stringify!($t))))
                    }
                    other => Err(Error::msg(format!(
                        "expected number, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(xs) => xs.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for &T
where
    T: ?Sized,
{
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}
