//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses — named-field structs, tuple structs
//! (newtypes serialize transparently, like real serde), and unit-only enums
//! (variants map to their name as a JSON string). No `syn`/`quote`: the item
//! is parsed directly from the `proc_macro` token stream and the impl is
//! assembled as a string.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Shape {
    /// Named-field struct: field names in declaration order.
    Named(Vec<String>),
    /// Tuple struct with this many fields.
    Tuple(usize),
    /// Enum whose variants are all unit: variant names in order.
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// `#[...]` attribute runs: a `#` punct followed by a bracket group.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while *i + 1 < toks.len() {
        match (&toks[*i], &toks[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            _ => break,
        }
    }
}

/// `pub`, optionally followed by a restriction like `(crate)`.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize, what: &str) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde derive: expected {what}, found {other:?}"),
    }
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let keyword = expect_ident(&toks, &mut i, "`struct` or `enum`");
    let name = expect_ident(&toks, &mut i, "type name");
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive: generic types are not supported by this stand-in");
        }
    }
    let shape = match keyword.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            other => panic!("serde derive: unsupported struct body: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::UnitEnum(parse_unit_variants(g.stream(), &name))
            }
            other => panic!("serde derive: expected enum body, found {other:?}"),
        },
        kw => panic!("serde derive: cannot derive for `{kw}` items"),
    };
    Item { name, shape }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut names = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        names.push(expect_ident(&toks, &mut i, "field name"));
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after field, found {other:?}"),
        }
        // Skip the field type: everything up to the next comma that is not
        // nested inside generic angle brackets.
        let mut angle_depth = 0i32;
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    names
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut count = 0usize;
    let mut seg_has_tokens = false;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if seg_has_tokens {
                        count += 1;
                    }
                    seg_has_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        seg_has_tokens = true;
    }
    if seg_has_tokens {
        count += 1;
    }
    count
}

fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        variants.push(expect_ident(&toks, &mut i, "variant name"));
        match toks.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => panic!(
                "serde derive: enum `{enum_name}` has a non-unit variant, \
                 which this stand-in does not support"
            ),
            other => panic!("serde derive: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "fields.push((String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)"
            )
        }
        // Newtypes are transparent (like serde); wider tuples become arrays.
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!("{name}::{v} => ::serde::Value::String(String::from(\"{v}\"))")
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    );
    code.parse().expect("serde derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(v, \"{f}\")?"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de::element(v, {i})?"))
                .collect();
            format!("Ok({name}({}))", elems.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v})"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::String(s) => match s.as_str() {{\n\
                         {},\n\
                         _ => Err(::serde::de::unknown_variant(\"{name}\", v)),\n\
                     }},\n\
                     other => Err(::serde::de::unknown_variant(\"{name}\", other)),\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    let code = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    );
    code.parse().expect("serde derive: generated Deserialize impl must parse")
}
