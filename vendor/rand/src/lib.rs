//! Offline stand-in for the `rand` crate.
//!
//! Provides the API subset the workspace uses: `rngs::StdRng` seeded via
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods
//! `gen::<f64>()`, `gen_range` (integer `Range`, float `RangeInclusive`)
//! and `gen_bool`. The generator is xoshiro256++ with SplitMix64 seed
//! expansion — high-quality and deterministic per seed, though its stream
//! differs from the real `rand`'s StdRng (nothing in the workspace depends
//! on specific stream values, only on per-seed determinism).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        f64_from_bits(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// 53-bit mantissa → uniform f64 in [0, 1).
fn f64_from_bits(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a parameter-free standard distribution.
pub trait Standard: Sized {
    /// Draw one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64_from_bits(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer sampling in `[0, span)` by rejection.
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Reject the incomplete top cycle so every residue is equally likely.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + sample_span(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + sample_span(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u32, u64, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64_from_bits(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64_from_bits(rng.next_u64()) * (hi - lo)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expands the 64-bit seed into the 256-bit state,
            // as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(0..10usize);
            assert!(x < 10);
            let y = rng.gen_range(-0.5..=0.5f64);
            assert!((-0.5..=0.5).contains(&y));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
        // gen_bool(p) should roughly track p.
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }
}
