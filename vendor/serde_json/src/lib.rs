//! Offline stand-in for the `serde_json` crate.
//!
//! Round-trips the workspace's types through the serde shim's [`Value`]
//! tree: `to_string`/`to_string_pretty` serialize via
//! `serde::Serialize::to_value`, and `from_str` runs a small recursive
//! descent JSON parser before handing the tree to
//! `serde::Deserialize::from_value`.

#![warn(missing_docs)]

pub use serde::Value;

/// Error from parsing or converting JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialize `value` as compact JSON. Never fails for tree-shaped data
/// (the `Result` mirrors serde_json's signature).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

/// Convert any serializable value into a [`Value`] tree (used by `json!`).
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(T::from_value(&v)?)
}

/// Build a [`Value`] from JSON-like syntax. Supports `null`, booleans,
/// object/array literals, and any `Serialize` expression in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::json!($val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected `{`")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            // Combine UTF-16 surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.parse_hex4()?;
                                let code = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    if b < 0x20 {
                        return Err(self.err("control character in string"));
                    }
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so it is valid;
                    // copy the whole code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let n = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let src = r#"{"name":"x","xs":[1,2.5,null,true],"nested":{"k":"v \n A"}}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(v["name"].as_str(), Some("x"));
        assert_eq!(v["xs"][1].as_f64(), Some(2.5));
        assert_eq!(v["nested"]["k"].as_str(), Some("v \n A"));
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({"from": 3, "to": 0, "size": 1.0});
        assert_eq!(v["from"].as_u64(), Some(3));
        assert_eq!(v["size"].as_f64(), Some(1.0));
        let arr = json!([1, "two", null, [true]]);
        assert_eq!(arr[1].as_str(), Some("two"));
        assert_eq!(arr[2], Value::Null);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
