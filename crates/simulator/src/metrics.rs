//! Post-hoc metrics over a [`SimulationReport`]: VM utilization, the
//! parallelism profile, cost efficiency — the quantities one inspects when
//! judging *why* a schedule is cheap or slow. [`fault_metrics`] adds the
//! fault-injection view: how much of the bill bought nothing.

use crate::faults::FaultStats;
use crate::report::SimulationReport;
use serde::{Deserialize, Serialize};

/// Aggregated execution metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionMetrics {
    /// Busy time (computing) divided by charged time, averaged over VMs
    /// weighted by their charged time. 1.0 = no idle, no transfer stalls.
    pub utilization: f64,
    /// Total seconds of computation across all tasks.
    pub total_compute_time: f64,
    /// Total charged VM seconds.
    pub total_charged_time: f64,
    /// Average number of concurrently *running* tasks over the makespan.
    pub mean_parallelism: f64,
    /// Maximum number of concurrently running tasks.
    pub peak_parallelism: usize,
    /// Dollars per hour of saved wall-clock relative to a serial execution
    /// of the same realized work (∞ if nothing is saved).
    pub speedup: f64,
}

/// Compute [`ExecutionMetrics`] for a report.
pub fn metrics(report: &SimulationReport) -> ExecutionMetrics {
    let total_compute: f64 = report.tasks.iter().map(|t| t.end - t.start).sum();
    let total_charged: f64 = report
        .vms
        .iter()
        .map(|v| (v.released_at - v.ready_at).max(0.0))
        .sum();

    // Parallelism profile via an event sweep over task intervals.
    let mut events: Vec<(f64, i32)> = Vec::with_capacity(report.tasks.len() * 2);
    for t in &report.tasks {
        events.push((t.start, 1));
        events.push((t.end, -1));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut depth = 0i32;
    let mut peak = 0i32;
    let mut last_t = events.first().map_or(0.0, |e| e.0);
    let mut area = 0.0;
    for (t, d) in events {
        area += depth as f64 * (t - last_t);
        depth += d;
        peak = peak.max(depth);
        last_t = t;
    }
    // Degenerate inputs (an empty report, VMs with zero charged time, a
    // zero-span run) must yield finite zeros, never NaN or ±inf.
    let makespan = report.makespan;
    let per_makespan = |x: f64| if makespan > 0.0 { x / makespan } else { 0.0 };

    ExecutionMetrics {
        utilization: if total_charged > 0.0 { total_compute / total_charged } else { 0.0 },
        total_compute_time: total_compute,
        total_charged_time: total_charged,
        mean_parallelism: per_makespan(area),
        peak_parallelism: peak.max(0) as usize,
        speedup: per_makespan(total_compute),
    }
}

/// Fault-aware metrics: the base execution metrics plus how faults taxed
/// the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultMetrics {
    /// Metrics of the (possibly partial) execution.
    pub execution: ExecutionMetrics,
    /// Raw fault counters of the run.
    pub stats: FaultStats,
    /// Fraction of charged VM seconds that bought nothing durable
    /// (crash tails), in `[0, 1]`.
    pub wasted_billed_fraction: f64,
    /// Fraction of all computation seconds (useful + lost) that crashes
    /// destroyed, in `[0, 1]`.
    pub lost_compute_fraction: f64,
}

/// Compute [`FaultMetrics`] for a faulted run's report and counters.
pub fn fault_metrics(report: &SimulationReport, stats: &FaultStats) -> FaultMetrics {
    let execution = metrics(report);
    let charged = execution.total_charged_time;
    let compute_all = execution.total_compute_time + stats.wasted_compute_seconds;
    FaultMetrics {
        wasted_billed_fraction: if charged > 0.0 {
            (stats.wasted_billed_seconds / charged).clamp(0.0, 1.0)
        } else {
            0.0
        },
        lost_compute_fraction: if compute_all > 0.0 {
            (stats.wasted_compute_seconds / compute_all).clamp(0.0, 1.0)
        } else {
            0.0
        },
        execution,
        stats: stats.clone(),
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use crate::{simulate, SimConfig};
    use wfs_platform::{CategoryId, Platform};
    use wfs_workflow::gen::{bag_of_tasks, chain, GenConfig, BenchmarkType};

    fn paper() -> Platform {
        Platform::paper_default()
    }

    #[test]
    fn serial_chain_has_parallelism_one() {
        let wf = chain(5, 200.0, 0.0);
        let p = paper();
        let mut s = Schedule::new(wf.task_count());
        let vm = s.add_vm(CategoryId(0));
        for &t in wf.topological_order() {
            s.assign(t, vm);
        }
        let r = simulate(&wf, &p, &s, &SimConfig::planning()).unwrap();
        let m = metrics(&r);
        assert_eq!(m.peak_parallelism, 1);
        assert!(m.mean_parallelism <= 1.0 + 1e-9);
        assert!((m.speedup - m.mean_parallelism).abs() < 1e-9);
        // Back-to-back tasks, no transfers: utilization near 1.
        assert!(m.utilization > 0.95, "{m:?}");
    }

    #[test]
    fn parallel_bag_has_high_parallelism() {
        let wf = bag_of_tasks(8, 2000.0, 0.0);
        let p = paper();
        let mut s = Schedule::new(wf.task_count());
        for t in wf.task_ids() {
            let vm = s.add_vm(CategoryId(0));
            s.assign(t, vm);
        }
        let r = simulate(&wf, &p, &s, &SimConfig::planning()).unwrap();
        let m = metrics(&r);
        assert_eq!(m.peak_parallelism, 8);
        assert!(m.mean_parallelism > 4.0, "{m:?}");
        assert!(m.speedup > 4.0);
    }

    #[test]
    fn compute_time_matches_task_intervals() {
        let wf = BenchmarkType::Montage.generate(GenConfig::new(30, 1));
        let p = paper();
        let mut s = Schedule::new(wf.task_count());
        let vm = s.add_vm(CategoryId(1));
        for &t in wf.topological_order() {
            s.assign(t, vm);
        }
        let r = simulate(&wf, &p, &s, &SimConfig::stochastic(3)).unwrap();
        let m = metrics(&r);
        let direct: f64 = r.tasks.iter().map(|t| t.end - t.start).sum();
        assert!((m.total_compute_time - direct).abs() < 1e-9);
        assert!(m.total_charged_time >= m.total_compute_time - 1e-9);
        assert!(m.utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn empty_report_yields_finite_zeros() {
        let r = SimulationReport {
            makespan: 0.0,
            vm_cost: 0.0,
            datacenter_cost: 0.0,
            total_cost: 0.0,
            vms_used: 0,
            tasks: Vec::new(),
            vms: Vec::new(),
        };
        let m = metrics(&r);
        assert_eq!(m.utilization, 0.0);
        assert_eq!(m.total_compute_time, 0.0);
        assert_eq!(m.total_charged_time, 0.0);
        assert_eq!(m.mean_parallelism, 0.0);
        assert_eq!(m.peak_parallelism, 0);
        assert_eq!(m.speedup, 0.0);
        let fm = fault_metrics(&r, &FaultStats::default());
        assert_eq!(fm.wasted_billed_fraction, 0.0);
        assert_eq!(fm.lost_compute_fraction, 0.0);
    }

    #[test]
    fn zero_charged_time_vm_yields_finite_metrics() {
        // A VM released the instant it became ready (e.g. an abandoned
        // boot) contributes zero charged seconds; nothing may divide by it.
        let r = SimulationReport {
            makespan: 0.0,
            vm_cost: 0.0,
            datacenter_cost: 0.0,
            total_cost: 0.0,
            vms_used: 1,
            tasks: Vec::new(),
            vms: vec![crate::report::VmUsage {
                vm: crate::VmId(0),
                category: CategoryId(0),
                booked_at: 0.0,
                ready_at: 10.0,
                released_at: 10.0,
                cost: 0.0,
                tasks_run: 0,
            }],
        };
        let m = metrics(&r);
        assert!(m.utilization.is_finite());
        assert_eq!(m.utilization, 0.0);
        assert_eq!(m.mean_parallelism, 0.0);
        assert!(m.speedup.is_finite());
        let fm = fault_metrics(&r, &FaultStats::default());
        assert!(fm.wasted_billed_fraction.is_finite());
        assert!(fm.lost_compute_fraction.is_finite());
    }

    #[test]
    fn fault_metrics_fractions_are_bounded() {
        let wf = chain(4, 500.0, 1e6);
        let p = paper();
        let mut s = Schedule::new(wf.task_count());
        let vm = s.add_vm(CategoryId(0));
        for &t in wf.topological_order() {
            s.assign(t, vm);
        }
        let r = simulate(&wf, &p, &s, &SimConfig::planning()).unwrap();
        let clean = fault_metrics(&r, &FaultStats::default());
        assert_eq!(clean.wasted_billed_fraction, 0.0);
        assert_eq!(clean.lost_compute_fraction, 0.0);
        let stats = FaultStats {
            crashes: 1,
            tasks_lost: 1,
            wasted_billed_seconds: 10.0,
            wasted_compute_seconds: 5.0,
            ..Default::default()
        };
        let m = fault_metrics(&r, &stats);
        assert!(m.wasted_billed_fraction > 0.0 && m.wasted_billed_fraction <= 1.0, "{m:?}");
        assert!(m.lost_compute_fraction > 0.0 && m.lost_compute_fraction <= 1.0, "{m:?}");
        assert_eq!(m.stats, stats);
    }
}
