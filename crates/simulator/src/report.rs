//! Simulation outputs: per-task records, per-VM usage, cost breakdown.

use crate::schedule::VmId;
use serde::{Deserialize, Serialize};
use wfs_platform::CategoryId;
use wfs_workflow::TaskId;

/// Execution record of one task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// The task.
    pub task: TaskId,
    /// Host VM.
    pub vm: VmId,
    /// Instant computation started (after inputs arrived and the processor
    /// became free).
    pub start: f64,
    /// Instant computation finished.
    pub end: f64,
    /// The realized weight (sampled or deterministic).
    pub realized_weight: f64,
}

/// Usage record of one VM instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmUsage {
    /// The VM.
    pub vm: VmId,
    /// Its category.
    pub category: CategoryId,
    /// Instant the VM was booked (boot begins; `H_start,v` for the
    /// datacenter span of Eq. 2).
    pub booked_at: f64,
    /// Instant the VM became operational (boot done; charging starts —
    /// boot time is uncharged, paper §III-B).
    pub ready_at: f64,
    /// Instant the VM released (last task output fully uploaded;
    /// `H_end,v`).
    pub released_at: f64,
    /// Cost of this VM per Eq. 1.
    pub cost: f64,
    /// Number of tasks it executed.
    pub tasks_run: usize,
}

/// Full report of one simulated execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// `H_end,last − H_start,first`: wall-clock span from booking the first
    /// VM to the last byte reaching the datacenter (the paper's makespan).
    pub makespan: f64,
    /// Sum of VM costs (Σ C_v, Eq. 1).
    pub vm_cost: f64,
    /// Datacenter cost (C_DC, Eq. 2).
    pub datacenter_cost: f64,
    /// Total cost `C_wf = Σ C_v + C_DC`.
    pub total_cost: f64,
    /// VMs that executed at least one task.
    pub vms_used: usize,
    /// Per-task execution records, in task-id order.
    pub tasks: Vec<TaskRecord>,
    /// Per-VM usage records, in VM-id order (only booked VMs).
    pub vms: Vec<VmUsage>,
}

impl SimulationReport {
    /// True if the execution fit within `budget`.
    #[inline]
    pub fn within_budget(&self, budget: f64) -> bool {
        self.total_cost <= budget
    }

    /// True if the execution met the deadline `D >= H_end,last −
    /// H_start,first` (first half of the paper's objective, Eq. 3).
    #[inline]
    pub fn meets_deadline(&self, deadline: f64) -> bool {
        self.makespan <= deadline
    }

    /// The paper's full objective (Eq. 3): deadline met *and* budget held.
    #[inline]
    pub fn satisfies(&self, deadline: f64, budget: f64) -> bool {
        self.meets_deadline(deadline) && self.within_budget(budget)
    }

    /// Export the per-task records as CSV (`task,name-less`; join with the
    /// workflow for names): `task,vm,start,end,realized_weight`.
    pub fn tasks_csv(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("task,vm,start,end,realized_weight\n");
        for t in &self.tasks {
            let _ = writeln!(s, "{},{},{:.6},{:.6},{:.3}", t.task.0, t.vm.0, t.start, t.end, t.realized_weight);
        }
        s
    }

    /// The record for `task`.
    pub fn task(&self, task: TaskId) -> &TaskRecord {
        &self.tasks[task.index()]
    }

    /// Render a compact text Gantt chart (one row per VM), for examples and
    /// debugging. `width` is the number of character columns.
    pub fn gantt(&self, width: usize) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let span = self.makespan.max(1e-9);
        for vm in &self.vms {
            let _ = write!(s, "{:>5} [{:>7}] |", vm.vm.to_string(), format!("cat{}", vm.category.0));
            let mut row = vec![' '; width];
            for t in &self.tasks {
                if t.vm == vm.vm {
                    let a = ((t.start / span) * (width as f64 - 1.0)) as usize;
                    let b = ((t.end / span) * (width as f64 - 1.0)) as usize;
                    for cell in row.iter_mut().take(b.min(width - 1) + 1).skip(a) {
                        *cell = '#';
                    }
                }
            }
            s.extend(row);
            s.push_str("|\n");
        }
        let _ = writeln!(s, "makespan {:.1}s  cost ${:.4}  VMs {}", self.makespan, self.total_cost, self.vms_used);
        s
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;

    fn tiny_report() -> SimulationReport {
        SimulationReport {
            makespan: 100.0,
            vm_cost: 0.02,
            datacenter_cost: 0.01,
            total_cost: 0.03,
            vms_used: 1,
            tasks: vec![TaskRecord {
                task: TaskId(0),
                vm: VmId(0),
                start: 10.0,
                end: 60.0,
                realized_weight: 500.0,
            }],
            vms: vec![VmUsage {
                vm: VmId(0),
                category: CategoryId(0),
                booked_at: 0.0,
                ready_at: 10.0,
                released_at: 100.0,
                cost: 0.02,
                tasks_run: 1,
            }],
        }
    }

    #[test]
    fn within_budget_boundary() {
        let r = tiny_report();
        assert!(r.within_budget(0.03));
        assert!(r.within_budget(1.0));
        assert!(!r.within_budget(0.0299));
    }

    #[test]
    fn deadline_and_eq3_objective() {
        let r = tiny_report();
        assert!(r.meets_deadline(100.0));
        assert!(!r.meets_deadline(99.9));
        assert!(r.satisfies(100.0, 0.03));
        assert!(!r.satisfies(99.0, 0.03));
        assert!(!r.satisfies(100.0, 0.01));
    }

    #[test]
    fn tasks_csv_has_header_and_rows() {
        let csv = tiny_report().tasks_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "task,vm,start,end,realized_weight");
        let row = lines.next().unwrap();
        assert!(row.starts_with("0,0,10.000000,60.000000,500.000"), "{row}");
    }

    #[test]
    fn gantt_renders() {
        let g = tiny_report().gantt(40);
        assert!(g.contains("vm0"));
        assert!(g.contains('#'));
        assert!(g.contains("makespan 100.0s"));
    }

    #[test]
    fn serde_roundtrip() {
        let r = tiny_report();
        let back: SimulationReport =
            serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(r, back);
    }
}
