//! Self-contained SVG Gantt rendering of a [`SimulationReport`] — one lane
//! per VM, one bar per task, boot/idle shading, for eyeballing schedules
//! without external tooling.

use crate::report::SimulationReport;
use std::fmt::Write;

/// Geometry of the rendered chart.
#[derive(Debug, Clone, Copy)]
pub struct SvgOptions {
    /// Total chart width in pixels (time axis).
    pub width: u32,
    /// Height of one VM lane in pixels.
    pub lane_height: u32,
    /// Left margin reserved for VM labels.
    pub label_width: u32,
}

impl Default for SvgOptions {
    fn default() -> Self {
        Self { width: 900, lane_height: 22, label_width: 80 }
    }
}

/// Colour for a task bar: stable per task id, readable on white.
fn task_color(task_id: u32) -> String {
    // Golden-angle hue walk gives well-separated hues for neighbours.
    let hue = (task_id as f64 * 137.508) % 360.0;
    format!("hsl({hue:.0},65%,60%)")
}

/// Render the report as an SVG document string.
pub fn to_svg(report: &SimulationReport, opts: SvgOptions) -> String {
    let span = report.makespan.max(1e-9);
    let start0 = report.vms.iter().map(|v| v.booked_at).fold(f64::INFINITY, f64::min);
    let start0 = if start0.is_finite() { start0 } else { 0.0 };
    let x = |t: f64| -> f64 {
        opts.label_width as f64
            + (t - start0) / span * (opts.width - opts.label_width) as f64
    };
    let lanes = report.vms.len().max(1) as u32;
    let height = lanes * opts.lane_height + 30;

    let mut s = String::with_capacity(4096);
    let _ = write!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{height}" font-family="monospace" font-size="11">"#,
        w = opts.width
    );
    let _ = writeln!(s, "\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>");

    for (lane, vm) in report.vms.iter().enumerate() {
        let y = lane as u32 * opts.lane_height + 4;
        let h = opts.lane_height - 6;
        // Lane label.
        let _ = writeln!(
            s,
            r#"<text x="4" y="{ty}">{vm_id} c{cat}</text>"#,
            ty = y + h / 2 + 4,
            vm_id = vm.vm,
            cat = vm.category.0
        );
        // Rental window (light) and boot segment (hatched grey).
        let _ = writeln!(
            s,
            r##"<rect x="{rx:.1}" y="{y}" width="{rw:.1}" height="{h}" fill="#eee"/>"##,
            rx = x(vm.booked_at),
            rw = (x(vm.released_at) - x(vm.booked_at)).max(1.0),
        );
        let _ = writeln!(
            s,
            r##"<rect x="{bx:.1}" y="{y}" width="{bw:.1}" height="{h}" fill="#ccc"/>"##,
            bx = x(vm.booked_at),
            bw = (x(vm.ready_at) - x(vm.booked_at)).max(0.5),
        );
    }
    // Task bars with tooltips.
    for t in &report.tasks {
        let Some(lane) = report.vms.iter().position(|v| v.vm == t.vm) else { continue };
        let y = lane as u32 * opts.lane_height + 4;
        let h = opts.lane_height - 6;
        let _ = writeln!(
            s,
            r#"<rect x="{tx:.1}" y="{y}" width="{tw:.1}" height="{h}" fill="{fill}"><title>{title}</title></rect>"#,
            tx = x(t.start),
            tw = (x(t.end) - x(t.start)).max(1.0),
            fill = task_color(t.task.0),
            title = format_args!(
                "{} on {} [{:.1}s – {:.1}s], {:.0} Gflop",
                t.task, t.vm, t.start, t.end, t.realized_weight
            ),
        );
    }
    // Footer.
    let _ = writeln!(
        s,
        r#"<text x="{lx}" y="{fy}">makespan {mk:.1}s   cost ${c:.4}   VMs {v}</text>"#,
        lx = opts.label_width,
        fy = height - 8,
        mk = report.makespan,
        c = report.total_cost,
        v = report.vms_used,
    );
    s.push_str("</svg>\n");
    s
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use crate::{simulate, SimConfig};
    use wfs_platform::{CategoryId, Platform};
    use wfs_workflow::gen::{montage, GenConfig};

    fn sample_report() -> SimulationReport {
        let wf = montage(GenConfig::new(30, 1));
        let p = Platform::paper_default();
        let mut s = Schedule::new(wf.task_count());
        let v0 = s.add_vm(CategoryId(0));
        let v1 = s.add_vm(CategoryId(2));
        for (i, &t) in wf.topological_order().iter().enumerate() {
            s.assign(t, if i % 2 == 0 { v0 } else { v1 });
        }
        // Interleaved round-robin can deadlock; fall back to two halves.
        if s.validate(&wf).is_err() {
            let mut s2 = Schedule::new(wf.task_count());
            let v0 = s2.add_vm(CategoryId(0));
            for &t in wf.topological_order() {
                s2.assign(t, v0);
            }
            return simulate(&wf, &p, &s2, &SimConfig::stochastic(1)).unwrap();
        }
        simulate(&wf, &p, &s, &SimConfig::stochastic(1)).unwrap()
    }

    #[test]
    fn svg_is_well_formed_and_complete() {
        let r = sample_report();
        let svg = to_svg(&r, SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One lane label per booked VM, one bar per task.
        let bars = svg.matches("<title>").count();
        assert_eq!(bars, r.tasks.len());
        for vm in &r.vms {
            assert!(svg.contains(&format!("{} c{}", vm.vm, vm.category.0)));
        }
        assert!(svg.contains("makespan"));
    }

    #[test]
    fn colors_are_stable_and_distinct() {
        assert_eq!(task_color(3), task_color(3));
        assert_ne!(task_color(3), task_color(4));
    }

    #[test]
    fn custom_geometry_respected() {
        let r = sample_report();
        let svg = to_svg(&r, SvgOptions { width: 400, lane_height: 10, label_width: 40 });
        assert!(svg.contains(r#"width="400""#));
    }
}
