//! # wfs-simulator — discrete-event execution of workflow schedules
//!
//! The SimGrid/SimDag substitute of the reproduction (DESIGN.md §3): given a
//! [`Schedule`], a workflow and a platform, [`simulate`] replays the
//! execution under the paper's model — on-demand VM booking with uncharged
//! boot delay, all inter-VM data relayed through the datacenter,
//! transfer/compute overlap, and task weights realized either
//! deterministically (planning) or as truncated Gaussian samples.
//!
//! ```
//! use wfs_simulator::{simulate, Schedule, SimConfig};
//! use wfs_platform::Platform;
//! use wfs_workflow::gen::chain;
//!
//! let wf = chain(3, 100.0, 1e6);
//! let platform = Platform::paper_default();
//! let mut s = Schedule::new(wf.task_count());
//! let vm = s.add_vm(platform.cheapest());
//! for t in wf.task_ids() { s.assign(t, vm); }
//! let report = simulate(&wf, &platform, &s, &SimConfig::planning()).unwrap();
//! assert!(report.makespan > 0.0);
//! assert!(report.total_cost > 0.0);
//! ```

#![warn(missing_docs)]

mod config;
mod engine;
pub mod faults;
pub mod lint;
pub mod metrics;
mod report;
mod schedule;
pub mod svg;
mod weights;

pub use config::{DcCapacity, SimConfig};
pub use engine::{
    simulate, simulate_observed, simulate_with_faults, simulate_with_faults_observed, SimError,
};
pub use faults::{
    stream_seed, BootFaultModel, CrashModel, DegradationModel, FaultConfig, FaultRun, FaultStats,
};
pub use lint::{plan_lint, plan_lint_faulted, FaultLintContext, PlanViolation};
pub use report::{SimulationReport, TaskRecord, VmUsage};
pub use schedule::{Schedule, ScheduleError, VmId};
pub use weights::{realize_weights, sample_standard_normal, WeightModel};

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod engine_tests {
    use super::*;
    use wfs_platform::{BillingPolicy, CategoryId, Datacenter, Platform, VmCategory};
    use wfs_workflow::gen::{bag_of_tasks, chain, fork_join, montage, GenConfig};
    use wfs_workflow::{StochasticWeight, TaskId, WorkflowBuilder};

    /// speed 1 work/s, $36/h = $0.01/s, no init cost, 10 s boot;
    /// DC: 10 B/s, free.
    fn unit_platform() -> Platform {
        Platform::new(
            vec![VmCategory::new("u", 1.0, 36.0, 0.0, 10.0)],
            Datacenter::new(10.0, 0.0, 0.0),
        )
        .with_billing(BillingPolicy::Continuous)
    }

    fn single_vm_schedule(wf: &wfs_workflow::Workflow) -> Schedule {
        let mut s = Schedule::new(wf.task_count());
        let vm = s.add_vm(CategoryId(0));
        for &t in wf.topological_order() {
            s.assign(t, vm);
        }
        s
    }

    #[test]
    fn chain_on_one_vm_hand_computed() {
        // boot 10 + dl 50B/10 = 5 + 100 + 100 + upload 5 => span 220.
        let wf = chain(2, 100.0, 50.0);
        let p = unit_platform();
        let r = simulate(&wf, &p, &single_vm_schedule(&wf), &SimConfig::planning()).unwrap();
        assert!((r.makespan - 220.0).abs() < 1e-6, "makespan {}", r.makespan);
        // Charged from boot end (10) to last byte (220): 210 s at $0.01.
        assert!((r.vm_cost - 2.10).abs() < 1e-6, "vm cost {}", r.vm_cost);
        assert_eq!(r.vms_used, 1);
        // Task0: starts after boot+dl = 15, ends 115.
        assert!((r.task(TaskId(0)).start - 15.0).abs() < 1e-6);
        assert!((r.task(TaskId(0)).end - 115.0).abs() < 1e-6);
        // Task1 starts immediately after (same VM, no transfer).
        assert!((r.task(TaskId(1)).start - 115.0).abs() < 1e-6);
    }

    #[test]
    fn chain_on_two_vms_pays_transfers_and_lazy_boot() {
        let wf = chain(2, 100.0, 50.0);
        let p = unit_platform();
        let mut s = Schedule::new(wf.task_count());
        let v0 = s.add_vm(CategoryId(0));
        let v1 = s.add_vm(CategoryId(0));
        s.assign(TaskId(0), v0);
        s.assign(TaskId(1), v1);
        let r = simulate(&wf, &p, &s, &SimConfig::planning()).unwrap();
        // VM0: boot 10, dl 5 -> t0 at 15..115, upload edge 5 -> 120.
        // VM1 books at 120 (lazy), ready 130, dl 5 -> 135, t1 135..235,
        // upload external output 5 -> 240.
        assert!((r.makespan - 240.0).abs() < 1e-6, "makespan {}", r.makespan);
        let vm1 = &r.vms[1];
        assert!((vm1.booked_at - 120.0).abs() < 1e-6, "booked {}", vm1.booked_at);
        assert!((vm1.ready_at - 130.0).abs() < 1e-6);
        assert!((vm1.released_at - 240.0).abs() < 1e-6);
        // Each VM charged 110 s.
        assert!((r.vm_cost - 2.20).abs() < 1e-6, "vm cost {}", r.vm_cost);
    }

    #[test]
    fn parallel_vms_beat_single_vm_on_a_bag() {
        let wf = bag_of_tasks(4, 100.0, 0.0);
        let p = unit_platform();
        let single = simulate(&wf, &p, &single_vm_schedule(&wf), &SimConfig::planning()).unwrap();
        let mut s = Schedule::new(wf.task_count());
        for t in wf.task_ids() {
            let vm = s.add_vm(CategoryId(0));
            s.assign(t, vm);
        }
        let par = simulate(&wf, &p, &s, &SimConfig::planning()).unwrap();
        assert!((single.makespan - 410.0).abs() < 1e-6); // 10 boot + 400
        assert!((par.makespan - 110.0).abs() < 1e-6); // 10 boot + 100
        assert!(par.vm_cost > single.vm_cost - 1e-9); // parallelism costs
    }

    #[test]
    fn fork_join_transfers_serialize_on_sink_link() {
        // 2 branches on 2 VMs; sink back on VM0. Sink needs branch-1 output
        // via DC.
        let wf = fork_join(2, 10.0, 100.0);
        let p = unit_platform();
        let mut s = Schedule::new(wf.task_count());
        let v0 = s.add_vm(CategoryId(0));
        let v1 = s.add_vm(CategoryId(0));
        s.assign(TaskId(0), v0); // source
        s.assign(TaskId(1), v0); // b0
        s.assign(TaskId(2), v1); // b1
        s.assign(TaskId(3), v0); // sink
        let r = simulate(&wf, &p, &s, &SimConfig::planning()).unwrap();
        // VM0: boot 10, dl ext 10 -> src 20..30, upload edge->b1 10s ->40.
        // b0 on VM0 30..40. VM1 books at 40, ready 50, dl 10 -> 60,
        // b1 60..70, upload 10 -> 80. Sink needs b1 data: dl on VM0
        // 80..90; sink 90..100; upload ext 100B -> 110. Span 110.
        assert!((r.makespan - 110.0).abs() < 1e-6, "makespan {}", r.makespan);
    }

    #[test]
    fn eq1_eq2_costs_match_formulas() {
        let wf = chain(2, 100.0, 50.0);
        // Non-trivial costs everywhere.
        let p = Platform::new(
            vec![VmCategory::new("u", 1.0, 36.0, 0.5, 10.0)],
            Datacenter::new(10.0, 3.6, 2.0e-3),
        )
        .with_billing(BillingPolicy::Continuous);
        let r = simulate(&wf, &p, &single_vm_schedule(&wf), &SimConfig::planning()).unwrap();
        // Same timeline as chain_on_one_vm: span 220, usage 210.
        let expected_vm = 210.0 * 0.01 + 0.5;
        // external data = 50 in + 50 out; DC usage 220 s at $0.001/s.
        let expected_dc = 100.0 * 2.0e-3 + 220.0 * 0.001;
        assert!((r.vm_cost - expected_vm).abs() < 1e-9, "vm {}", r.vm_cost);
        assert!((r.datacenter_cost - expected_dc).abs() < 1e-9, "dc {}", r.datacenter_cost);
        assert!((r.total_cost - (expected_vm + expected_dc)).abs() < 1e-9);
    }

    #[test]
    fn per_second_billing_rounds_usage_up() {
        let wf = chain(1, 100.5, 0.0);
        let p = Platform::new(
            vec![VmCategory::new("u", 1.0, 36.0, 0.0, 0.0)],
            Datacenter::new(10.0, 0.0, 0.0),
        ); // default per-second billing
        let r = simulate(&wf, &p, &single_vm_schedule(&wf), &SimConfig::planning()).unwrap();
        // Usage 100.5 s -> charged 101 s.
        assert!((r.vm_cost - 1.01).abs() < 1e-9, "vm {}", r.vm_cost);
    }

    #[test]
    fn faster_category_shortens_makespan() {
        let wf = chain(3, 120.0, 0.0);
        let p = Platform::paper_default();
        let mk = |cat: CategoryId| {
            let mut s = Schedule::new(wf.task_count());
            let vm = s.add_vm(cat);
            for &t in wf.topological_order() {
                s.assign(t, vm);
            }
            simulate(&wf, &p, &s, &SimConfig::planning()).unwrap().makespan
        };
        let slow = mk(CategoryId(0));
        let fast = mk(CategoryId(2));
        assert!(fast < slow, "fast {fast} !< slow {slow}");
    }

    #[test]
    fn conservative_weights_dominate_mean() {
        let wf = montage(GenConfig::new(30, 1)); // σ = 50 % of mean
        let p = Platform::paper_default();
        let s = single_vm_schedule(&wf);
        let mean = simulate(&wf, &p, &s, &SimConfig::new(WeightModel::Mean)).unwrap();
        let cons = simulate(&wf, &p, &s, &SimConfig::planning()).unwrap();
        assert!(cons.makespan > mean.makespan);
        assert!(cons.total_cost >= mean.total_cost);
    }

    #[test]
    fn stochastic_runs_reproducible_and_vary_across_seeds() {
        let wf = montage(GenConfig::new(30, 1));
        let p = Platform::paper_default();
        let s = single_vm_schedule(&wf);
        let a = simulate(&wf, &p, &s, &SimConfig::stochastic(5)).unwrap();
        let b = simulate(&wf, &p, &s, &SimConfig::stochastic(5)).unwrap();
        let c = simulate(&wf, &p, &s, &SimConfig::stochastic(6)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a.makespan, c.makespan);
    }

    #[test]
    fn finite_dc_capacity_slows_concurrent_transfers() {
        // 4 tasks on 4 VMs, each with a large external input: with
        // aggregate capacity = one link, downloads contend.
        let wf = bag_of_tasks(4, 10.0, 1000.0);
        let p = unit_platform();
        let mut s = Schedule::new(wf.task_count());
        for t in wf.task_ids() {
            let vm = s.add_vm(CategoryId(0));
            s.assign(t, vm);
        }
        let inf = simulate(&wf, &p, &s, &SimConfig::planning()).unwrap();
        let lim = simulate(&wf, &p, &s, &SimConfig::planning().with_dc_capacity(10.0)).unwrap();
        // Infinite: boot 10 + dl 100 + exec 10 + ul 100 = 220, all VMs in
        // parallel. Finite 10 B/s shared 4-way: transfers take 4x longer.
        assert!((inf.makespan - 220.0).abs() < 1e-6, "inf {}", inf.makespan);
        assert!(lim.makespan > inf.makespan + 200.0, "lim {}", lim.makespan);
    }

    #[test]
    fn invalid_schedule_rejected() {
        let wf = chain(2, 10.0, 0.0);
        let p = unit_platform();
        let s = Schedule::new(wf.task_count()); // nothing assigned
        match simulate(&wf, &p, &s, &SimConfig::planning()) {
            Err(SimError::Schedule(ScheduleError::Unassigned(t))) => assert_eq!(t, TaskId(0)),
            other => panic!("expected Unassigned, got {other:?}"),
        }
    }

    #[test]
    fn zero_size_edges_execute_instantly() {
        let mut b = WorkflowBuilder::new("z");
        let a = b.add_task("a", StochasticWeight::fixed(10.0));
        let c = b.add_task("b", StochasticWeight::fixed(10.0));
        b.add_edge(a, c, 0.0).unwrap();
        let wf = b.build().unwrap();
        let p = unit_platform();
        let mut s = Schedule::new(wf.task_count());
        let v0 = s.add_vm(CategoryId(0));
        let v1 = s.add_vm(CategoryId(0));
        s.assign(a, v0);
        s.assign(c, v1);
        let r = simulate(&wf, &p, &s, &SimConfig::planning()).unwrap();
        // boot 10 + t0 10 + ~0 upload; vm1 books ~20, ready 30, t1 30..40.
        assert!((r.makespan - 40.0).abs() < 1e-3, "makespan {}", r.makespan);
    }

    #[test]
    fn tasks_respect_vm_order_even_when_ready_early() {
        // Two independent tasks forced in order on one VM: second waits.
        let wf = bag_of_tasks(2, 100.0, 0.0);
        let p = unit_platform();
        let r = simulate(&wf, &p, &single_vm_schedule(&wf), &SimConfig::planning()).unwrap();
        assert!((r.task(TaskId(1)).start - r.task(TaskId(0)).end).abs() < 1e-9);
    }

    #[test]
    fn montage_simulates_end_to_end() {
        let wf = montage(GenConfig::new(90, 1));
        let p = Platform::paper_default();
        let r = simulate(&wf, &p, &single_vm_schedule(&wf), &SimConfig::stochastic(1)).unwrap();
        assert_eq!(r.tasks.len(), 90);
        assert!(r.makespan > 0.0);
        assert!(r.within_budget(f64::INFINITY));
        // All task intervals positive and non-overlapping on the single VM.
        let mut intervals: Vec<(f64, f64)> = r.tasks.iter().map(|t| (t.start, t.end)).collect();
        intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in intervals.windows(2) {
            assert!(w[0].1 <= w[1].0 + 1e-9, "overlap {w:?}");
        }
    }

    #[test]
    fn precedence_constraints_hold_in_simulation() {
        let wf = montage(GenConfig::new(60, 2));
        let p = Platform::paper_default();
        // Round-robin over 5 VMs in topological order (valid).
        let mut s = Schedule::new(wf.task_count());
        let vms: Vec<_> = (0..5).map(|_| s.add_vm(CategoryId(1))).collect();
        for (i, &t) in wf.topological_order().iter().enumerate() {
            s.assign(t, vms[i % 5]);
        }
        let r = simulate(&wf, &p, &s, &SimConfig::stochastic(3)).unwrap();
        for e in wf.edges() {
            let pe = r.task(e.from).end;
            let cs = r.task(e.to).start;
            assert!(cs >= pe - 1e-9, "edge {:?}: consumer starts {cs} before producer ends {pe}", e);
        }
    }
}
