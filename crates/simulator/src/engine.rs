//! The discrete-event simulation engine.
//!
//! Executes a [`Schedule`] under the paper's platform model (§III):
//!
//! - VMs are booked on demand: a VM starts booting as soon as the remote
//!   inputs of its *first* task are at the datacenter (entry data is there
//!   at t = 0); the boot delay is uncharged, usage is charged from boot end
//!   to the instant the VM's last output byte reaches the datacenter.
//! - All inter-VM data transits through the datacenter: producers upload
//!   each cross-VM edge after completing; consumers download it. Each VM's
//!   link serializes its transfers per direction (this matches Eq. 7, which
//!   sums input sizes), but transfers never slow computation down
//!   (transfer/compute overlap, §III-B assumption (iv)).
//! - Task weights are realized per the configured [`WeightModel`].
//! - The datacenter capacity is infinite by default; the finite mode
//!   fair-shares an aggregate capacity among in-flight transfers.
//!
//! The engine can additionally inject faults from a [`FaultConfig`]
//! (crash-stop VM failures, transient boot failures, datacenter
//! degradation windows — DESIGN.md §9). With [`FaultConfig::none`] no
//! event is injected and no arithmetic changes, so [`simulate`] is
//! bit-identical to the pre-fault engine.
//!
//! [`WeightModel`]: crate::weights::WeightModel

use crate::config::{DcCapacity, SimConfig};
use crate::faults::{sample_exponential, FaultConfig, FaultRun, FaultStats};
use crate::report::{SimulationReport, TaskRecord, VmUsage};
use crate::schedule::{Schedule, ScheduleError, VmId};
use crate::weights::realize_weights;
use rand::rngs::StdRng;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use wfs_observe::{Event as Obs, EventSink, NoopSink};
use wfs_platform::Platform;
use wfs_workflow::{EdgeId, TaskId, Workflow};

/// Widen a dense VM index into the `u32` observability id space.
#[inline]
fn vm_u32(v: usize) -> u32 {
    v as u32
}

/// Time comparison tolerance (seconds).
const T_EPS: f64 = 1e-9;
/// Bytes below which a transfer is considered drained.
const B_EPS: f64 = 1e-6;

/// Errors raised by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The schedule failed validation.
    Schedule(ScheduleError),
    /// The simulation stalled with unfinished tasks (should be impossible
    /// for validated schedules without faults; kept as a defensive
    /// backstop).
    Stalled {
        /// Number of tasks that did complete.
        completed: usize,
        /// Ids of the tasks that never completed, in id order.
        unfinished: Vec<TaskId>,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Schedule(e) => write!(f, "invalid schedule: {e}"),
            SimError::Stalled { completed, unfinished } => {
                write!(f, "simulation stalled after {completed} tasks; unfinished:")?;
                for t in unfinished.iter().take(8) {
                    write!(f, " T{}", t.0)?;
                }
                if unfinished.len() > 8 {
                    write!(f, " … ({} total)", unfinished.len())?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<ScheduleError> for SimError {
    fn from(e: ScheduleError) -> Self {
        SimError::Schedule(e)
    }
}

/// Discrete events other than transfer completions.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    BootDone(usize),
    TaskDone { vm: usize, task: TaskId },
    /// Crash-stop failure of a VM (fault injection).
    VmCrash(usize),
    /// A datacenter degradation window opens (fault injection).
    DegradeStart,
    /// The current degradation window closes (fault injection).
    DegradeEnd,
}

impl Event {
    /// Events that represent pending *work* (as opposed to injected
    /// faults). The degradation stream re-arms itself only while work
    /// remains, which guarantees the event loop drains.
    fn is_work(self) -> bool {
        matches!(self, Event::BootDone(_) | Event::TaskDone { .. })
    }
}

/// Heap entry ordered by (time, sequence) — sequence keeps pops FIFO-stable
/// among simultaneous events, making runs bit-reproducible.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        // Delegate to the total order so `==` agrees with `Ord` even for
        // pathological times (NaN) instead of comparing floats bitwise.
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.total_cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

#[derive(Debug, Clone, Copy)]
enum Dir {
    Down,
    Up,
}

/// A pending download: data some task on this VM needs from the datacenter.
#[derive(Debug, Clone, Copy)]
struct Download {
    task: TaskId,
    /// `None` = external input (at the datacenter from t = 0).
    edge: Option<EdgeId>,
    bytes: f64,
    at_dc: bool,
    started: bool,
}

/// A pending upload: data a completed task must push to the datacenter.
#[derive(Debug, Clone, Copy)]
struct Upload {
    /// The producing task (durability tracking for external outputs).
    task: TaskId,
    /// `None` = external output.
    edge: Option<EdgeId>,
    bytes: f64,
}

/// An in-flight transfer on some VM's link.
#[derive(Debug, Clone, Copy)]
struct Active {
    vm: usize,
    dir: Dir,
    /// Index into the VM's `downloads` for Down; upload payload for Up.
    payload: TransferPayload,
    remaining: f64,
    rate: f64,
}

#[derive(Debug, Clone, Copy)]
enum TransferPayload {
    Download(usize),
    Upload(Upload),
}

struct VmState {
    order: Vec<TaskId>,
    next_idx: usize,
    booked_at: Option<f64>,
    ready: bool,
    ready_at: f64,
    proc_busy: bool,
    in_busy: bool,
    out_busy: bool,
    downloads: Vec<Download>,
    uploads: VecDeque<Upload>,
    /// Cross-VM input edges of the first task still missing from the
    /// datacenter — the boot gate.
    boot_gate: usize,
    last_activity: f64,
    tasks_run: usize,
    /// Crashed, or abandoned after exhausting boot retries. Dead VMs run
    /// nothing and transfer nothing for the rest of the run.
    dead: bool,
}

struct Engine<'a, S: EventSink> {
    sink: &'a mut S,
    wf: &'a Workflow,
    platform: &'a Platform,
    schedule: &'a Schedule,
    weights: Vec<f64>,
    dc_capacity: DcCapacity,
    faults: FaultConfig,
    now: f64,
    seq: u64,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    active: Vec<Active>,
    vms: Vec<VmState>,
    /// Remaining unsatisfied inputs per task (local preds + downloads).
    missing: Vec<usize>,
    done: Vec<bool>,
    edge_at_dc: Vec<bool>,
    /// Per task: external output uploaded to the datacenter.
    ext_out_done: Vec<bool>,
    /// Per VM: actual boot delay including fault retries.
    boot_delay: Vec<Option<f64>>,
    records: Vec<TaskRecord>,
    completed: usize,
    /// Pending work events (BootDone/TaskDone) in the heap.
    work_events: usize,
    /// Bandwidth multiplier of the active degradation window (1.0 = none).
    bw_factor: f64,
    /// Start of the active degradation window.
    window_start: f64,
    degrade_rng: StdRng,
    stats: FaultStats,
}

impl<'a, S: EventSink> Engine<'a, S> {
    fn new(
        wf: &'a Workflow,
        platform: &'a Platform,
        schedule: &'a Schedule,
        config: &SimConfig,
        faults: &FaultConfig,
        sink: &'a mut S,
    ) -> Self {
        let n = wf.task_count();
        let weights = realize_weights(wf, config.weights);
        let mut vms: Vec<VmState> = schedule
            .vm_ids()
            .map(|v| VmState {
                order: schedule.order(v).to_vec(),
                next_idx: 0,
                booked_at: None,
                ready: false,
                ready_at: 0.0,
                proc_busy: false,
                in_busy: false,
                out_busy: false,
                downloads: Vec::new(),
                uploads: VecDeque::new(),
                boot_gate: 0,
                last_activity: 0.0,
                tasks_run: 0,
                dead: false,
            })
            .collect();

        let mut missing = vec![0usize; n];
        for t in wf.task_ids() {
            #[allow(clippy::expect_used)] // Engine::new runs after validate()
            let vm = schedule.assignment(t).expect("validated").index();
            for &e in wf.in_edges(t) {
                missing[t.index()] += 1;
                if schedule.is_cross_vm(wf, e) {
                    vms[vm].downloads.push(Download {
                        task: t,
                        edge: Some(e),
                        bytes: wf.edge(e).size,
                        at_dc: false,
                        started: false,
                    });
                }
                // Same-VM edges are satisfied directly at producer completion.
            }
            let ext = wf.task(t).external_input;
            if ext > 0.0 {
                missing[t.index()] += 1;
                vms[vm].downloads.push(Download {
                    task: t,
                    edge: None,
                    bytes: ext,
                    at_dc: true,
                    started: false,
                });
            }
        }
        // Boot gates: cross-VM input edges of each VM's first task.
        for (v, vm) in vms.iter_mut().enumerate() {
            if let Some(&first) = vm.order.first() {
                vm.boot_gate = wf
                    .in_edges(first)
                    .iter()
                    .filter(|&&e| schedule.is_cross_vm(wf, e))
                    .count();
                let _ = v;
            }
        }

        // Records start zeroed but carry their real task id, so partial
        // (faulted) runs report unambiguous `end == 0` placeholders.
        let mut records = vec![
            TaskRecord {
                task: TaskId(0),
                vm: VmId(0),
                start: 0.0,
                end: 0.0,
                realized_weight: 0.0,
            };
            n
        ];
        for (t, r) in wf.task_ids().zip(records.iter_mut()) {
            r.task = t;
        }

        let n_vms = vms.len();
        Self {
            sink,
            wf,
            platform,
            schedule,
            weights,
            dc_capacity: config.dc_capacity,
            faults: *faults,
            now: 0.0,
            seq: 0,
            heap: BinaryHeap::new(),
            active: Vec::new(),
            vms,
            missing,
            done: vec![false; n],
            edge_at_dc: vec![false; wf.edge_count()],
            ext_out_done: vec![false; n],
            boot_delay: vec![None; n_vms],
            records,
            completed: 0,
            work_events: 0,
            bw_factor: 1.0,
            window_start: 0.0,
            degrade_rng: faults.degrade_rng(),
            stats: FaultStats::default(),
        }
    }

    fn push_event(&mut self, time: f64, event: Event) {
        if event.is_work() {
            self.work_events += 1;
        }
        self.seq += 1;
        self.heap.push(Reverse(HeapEntry { time, seq: self.seq, event }));
    }

    /// Current datacenter bandwidth; scaled down inside a degradation
    /// window. With `bw_factor == 1.0` the product is IEEE-exact, keeping
    /// fault-free runs bit-identical.
    fn bandwidth(&self) -> f64 {
        self.platform.datacenter.bandwidth * self.bw_factor
    }

    /// Fair-share rate under the current number of in-flight transfers.
    /// Degradation windows scale the aggregate capacity too — the window
    /// models the datacenter side of the link, not a single VM NIC.
    fn share_rate(&self, n_active: usize) -> f64 {
        match self.dc_capacity {
            DcCapacity::Infinite => self.bandwidth(),
            DcCapacity::Finite(cap) => {
                self.bandwidth().min(cap * self.bw_factor / n_active.max(1) as f64)
            }
        }
    }

    fn recompute_rates(&mut self) {
        let r = self.share_rate(self.active.len());
        for a in &mut self.active {
            a.rate = r;
        }
    }

    fn book_vm(&mut self, v: usize) {
        debug_assert!(self.vms[v].booked_at.is_none());
        self.vms[v].booked_at = Some(self.now);
        if S::ENABLED {
            let cat = self.schedule.vm_category(VmId(vm_u32(v)));
            self.sink.record(&Obs::VmBooked { vm: vm_u32(v), category: cat.0, t: self.now });
        }
        let boot = self.platform.category(self.schedule.vm_category(VmId(v as u32))).boot_time;
        let mut delay = boot;
        if let Some(bf) = self.faults.boot {
            let mut rng = self.faults.boot_rng(v);
            let mut failures: u32 = 0;
            // Each attempt fails independently; every failure repeats the
            // boot delay scaled by the retry backoff. Boot time is
            // uncharged (§III), so abandoned instances bill nothing.
            while rng.gen::<f64>() < bf.fail_prob {
                failures += 1;
                if failures > bf.max_retries {
                    self.stats.boot_retries += bf.max_retries as usize;
                    self.stats.boot_abandoned += 1;
                    self.vms[v].dead = true;
                    if S::ENABLED {
                        self.sink.record(&Obs::BootAbandoned { vm: vm_u32(v), t: self.now });
                    }
                    return;
                }
                delay += boot * bf.backoff.powf(f64::from(failures));
            }
            self.stats.boot_retries += failures as usize;
        }
        self.boot_delay[v] = Some(delay);
        self.push_event(self.now + delay, Event::BootDone(v));
    }

    /// Start the best ready pending download on `v`, if its in-link is free.
    fn try_start_download(&mut self, v: usize) {
        if !self.vms[v].ready || self.vms[v].dead || self.vms[v].in_busy {
            return;
        }
        // Position of each task in the VM order: prefer inputs of earlier
        // tasks so prefetching never starves the next task to run.
        #[allow(clippy::expect_used)] // downloads only reference tasks of their VM
        let pos_of = |vm: &VmState, t: TaskId| {
            vm.order.iter().position(|&x| x == t).expect("task is on this VM")
        };
        let best = {
            let vm = &self.vms[v];
            vm.downloads
                .iter()
                .enumerate()
                .filter(|(_, d)| d.at_dc && !d.started)
                .min_by_key(|(i, d)| (pos_of(vm, d.task), d.edge.map_or(0, |e| e.0), *i))
                .map(|(i, _)| i)
        };
        if let Some(i) = best {
            self.vms[v].downloads[i].started = true;
            self.vms[v].in_busy = true;
            if S::ENABLED {
                let d = self.vms[v].downloads[i];
                self.sink.record(&Obs::TransferStarted {
                    vm: vm_u32(v),
                    up: false,
                    edge: d.edge.map_or(-1, |e| i64::from(e.0)),
                    bytes: d.bytes,
                    t: self.now,
                });
            }
            let bytes = self.vms[v].downloads[i].bytes.max(B_EPS);
            self.active.push(Active {
                vm: v,
                dir: Dir::Down,
                payload: TransferPayload::Download(i),
                remaining: bytes,
                rate: self.bandwidth(),
            });
            self.recompute_rates();
        }
    }

    /// Start the next queued upload on `v`, if its out-link is free.
    fn try_start_upload(&mut self, v: usize) {
        if self.vms[v].out_busy || self.vms[v].dead {
            return;
        }
        if let Some(u) = self.vms[v].uploads.pop_front() {
            self.vms[v].out_busy = true;
            if S::ENABLED {
                self.sink.record(&Obs::TransferStarted {
                    vm: vm_u32(v),
                    up: true,
                    edge: u.edge.map_or(-1, |e| i64::from(e.0)),
                    bytes: u.bytes,
                    t: self.now,
                });
            }
            self.active.push(Active {
                vm: v,
                dir: Dir::Up,
                payload: TransferPayload::Upload(u),
                remaining: u.bytes.max(B_EPS),
                rate: self.bandwidth(),
            });
            self.recompute_rates();
        }
    }

    /// Start the next task on `v` if the processor is free and inputs are in.
    fn try_start_compute(&mut self, v: usize) {
        let vm = &self.vms[v];
        if !vm.ready || vm.dead || vm.proc_busy || vm.next_idx >= vm.order.len() {
            return;
        }
        let t = vm.order[vm.next_idx];
        if self.missing[t.index()] > 0 {
            return;
        }
        let cat = self.platform.category(self.schedule.vm_category(VmId(v as u32)));
        let dur = self.weights[t.index()] / cat.speed;
        self.records[t.index()] = TaskRecord {
            task: t,
            vm: VmId(v as u32),
            start: self.now,
            end: self.now + dur,
            realized_weight: self.weights[t.index()],
        };
        self.vms[v].proc_busy = true;
        if S::ENABLED {
            self.sink.record(&Obs::TaskStarted { task: t.0, vm: vm_u32(v), t: self.now });
        }
        self.push_event(self.now + dur, Event::TaskDone { vm: v, task: t });
    }

    fn on_task_done(&mut self, v: usize, t: TaskId) {
        if S::ENABLED {
            self.sink.record(&Obs::TaskFinished { task: t.0, vm: vm_u32(v), t: self.now });
        }
        self.done[t.index()] = true;
        self.completed += 1;
        self.vms[v].proc_busy = false;
        self.vms[v].next_idx += 1;
        self.vms[v].tasks_run += 1;
        self.vms[v].last_activity = self.now;
        // Satisfy same-VM consumers; queue uploads for cross-VM edges.
        for &e in self.wf.out_edges(t) {
            if self.schedule.is_cross_vm(self.wf, e) {
                self.vms[v]
                    .uploads
                    .push_back(Upload { task: t, edge: Some(e), bytes: self.wf.edge(e).size });
            } else {
                let c = self.wf.edge(e).to;
                self.missing[c.index()] -= 1;
                // Consumer is on this same VM.
                self.try_start_compute(v);
            }
        }
        let ext_out = self.wf.task(t).external_output;
        if ext_out > 0.0 {
            self.vms[v].uploads.push_back(Upload { task: t, edge: None, bytes: ext_out });
        }
        self.try_start_upload(v);
        self.try_start_compute(v);
    }

    fn on_boot_done(&mut self, v: usize) {
        self.vms[v].ready = true;
        self.vms[v].ready_at = self.now;
        self.vms[v].last_activity = self.now;
        if S::ENABLED {
            self.sink.record(&Obs::VmReady { vm: vm_u32(v), t: self.now });
        }
        // Crash-stop fault: the VM's time-to-failure starts ticking the
        // moment it becomes operational.
        if let Some(cm) = self.faults.crash {
            let cat = self.schedule.vm_category(VmId(v as u32));
            let mut rng = self.faults.crash_rng(v);
            let ttf = cm.sample_ttf(cat.0, &mut rng);
            if ttf.is_finite() {
                self.push_event(self.now + ttf, Event::VmCrash(v));
            }
        }
        self.try_start_download(v);
        self.try_start_compute(v);
    }

    /// Crash-stop failure: in-flight work and transfers are lost; the
    /// occupied interval up to the crash stays billed (Eq. 1).
    fn on_crash(&mut self, v: usize) {
        if self.vms[v].dead {
            return;
        }
        let idle_done = {
            let vm = &self.vms[v];
            vm.next_idx >= vm.order.len()
                && !vm.proc_busy
                && !vm.in_busy
                && !vm.out_busy
                && vm.uploads.is_empty()
        };
        if idle_done {
            // The VM already pushed its last byte and would have been
            // released — a later crash hits nothing and bills nothing.
            return;
        }
        self.vms[v].dead = true;
        self.stats.crashes += 1;
        // Billed through the crash instant: the tail since the last
        // completed activity was paid for but produced nothing durable.
        self.stats.wasted_billed_seconds += (self.now - self.vms[v].last_activity).max(0.0);
        self.vms[v].last_activity = self.now;
        // The in-flight task's computation is lost; its stale TaskDone
        // event is skipped at pop via the dead flag.
        if self.vms[v].proc_busy {
            let t = self.vms[v].order[self.vms[v].next_idx];
            self.stats.tasks_lost += 1;
            self.stats.wasted_compute_seconds +=
                (self.now - self.records[t.index()].start).max(0.0);
            let r = &mut self.records[t.index()];
            r.start = 0.0;
            r.end = 0.0;
            r.realized_weight = 0.0;
            self.vms[v].proc_busy = false;
            if S::ENABLED {
                self.sink.record(&Obs::TaskAborted { task: t.0, vm: vm_u32(v), t: self.now });
            }
        }
        // In-flight transfers on this VM's link die with it.
        if S::ENABLED {
            for a in self.active.iter().filter(|a| a.vm == v) {
                self.sink.record(&Obs::TransferAborted {
                    vm: vm_u32(v),
                    up: matches!(a.dir, Dir::Up),
                    t: self.now,
                });
            }
            self.sink.record(&Obs::VmCrashed { vm: vm_u32(v), t: self.now });
        }
        let before = self.active.len();
        self.active.retain(|a| a.vm != v);
        if self.active.len() != before {
            self.recompute_rates();
        }
        self.vms[v].uploads.clear();
        self.vms[v].in_busy = false;
        self.vms[v].out_busy = false;
    }

    /// Any work left that degradation windows could still affect?
    fn work_remains(&self) -> bool {
        self.work_events > 0 || !self.active.is_empty()
    }

    fn on_degrade_start(&mut self) {
        let Some(dm) = self.faults.degradation else { return };
        if !self.work_remains() {
            // Quiescent: stop the window stream so the event loop drains.
            return;
        }
        self.bw_factor = dm.factor;
        self.window_start = self.now;
        self.stats.degradation_windows += 1;
        if S::ENABLED {
            self.sink.record(&Obs::DegradationStarted { t: self.now, factor: dm.factor });
        }
        self.recompute_rates();
        let dur = sample_exponential(dm.mean_duration, &mut self.degrade_rng);
        self.push_event(self.now + dur, Event::DegradeEnd);
    }

    fn on_degrade_end(&mut self) {
        let Some(dm) = self.faults.degradation else { return };
        self.stats.degraded_seconds += self.now - self.window_start;
        if S::ENABLED {
            self.sink.record(&Obs::DegradationEnded { t: self.now });
        }
        self.bw_factor = 1.0;
        self.recompute_rates();
        if self.work_remains() {
            let gap = sample_exponential(dm.mean_gap, &mut self.degrade_rng);
            self.push_event(self.now + gap, Event::DegradeStart);
        }
    }

    fn on_download_done(&mut self, v: usize, idx: usize) {
        let d = self.vms[v].downloads[idx];
        if S::ENABLED {
            self.sink.record(&Obs::TransferFinished {
                vm: vm_u32(v),
                up: false,
                edge: d.edge.map_or(-1, |e| i64::from(e.0)),
                t: self.now,
            });
        }
        self.vms[v].in_busy = false;
        self.vms[v].last_activity = self.now;
        self.missing[d.task.index()] -= 1;
        self.try_start_download(v);
        self.try_start_compute(v);
    }

    fn on_upload_done(&mut self, v: usize, u: Upload) {
        if S::ENABLED {
            self.sink.record(&Obs::TransferFinished {
                vm: vm_u32(v),
                up: true,
                edge: u.edge.map_or(-1, |e| i64::from(e.0)),
                t: self.now,
            });
        }
        self.vms[v].out_busy = false;
        self.vms[v].last_activity = self.now;
        if let Some(e) = u.edge {
            self.edge_at_dc[e.index()] = true;
            let consumer = self.wf.edge(e).to;
            #[allow(clippy::expect_used)] // schedule was validated before simulation
            let cv = self.schedule.assignment(consumer).expect("validated").index();
            // Mark the matching pending download as available.
            for d in &mut self.vms[cv].downloads {
                if d.edge == Some(e) {
                    d.at_dc = true;
                }
            }
            // Boot gate: first-task inputs arriving can trigger the booking.
            if self.vms[cv].booked_at.is_none() {
                if let Some(&first) = self.vms[cv].order.first() {
                    if first == consumer {
                        self.vms[cv].boot_gate -= 1;
                        if self.vms[cv].boot_gate == 0 {
                            self.book_vm(cv);
                        }
                    }
                }
            }
            self.try_start_download(cv);
        } else {
            // External output safely at the datacenter: the producer's
            // result is durable even if its VM dies later.
            self.ext_out_done[u.task.index()] = true;
        }
        self.try_start_upload(v);
    }

    fn run(mut self) -> Result<FaultRun, SimError> {
        // Book every VM whose boot gate is already open (first task has no
        // cross-VM inputs: entry tasks, or tasks with same-VM-only preds
        // cannot be first, so this means entries / no inputs).
        for v in 0..self.vms.len() {
            if !self.vms[v].order.is_empty() && self.vms[v].boot_gate == 0 {
                self.book_vm(v);
            }
        }
        // Arm the degradation-window stream.
        if let Some(dm) = self.faults.degradation {
            let gap = sample_exponential(dm.mean_gap, &mut self.degrade_rng);
            self.push_event(self.now + gap, Event::DegradeStart);
        }

        loop {
            // Next transfer completion, if any.
            let next_xfer: Option<f64> = self
                .active
                .iter()
                .map(|a| self.now + a.remaining / a.rate)
                .min_by(|a, b| a.total_cmp(b));
            let next_ev: Option<f64> = self.heap.peek().map(|Reverse(h)| h.time);
            let t = match (next_xfer, next_ev) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (Some(a), Some(b)) => a.min(b),
            };
            debug_assert!(t >= self.now - T_EPS, "time went backwards: {t} < {}", self.now);
            let dt = (t - self.now).max(0.0);
            for a in &mut self.active {
                a.remaining -= a.rate * dt;
            }
            self.now = t;

            // Transfer completions first (deterministic order by vm/dir).
            // A transfer is done when its bytes are drained OR when the
            // time it still needs is below the clock resolution at `now` —
            // without the latter, `now + remaining/rate == now` can stall
            // the clock forever once `now` is large (float underflow).
            let resolution = (self.now.abs() * f64::EPSILON).max(T_EPS);
            let mut finished: Vec<usize> = self
                .active
                .iter()
                .enumerate()
                .filter(|(_, a)| a.remaining <= B_EPS || a.remaining <= a.rate * resolution)
                .map(|(i, _)| i)
                .collect();
            // Remove in descending *index* order so swap_remove never
            // touches a not-yet-removed finished entry; then order the
            // removed set deterministically (vm, direction) for processing.
            finished.sort_unstable_by(|a, b| b.cmp(a));
            let mut done_transfers = Vec::with_capacity(finished.len());
            for &i in &finished {
                done_transfers.push(self.active.swap_remove(i));
            }
            done_transfers.sort_by_key(|a| (a.vm, matches!(a.dir, Dir::Up) as u8));
            if !done_transfers.is_empty() {
                self.recompute_rates();
            }
            for a in done_transfers {
                match a.payload {
                    TransferPayload::Download(idx) => self.on_download_done(a.vm, idx),
                    TransferPayload::Upload(u) => self.on_upload_done(a.vm, u),
                }
            }

            // Then discrete events scheduled at (or before) `now`.
            while let Some(Reverse(h)) = self.heap.peek().copied() {
                if h.time <= self.now + T_EPS {
                    self.heap.pop();
                    if h.event.is_work() {
                        self.work_events -= 1;
                    }
                    match h.event {
                        Event::BootDone(v) if !self.vms[v].dead => self.on_boot_done(v),
                        Event::TaskDone { vm, task } if !self.vms[vm].dead => {
                            self.on_task_done(vm, task);
                        }
                        // Stale work events of dead VMs.
                        Event::BootDone(_) | Event::TaskDone { .. } => {}
                        Event::VmCrash(v) => self.on_crash(v),
                        Event::DegradeStart => self.on_degrade_start(),
                        Event::DegradeEnd => self.on_degrade_end(),
                    }
                } else {
                    break;
                }
            }
        }

        if self.faults.is_none() && self.completed != self.wf.task_count() {
            let unfinished: Vec<TaskId> =
                self.wf.task_ids().filter(|t| !self.done[t.index()]).collect();
            return Err(SimError::Stalled { completed: self.completed, unfinished });
        }
        let (durable, complete) = self.durability();
        let report = self.build_report();
        // Bill emission mirrors the report arithmetic exactly: one VmBilled
        // per VM in report order, then DcBilled — a ledger folding costs in
        // event order reproduces `total_cost` bit-for-bit.
        if S::ENABLED {
            for u in &report.vms {
                self.sink.record(&Obs::VmBilled {
                    vm: u.vm.0,
                    category: u.category.0,
                    booked_at: u.booked_at,
                    ready_at: u.ready_at,
                    released_at: u.released_at,
                    cost: u.cost,
                    tasks_run: u32::try_from(u.tasks_run).unwrap_or(u32::MAX),
                });
            }
            self.sink
                .record(&Obs::DcBilled { cost: report.datacenter_cost, makespan: report.makespan });
        }
        Ok(FaultRun {
            report,
            stats: self.stats.clone(),
            finished: self.done.clone(),
            durable,
            boot_delays: self.boot_delay.clone(),
            complete,
        })
    }

    /// Which tasks are *durably* complete? Data at the datacenter is
    /// durable; data on a VM is volatile (VMs are released — or crashed —
    /// at the end of the run). Computed in reverse topological order:
    /// a task is durable iff it finished, its external output (if any) was
    /// uploaded, and each out-edge either reached the datacenter or fed a
    /// consumer that is itself durable (the value was fully consumed).
    fn durability(&self) -> (Vec<bool>, bool) {
        let n = self.wf.task_count();
        let mut durable = vec![false; n];
        let mut complete = true;
        for &t in self.wf.topological_order().iter().rev() {
            let i = t.index();
            let ext_ok = self.wf.task(t).external_output <= 0.0 || self.ext_out_done[i];
            let outs_ok = self
                .wf
                .out_edges(t)
                .iter()
                .all(|&e| self.edge_at_dc[e.index()] || durable[self.wf.edge(e).to.index()]);
            durable[i] = self.done[i] && ext_ok && outs_ok;
            complete &= durable[i];
        }
        (durable, complete)
    }

    fn build_report(&self) -> SimulationReport {
        let mut vm_usages = Vec::new();
        let mut start_first = f64::INFINITY;
        let mut end_last: f64 = 0.0;
        let mut vm_cost_total = 0.0;
        for (v, vm) in self.vms.iter().enumerate() {
            let Some(booked) = vm.booked_at else { continue };
            if !vm.ready {
                // Boot never completed (abandoned by a fault): the
                // provider never handed the instance over — nothing billed.
                continue;
            }
            let cat_id = self.schedule.vm_category(VmId(v as u32));
            let usage = vm.last_activity - vm.ready_at;
            let cost = self.platform.vm_cost(cat_id, usage);
            start_first = start_first.min(booked);
            end_last = end_last.max(vm.last_activity);
            vm_cost_total += cost;
            vm_usages.push(VmUsage {
                vm: VmId(v as u32),
                category: cat_id,
                booked_at: booked,
                ready_at: vm.ready_at,
                released_at: vm.last_activity,
                cost,
                tasks_run: vm.tasks_run,
            });
        }
        if !start_first.is_finite() {
            start_first = 0.0;
        }
        let makespan = (end_last - start_first).max(0.0);
        let external =
            self.wf.external_input_data() + self.wf.external_output_data();
        let dc_cost = self.platform.datacenter.cost(makespan, external);
        SimulationReport {
            makespan,
            vm_cost: vm_cost_total,
            datacenter_cost: dc_cost,
            total_cost: vm_cost_total + dc_cost,
            vms_used: vm_usages.iter().filter(|u| u.tasks_run > 0).count(),
            tasks: self.records.clone(),
            vms: vm_usages,
        }
    }
}

/// Validate `schedule` and simulate the execution of `wf` on `platform`.
pub fn simulate(
    wf: &Workflow,
    platform: &Platform,
    schedule: &Schedule,
    config: &SimConfig,
) -> Result<SimulationReport, SimError> {
    let mut sink = NoopSink;
    simulate_observed(wf, platform, schedule, config, &mut sink)
}

/// [`simulate`] with an event sink: every boot, task, transfer and the
/// final Eq. 1–2 bill are reported to `sink`. With [`NoopSink`] this is
/// the same code path as [`simulate`] (the emissions compile away).
pub fn simulate_observed<S: EventSink>(
    wf: &Workflow,
    platform: &Platform,
    schedule: &Schedule,
    config: &SimConfig,
    sink: &mut S,
) -> Result<SimulationReport, SimError> {
    schedule.validate(wf)?;
    Engine::new(wf, platform, schedule, config, &FaultConfig::none(), sink)
        .run()
        .map(|r| r.report)
}

/// Validate `schedule` and simulate with fault injection. With faults the
/// run cannot "stall": tasks stranded by crashed or abandoned VMs simply
/// stay unfinished and the returned [`FaultRun`] reports `complete =
/// false` with the partial cost billed so far.
pub fn simulate_with_faults(
    wf: &Workflow,
    platform: &Platform,
    schedule: &Schedule,
    config: &SimConfig,
    faults: &FaultConfig,
) -> Result<FaultRun, SimError> {
    let mut sink = NoopSink;
    simulate_with_faults_observed(wf, platform, schedule, config, faults, &mut sink)
}

/// [`simulate_with_faults`] with an event sink; fault injections (crashes,
/// abandoned boots, degradation windows) and the work they abort are
/// reported alongside the regular execution events.
pub fn simulate_with_faults_observed<S: EventSink>(
    wf: &Workflow,
    platform: &Platform,
    schedule: &Schedule,
    config: &SimConfig,
    faults: &FaultConfig,
    sink: &mut S,
) -> Result<FaultRun, SimError> {
    schedule.validate(wf)?;
    Engine::new(wf, platform, schedule, config, faults, sink).run()
}
