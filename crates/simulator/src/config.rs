//! Simulation configuration.

use crate::weights::WeightModel;

/// Aggregate datacenter transfer capacity.
///
/// The paper assumes "the datacenter bandwidth is large enough to feed all
/// processing units" (§III-B) — [`DcCapacity::Infinite`]. It then observes
/// (§V-B) that this assumption is what let a few LIGO runs exceed their
/// budget on a real network; [`DcCapacity::Finite`] models the saturation by
/// fair-sharing an aggregate capacity among all in-flight transfers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DcCapacity {
    /// Every transfer gets the full VM link bandwidth.
    Infinite,
    /// In-flight transfers share this many bytes/s, each still capped by
    /// the VM link bandwidth.
    Finite(f64),
}

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// How task weights are realized.
    pub weights: WeightModel,
    /// Datacenter aggregate capacity.
    pub dc_capacity: DcCapacity,
}

impl SimConfig {
    /// The paper's model: chosen weight realization, infinite DC capacity.
    pub fn new(weights: WeightModel) -> Self {
        Self { weights, dc_capacity: DcCapacity::Infinite }
    }

    /// Deterministic planning evaluation with conservative weights — what
    /// HEFTBUDG+'s inner `simulate()` uses (paper Alg. 5).
    pub fn planning() -> Self {
        Self::new(WeightModel::Conservative)
    }

    /// Stochastic run with the given seed.
    pub fn stochastic(seed: u64) -> Self {
        Self::new(WeightModel::Stochastic { seed })
    }

    /// Limit the datacenter aggregate capacity.
    pub fn with_dc_capacity(mut self, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "capacity must be positive");
        self.dc_capacity = DcCapacity::Finite(bytes_per_sec);
        self
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;

    #[test]
    fn planning_is_conservative_infinite() {
        let c = SimConfig::planning();
        assert_eq!(c.weights, WeightModel::Conservative);
        assert_eq!(c.dc_capacity, DcCapacity::Infinite);
    }

    #[test]
    fn with_dc_capacity_sets_finite() {
        let c = SimConfig::stochastic(1).with_dc_capacity(1e6);
        assert_eq!(c.dc_capacity, DcCapacity::Finite(1e6));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        SimConfig::planning().with_dc_capacity(0.0);
    }
}
