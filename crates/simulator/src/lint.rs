//! Semantic plan linter: cross-checks a simulated execution against the
//! paper's platform model (§III) and cost accounting (Eqs. 1–3).
//!
//! [`plan_lint`] takes a workflow, a platform, the schedule that was
//! executed and the resulting [`SimulationReport`], and verifies five
//! invariant families:
//!
//! 1. **Precedence feasibility** — no consumer starts before its producer's
//!    output can have reached it (same-VM: producer end; cross-VM: producer
//!    end plus one upload and one download at datacenter bandwidth).
//! 2. **Per-VM timeline integrity** — every task ran on its assigned VM and
//!    the execution intervals on each VM follow the schedule order without
//!    overlap; durations match `weight / speed`.
//! 3. **Boot-delay respect** — a VM is ready exactly `boot_time` after
//!    booking, and no task starts before its VM is ready.
//! 4. **Transfer serialization** — each VM's inbound link moves one payload
//!    at a time, so a task cannot start before the serialized download time
//!    of every input needed up to its position; a VM releases no earlier
//!    than its last computation.
//! 5. **Budget reconciliation** — per-VM costs follow Eq. 1 for the observed
//!    usage span, the datacenter cost follows Eq. 2, the totals add up, and
//!    (when a budget is given) `total ≤ B` within tolerance (Eq. 3).
//!
//! The checks are *sound for the engine's accounting*: tolerances absorb the
//! engine's clock resolution (`T_EPS`) and transfer drain threshold
//! (`B_EPS`) so a genuine execution never trips a violation, while any
//! externally corrupted report or hand-built schedule that breaks the model
//! is reported with the offending quantities.

use crate::report::SimulationReport;
use crate::schedule::{Schedule, VmId};
use wfs_platform::Platform;
use wfs_workflow::{TaskId, Workflow};

/// Bytes below which the engine considers a transfer drained (mirrors the
/// engine's `B_EPS`); the linter credits transfers only for bytes beyond it.
const DRAIN_EPS: f64 = 1e-6;

/// Absolute + relative tolerance for comparing simulated instants/costs.
fn tol(x: f64) -> f64 {
    1e-6 + 1e-9 * x.abs()
}

/// One violated invariant, with the quantities that witness it.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanViolation {
    /// A consumer task started before its producer's data could be there.
    Precedence {
        /// Producer task.
        from: TaskId,
        /// Consumer task.
        to: TaskId,
        /// Earliest instant the data can be available at the consumer.
        available: f64,
        /// Observed consumer start.
        start: f64,
    },
    /// A task ran on a different VM than the schedule assigned.
    WrongVm {
        /// The task.
        task: TaskId,
        /// VM per the schedule.
        expected: VmId,
        /// VM per the report.
        actual: VmId,
    },
    /// Two consecutive tasks of one VM overlap (or run out of order).
    Overlap {
        /// The VM.
        vm: VmId,
        /// Earlier task in the VM order.
        first: TaskId,
        /// Later task in the VM order.
        second: TaskId,
        /// End of the earlier task.
        end: f64,
        /// Start of the later task (before `end`).
        start: f64,
    },
    /// A task's recorded duration disagrees with `weight / speed`.
    Duration {
        /// The task.
        task: TaskId,
        /// `realized_weight / category speed`.
        expected: f64,
        /// `end - start` from the record.
        actual: f64,
    },
    /// A VM's ready instant is not `booked_at + boot_time`.
    BootDelay {
        /// The VM.
        vm: VmId,
        /// `booked_at + boot_time`.
        expected_ready: f64,
        /// Observed `ready_at`.
        ready_at: f64,
    },
    /// A task started before its VM finished booting.
    StartBeforeReady {
        /// The VM.
        vm: VmId,
        /// The task.
        task: TaskId,
        /// Observed task start.
        start: f64,
        /// The VM's `ready_at`.
        ready_at: f64,
    },
    /// A task started before its VM's serialized inbound link could have
    /// delivered all inputs needed up to its position.
    LinkSerialization {
        /// The VM.
        vm: VmId,
        /// The task.
        task: TaskId,
        /// `ready_at` + serialized download time of all inputs up to it.
        earliest: f64,
        /// Observed task start.
        start: f64,
    },
    /// A VM released before its last computation ended.
    ReleaseBeforeEnd {
        /// The VM.
        vm: VmId,
        /// End of the VM's last task.
        last_end: f64,
        /// Observed `released_at`.
        released_at: f64,
    },
    /// A VM hosting tasks has no usage record in the report.
    MissingVmUsage {
        /// The VM.
        vm: VmId,
    },
    /// A per-VM cost disagrees with Eq. 1 for the observed usage span.
    VmCost {
        /// The VM.
        vm: VmId,
        /// Eq. 1 cost recomputed from the usage record.
        expected: f64,
        /// Cost stored in the record.
        actual: f64,
    },
    /// An aggregate of the report disagrees with its recomputation
    /// (`vm_cost`, `datacenter_cost`, `makespan` or `total_cost`).
    Accounting {
        /// Which aggregate.
        field: &'static str,
        /// Recomputed value.
        expected: f64,
        /// Reported value.
        actual: f64,
    },
    /// The execution overran the given budget (Eq. 3 second clause).
    BudgetExceeded {
        /// The budget `B`.
        budget: f64,
        /// Reported total cost.
        total: f64,
    },
}

impl std::fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanViolation::Precedence { from, to, available, start } => write!(
                f,
                "precedence: {to} starts at {start:.6} but data from {from} \
                 is only available at {available:.6}"
            ),
            PlanViolation::WrongVm { task, expected, actual } => {
                write!(f, "placement: {task} ran on {actual}, schedule says {expected}")
            }
            PlanViolation::Overlap { vm, first, second, end, start } => write!(
                f,
                "overlap on {vm}: {second} starts at {start:.6} before {first} ends at {end:.6}"
            ),
            PlanViolation::Duration { task, expected, actual } => write!(
                f,
                "duration: {task} ran {actual:.6}s, weight/speed gives {expected:.6}s"
            ),
            PlanViolation::BootDelay { vm, expected_ready, ready_at } => write!(
                f,
                "boot: {vm} ready at {ready_at:.6}, booked+boot gives {expected_ready:.6}"
            ),
            PlanViolation::StartBeforeReady { vm, task, start, ready_at } => write!(
                f,
                "boot: {task} starts at {start:.6} before {vm} is ready at {ready_at:.6}"
            ),
            PlanViolation::LinkSerialization { vm, task, earliest, start } => write!(
                f,
                "serialization on {vm}: {task} starts at {start:.6}, serialized \
                 downloads allow {earliest:.6} at the earliest"
            ),
            PlanViolation::ReleaseBeforeEnd { vm, last_end, released_at } => write!(
                f,
                "release: {vm} released at {released_at:.6} before its last task \
                 ends at {last_end:.6}"
            ),
            PlanViolation::MissingVmUsage { vm } => {
                write!(f, "report: {vm} hosts tasks but has no usage record")
            }
            PlanViolation::VmCost { vm, expected, actual } => write!(
                f,
                "cost: {vm} reports {actual:.9}, Eq. 1 on its usage span gives {expected:.9}"
            ),
            PlanViolation::Accounting { field, expected, actual } => write!(
                f,
                "accounting: {field} reports {actual:.9}, recomputation gives {expected:.9}"
            ),
            PlanViolation::BudgetExceeded { budget, total } => {
                write!(f, "budget: total cost {total:.9} exceeds budget {budget:.9}")
            }
        }
    }
}

/// Bytes the engine actually drains for a transfer of `size` bytes.
fn effective_bytes(size: f64) -> f64 {
    (size - DRAIN_EPS).max(0.0)
}

/// What a fault-truncated run actually executed — lets the linter verify
/// the same invariant families on the prefix that ran while skipping tasks
/// that crashes or abandoned boots prevented from running at all.
#[derive(Debug, Clone, Copy)]
pub struct FaultLintContext<'a> {
    /// Per task: computation finished during the run.
    pub finished: &'a [bool],
    /// Per VM: actual boot delay including fault retries (`None` = the VM
    /// was never booked, or its boot was abandoned).
    pub boot_delays: &'a [Option<f64>],
}

/// Lint the executed plan; returns all violations found (empty = clean).
///
/// `budget` enables the Eq. 3 budget clause; pass `None` for baselines or
/// for the best-effort fallback paths where overspending is expected.
pub fn plan_lint(
    wf: &Workflow,
    platform: &Platform,
    schedule: &Schedule,
    report: &SimulationReport,
    budget: Option<f64>,
) -> Vec<PlanViolation> {
    lint_impl(wf, platform, schedule, report, budget, None)
}

/// Lint a fault-truncated execution (see [`FaultLintContext`]): every
/// invariant family is checked on the tasks that ran; VMs whose boot
/// faults cost extra delay are held to their *actual* boot delay.
pub fn plan_lint_faulted(
    wf: &Workflow,
    platform: &Platform,
    schedule: &Schedule,
    report: &SimulationReport,
    budget: Option<f64>,
    ctx: &FaultLintContext<'_>,
) -> Vec<PlanViolation> {
    lint_impl(wf, platform, schedule, report, budget, Some(ctx))
}

fn lint_impl(
    wf: &Workflow,
    platform: &Platform,
    schedule: &Schedule,
    report: &SimulationReport,
    budget: Option<f64>,
    ctx: Option<&FaultLintContext<'_>>,
) -> Vec<PlanViolation> {
    let mut v = Vec::new();
    let bw = platform.datacenter.bandwidth;
    let ran = |t: TaskId| ctx.is_none_or(|c| c.finished[t.index()]);

    // Usage record per VM id (report.vms only holds booked VMs).
    let usage_of = |vm: VmId| report.vms.iter().find(|u| u.vm == vm);

    // --- 1. Precedence feasibility ------------------------------------
    for e in wf.edges() {
        if !ran(e.from) || !ran(e.to) {
            // Fault-truncated edge: one endpoint never ran.
            continue;
        }
        let prod = report.task(e.from);
        let cons = report.task(e.to);
        let same_vm = prod.vm == cons.vm;
        let available = if same_vm {
            prod.end
        } else {
            // Cross-VM: one upload + one download, each at most at the
            // datacenter bandwidth (fair-sharing only slows them down).
            prod.end + 2.0 * effective_bytes(e.size) / bw
        };
        if cons.start < available - tol(available) {
            v.push(PlanViolation::Precedence {
                from: e.from,
                to: e.to,
                available,
                start: cons.start,
            });
        }
    }

    // --- 2–4. Per-VM timeline, boot, serialization --------------------
    for vm in schedule.vm_ids() {
        let order = schedule.order(vm);
        if order.is_empty() {
            continue;
        }
        let ran_any = order.iter().any(|&t| ran(t));
        let Some(usage) = usage_of(vm) else {
            // A VM that ran nothing (boot abandoned, or its inputs were
            // stranded by another VM's fault) is legitimately absent.
            if ran_any {
                v.push(PlanViolation::MissingVmUsage { vm });
            }
            continue;
        };

        // Boot delay (invariant 3). Boot faults stretch the delay; the
        // context carries the actual per-VM value.
        let boot = ctx
            .and_then(|c| c.boot_delays.get(vm.index()).copied().flatten())
            .unwrap_or_else(|| platform.category(schedule.vm_category(vm)).boot_time);
        let expected_ready = usage.booked_at + boot;
        if (usage.ready_at - expected_ready).abs() > tol(expected_ready) {
            v.push(PlanViolation::BootDelay { vm, expected_ready, ready_at: usage.ready_at });
        }

        let speed = platform.category(schedule.vm_category(vm)).speed;
        let mut prev: Option<TaskId> = None;
        let mut inbound_bytes = 0.0f64;
        let mut last_end = 0.0f64;
        for &t in order {
            if !ran(t) {
                // Tasks execute strictly in schedule order; the first
                // fault-truncated task ends the checkable prefix.
                break;
            }
            let rec = report.task(t);
            if rec.vm != vm {
                v.push(PlanViolation::WrongVm { task: t, expected: vm, actual: rec.vm });
                continue;
            }
            // Timeline integrity (invariant 2).
            if let Some(p) = prev {
                let pe = report.task(p).end;
                if rec.start < pe - tol(pe) {
                    v.push(PlanViolation::Overlap {
                        vm,
                        first: p,
                        second: t,
                        end: pe,
                        start: rec.start,
                    });
                }
            }
            let expected_dur = rec.realized_weight / speed;
            let actual_dur = rec.end - rec.start;
            if (actual_dur - expected_dur).abs() > tol(expected_dur) {
                v.push(PlanViolation::Duration { task: t, expected: expected_dur, actual: actual_dur });
            }
            // Boot respect (invariant 3).
            if rec.start < usage.ready_at - tol(usage.ready_at) {
                v.push(PlanViolation::StartBeforeReady {
                    vm,
                    task: t,
                    start: rec.start,
                    ready_at: usage.ready_at,
                });
            }
            // Inbound-link serialization (invariant 4): every remote input
            // of tasks up to this position moved one-at-a-time over the
            // VM's inbound link, which opens at `ready_at`.
            for &e in wf.in_edges(t) {
                if report.task(wf.edge(e).from).vm != vm {
                    inbound_bytes += effective_bytes(wf.edge(e).size);
                }
            }
            inbound_bytes += effective_bytes(wf.task(t).external_input);
            let earliest = usage.ready_at + inbound_bytes / bw;
            if rec.start < earliest - tol(earliest) {
                v.push(PlanViolation::LinkSerialization { vm, task: t, earliest, start: rec.start });
            }
            last_end = last_end.max(rec.end);
            prev = Some(t);
        }
        if usage.released_at < last_end - tol(last_end) {
            v.push(PlanViolation::ReleaseBeforeEnd { vm, last_end, released_at: usage.released_at });
        }
    }

    // --- 5. Budget reconciliation (Eqs. 1–3) --------------------------
    let mut vm_sum = 0.0;
    let mut first_booked = f64::INFINITY;
    let mut last_released = 0.0f64;
    for usage in &report.vms {
        let eq1 = platform.vm_cost(usage.category, usage.released_at - usage.ready_at);
        if (usage.cost - eq1).abs() > tol(eq1) {
            v.push(PlanViolation::VmCost { vm: usage.vm, expected: eq1, actual: usage.cost });
        }
        vm_sum += usage.cost;
        first_booked = first_booked.min(usage.booked_at);
        last_released = last_released.max(usage.released_at);
    }
    if (report.vm_cost - vm_sum).abs() > tol(vm_sum) {
        v.push(PlanViolation::Accounting {
            field: "vm_cost",
            expected: vm_sum,
            actual: report.vm_cost,
        });
    }
    let makespan = if first_booked.is_finite() { (last_released - first_booked).max(0.0) } else { 0.0 };
    if (report.makespan - makespan).abs() > tol(makespan) {
        v.push(PlanViolation::Accounting {
            field: "makespan",
            expected: makespan,
            actual: report.makespan,
        });
    }
    let external = wf.external_input_data() + wf.external_output_data();
    let eq2 = platform.datacenter.cost(report.makespan, external);
    if (report.datacenter_cost - eq2).abs() > tol(eq2) {
        v.push(PlanViolation::Accounting {
            field: "datacenter_cost",
            expected: eq2,
            actual: report.datacenter_cost,
        });
    }
    let total = report.vm_cost + report.datacenter_cost;
    if (report.total_cost - total).abs() > tol(total) {
        v.push(PlanViolation::Accounting {
            field: "total_cost",
            expected: total,
            actual: report.total_cost,
        });
    }
    if let Some(b) = budget {
        if report.total_cost > b + tol(b) {
            v.push(PlanViolation::BudgetExceeded { budget: b, total: report.total_cost });
        }
    }
    v
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use crate::{simulate, SimConfig};
    use wfs_platform::Platform;
    use wfs_workflow::gen::{chain, fork_join, GenConfig};
    use wfs_workflow::gen::montage;

    fn paper() -> Platform {
        Platform::paper_default()
    }

    /// Round-robin the tasks of `wf` over `n` VMs of category 0 — a crude
    /// but valid schedule exercising cross-VM edges and boot gates.
    fn round_robin(wf: &wfs_workflow::Workflow, n: u32) -> Schedule {
        let mut s = Schedule::new(wf.task_count());
        for i in 0..n {
            s.add_vm(wfs_platform::CategoryId(i % 3));
        }
        for t in wf.task_ids() {
            s.assign(t, VmId(t.0 % n));
        }
        s
    }

    fn lint_clean(wf: &wfs_workflow::Workflow, s: &Schedule) -> SimulationReport {
        let p = paper();
        let r = simulate(wf, &p, s, &SimConfig::planning()).unwrap();
        let violations = plan_lint(wf, &p, s, &r, None);
        assert!(violations.is_empty(), "genuine run flagged: {:?}", violations);
        r
    }

    #[test]
    fn genuine_executions_are_clean() {
        for wf in [montage(GenConfig::new(40, 3)), chain(12, 500.0, 1e7), fork_join(9, 300.0, 1e6)]
        {
            lint_clean(&wf, &round_robin(&wf, 3));
        }
    }

    #[test]
    fn stochastic_executions_are_clean_too() {
        let wf = montage(GenConfig::new(30, 5));
        let p = paper();
        let s = round_robin(&wf, 2);
        let r = simulate(&wf, &p, &s, &SimConfig::stochastic(9)).unwrap();
        assert!(plan_lint(&wf, &p, &s, &r, None).is_empty());
    }

    // ---- mutation tests: each invariant family fires on a corruption ----

    #[test]
    fn mutation_precedence_fires() {
        let wf = chain(4, 500.0, 1e7);
        let s = round_robin(&wf, 2);
        let mut r = lint_clean(&wf, &s);
        // Pull a downstream task before its producer's data can arrive.
        r.tasks[1].start = 0.0;
        let p = paper();
        assert!(plan_lint(&wf, &p, &s, &r, None)
            .iter()
            .any(|v| matches!(v, PlanViolation::Precedence { .. })));
    }

    #[test]
    fn mutation_wrong_vm_fires() {
        let wf = chain(4, 500.0, 1e7);
        let s = round_robin(&wf, 2);
        let mut r = lint_clean(&wf, &s);
        r.tasks[0].vm = VmId(1);
        let p = paper();
        assert!(plan_lint(&wf, &p, &s, &r, None)
            .iter()
            .any(|v| matches!(v, PlanViolation::WrongVm { .. })));
    }

    #[test]
    fn mutation_overlap_fires() {
        let wf = fork_join(6, 800.0, 1e6);
        let s = round_robin(&wf, 2);
        let mut r = lint_clean(&wf, &s);
        // Two tasks share VM 0; slide the later one onto the earlier one.
        let order: Vec<_> = s.order(VmId(0)).to_vec();
        let (a, b) = (order[order.len() - 2], order[order.len() - 1]);
        let shifted = report_start(&r, a) + 1e-3;
        let dur = r.tasks[b.index()].end - r.tasks[b.index()].start;
        r.tasks[b.index()].start = shifted;
        r.tasks[b.index()].end = shifted + dur;
        let p = paper();
        assert!(plan_lint(&wf, &p, &s, &r, None)
            .iter()
            .any(|v| matches!(v, PlanViolation::Overlap { .. })));
    }

    fn report_start(r: &SimulationReport, t: wfs_workflow::TaskId) -> f64 {
        r.tasks[t.index()].start
    }

    #[test]
    fn mutation_duration_fires() {
        let wf = chain(3, 500.0, 1e6);
        let s = round_robin(&wf, 1);
        let mut r = lint_clean(&wf, &s);
        r.tasks[2].end += 5.0;
        let p = paper();
        // Stretching the last task's end also desynchronizes release/usage
        // accounting; the duration violation must be among the findings.
        assert!(plan_lint(&wf, &p, &s, &r, None)
            .iter()
            .any(|v| matches!(v, PlanViolation::Duration { .. })));
    }

    #[test]
    fn mutation_boot_delay_fires() {
        let wf = chain(3, 500.0, 1e6);
        let s = round_robin(&wf, 1);
        let mut r = lint_clean(&wf, &s);
        r.vms[0].ready_at -= 1.0;
        let p = paper();
        let vs = plan_lint(&wf, &p, &s, &r, None);
        assert!(vs.iter().any(|v| matches!(v, PlanViolation::BootDelay { .. })), "{vs:?}");
    }

    #[test]
    fn mutation_start_before_ready_fires() {
        let wf = chain(3, 500.0, 1e6);
        let s = round_robin(&wf, 1);
        let mut r = lint_clean(&wf, &s);
        // Move the whole boot window later so the first start precedes it.
        r.vms[0].booked_at += 20.0;
        r.vms[0].ready_at += 20.0;
        let p = paper();
        let vs = plan_lint(&wf, &p, &s, &r, None);
        assert!(
            vs.iter().any(|v| matches!(v, PlanViolation::StartBeforeReady { .. })),
            "{vs:?}"
        );
    }

    #[test]
    fn mutation_link_serialization_fires() {
        // Heavy external inputs: starting any earlier than the serialized
        // download time is impossible.
        let wf = chain(3, 50.0, 5e8);
        let s = round_robin(&wf, 1);
        let mut r = lint_clean(&wf, &s);
        r.tasks[0].start = r.vms[0].ready_at + 1e-3;
        r.tasks[0].end = r.tasks[0].start + (r.tasks[0].realized_weight / paper().category(wfs_platform::CategoryId(0)).speed);
        let p = paper();
        let vs = plan_lint(&wf, &p, &s, &r, None);
        assert!(
            vs.iter().any(|v| matches!(v, PlanViolation::LinkSerialization { .. })),
            "{vs:?}"
        );
    }

    #[test]
    fn mutation_release_before_end_fires() {
        let wf = chain(3, 500.0, 1e6);
        let s = round_robin(&wf, 1);
        let mut r = lint_clean(&wf, &s);
        r.vms[0].released_at = r.vms[0].ready_at;
        let p = paper();
        let vs = plan_lint(&wf, &p, &s, &r, None);
        assert!(
            vs.iter().any(|v| matches!(v, PlanViolation::ReleaseBeforeEnd { .. })),
            "{vs:?}"
        );
    }

    #[test]
    fn mutation_vm_cost_fires() {
        let wf = chain(3, 500.0, 1e6);
        let s = round_robin(&wf, 1);
        let mut r = lint_clean(&wf, &s);
        r.vms[0].cost *= 0.5;
        let p = paper();
        let vs = plan_lint(&wf, &p, &s, &r, None);
        assert!(vs.iter().any(|v| matches!(v, PlanViolation::VmCost { .. })), "{vs:?}");
        // The sum no longer matches either.
        assert!(
            vs.iter()
                .any(|v| matches!(v, PlanViolation::Accounting { field: "vm_cost", .. })),
            "{vs:?}"
        );
    }

    #[test]
    fn mutation_accounting_fields_fire() {
        let wf = chain(3, 500.0, 1e6);
        let s = round_robin(&wf, 1);
        let p = paper();
        for field in ["makespan", "datacenter_cost", "total_cost"] {
            let mut r = lint_clean(&wf, &s);
            match field {
                "makespan" => r.makespan += 10.0,
                "datacenter_cost" => r.datacenter_cost += 1.0,
                _ => r.total_cost += 1.0,
            }
            let vs = plan_lint(&wf, &p, &s, &r, None);
            assert!(
                vs.iter().any(
                    |v| matches!(v, PlanViolation::Accounting { field: f, .. } if *f == field)
                ),
                "{field}: {vs:?}"
            );
        }
    }

    #[test]
    fn mutation_missing_vm_usage_fires() {
        let wf = chain(4, 500.0, 1e6);
        let s = round_robin(&wf, 2);
        let mut r = lint_clean(&wf, &s);
        r.vms.remove(1);
        let p = paper();
        assert!(plan_lint(&wf, &p, &s, &r, None)
            .iter()
            .any(|v| matches!(v, PlanViolation::MissingVmUsage { vm } if *vm == VmId(1))));
    }

    #[test]
    fn budget_clause_fires_only_when_requested() {
        let wf = chain(3, 500.0, 1e6);
        let s = round_robin(&wf, 1);
        let r = lint_clean(&wf, &s);
        let p = paper();
        let tight = r.total_cost * 0.5;
        assert!(plan_lint(&wf, &p, &s, &r, None).is_empty());
        let vs = plan_lint(&wf, &p, &s, &r, Some(tight));
        assert_eq!(vs.len(), 1);
        assert!(matches!(vs[0], PlanViolation::BudgetExceeded { .. }));
        assert!(plan_lint(&wf, &p, &s, &r, Some(r.total_cost * 2.0)).is_empty());
    }

    #[test]
    fn violations_render_human_readable() {
        let v = PlanViolation::BudgetExceeded { budget: 1.0, total: 2.0 };
        let s = v.to_string();
        assert!(s.contains("budget"), "{s}");
        assert!(s.contains("2.0"), "{s}");
    }
}
