//! Schedules: the mapping produced by a scheduling algorithm and consumed by
//! the simulator.

use serde::{Deserialize, Serialize};
use wfs_platform::CategoryId;
use wfs_workflow::{TaskId, Workflow};

/// Identifier of a VM *instance* enrolled by a schedule (dense indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VmId(pub u32);

impl VmId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// Errors raised by schedule validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A task has no VM assignment.
    Unassigned(TaskId),
    /// A task appears in the order list of a VM it is not assigned to, or
    /// appears twice.
    InconsistentOrder(TaskId),
    /// The combination of DAG precedence and per-VM execution orders admits
    /// no valid execution (circular wait across VMs).
    Deadlock,
    /// A VM id out of range was referenced.
    UnknownVm(VmId),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::Unassigned(t) => write!(f, "task {t} has no VM assignment"),
            ScheduleError::InconsistentOrder(t) => {
                write!(f, "task {t} order entry inconsistent with its assignment")
            }
            ScheduleError::Deadlock => write!(f, "schedule deadlocks (cross-VM circular wait)"),
            ScheduleError::UnknownVm(v) => write!(f, "unknown VM {v}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A complete schedule: the set of enrolled VM instances (each of a given
/// category), the task→VM assignment, and the execution order on each VM.
///
/// Built incrementally by scheduling algorithms via [`Schedule::new`],
/// [`Schedule::add_vm`] and [`Schedule::assign`]; [`Schedule::validate`]
/// checks it is executable before simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Category of each enrolled VM instance, indexed by [`VmId`].
    vms: Vec<CategoryId>,
    /// Assignment of each task, indexed by [`TaskId`].
    assignment: Vec<Option<VmId>>,
    /// Execution order on each VM, indexed by [`VmId`].
    order: Vec<Vec<TaskId>>,
}

impl Schedule {
    /// An empty schedule for a workflow of `n_tasks` tasks.
    pub fn new(n_tasks: usize) -> Self {
        Self { vms: Vec::new(), assignment: vec![None; n_tasks], order: Vec::new() }
    }

    /// Enroll a new VM instance of the given category; returns its id.
    pub fn add_vm(&mut self, category: CategoryId) -> VmId {
        let id = VmId(self.vms.len() as u32);
        self.vms.push(category);
        self.order.push(Vec::new());
        id
    }

    /// Append `task` to the execution order of `vm` and record the
    /// assignment. Panics if the task is already assigned (algorithms assign
    /// each task exactly once; re-mapping goes through [`Schedule::reassign`]).
    pub fn assign(&mut self, task: TaskId, vm: VmId) {
        assert!(
            self.assignment[task.index()].is_none(),
            "task {task} assigned twice; use reassign to move it"
        );
        self.assignment[task.index()] = Some(vm);
        self.order[vm.index()].push(task);
    }

    /// Move `task` to the *end* of `vm`'s order (used by the refinement
    /// algorithms when trying alternative hosts). The caller re-sorts orders
    /// afterwards via [`Schedule::sort_orders_by`].
    pub fn reassign(&mut self, task: TaskId, vm: VmId) {
        if let Some(old) = self.assignment[task.index()] {
            self.order[old.index()].retain(|&t| t != task);
        }
        self.assignment[task.index()] = Some(vm);
        self.order[vm.index()].push(task);
    }

    /// Re-sort every VM's execution order by a task key (typically the HEFT
    /// priority rank), keeping schedules executable after reassignments.
    ///
    /// The key must be totally ordered (`Ord`); float keys should be wrapped
    /// in a total-order adapter such as `wfs_workflow::OrdF64` so a NaN rank
    /// cannot make the sort non-deterministic.
    pub fn sort_orders_by<K: Ord>(&mut self, key: impl Fn(TaskId) -> K) {
        for ord in &mut self.order {
            ord.sort_by_key(|&t| key(t));
        }
    }

    /// Drop enrolled VMs that ended up with no tasks, remapping ids densely.
    /// Refinements can empty a VM; pruning keeps reports meaningful.
    pub fn prune_empty_vms(&mut self) {
        let mut remap: Vec<Option<VmId>> = Vec::with_capacity(self.vms.len());
        let mut new_vms = Vec::new();
        let mut new_order = Vec::new();
        for (i, ord) in self.order.iter().enumerate() {
            if ord.is_empty() {
                remap.push(None);
            } else {
                remap.push(Some(VmId(new_vms.len() as u32)));
                new_vms.push(self.vms[i]);
                new_order.push(ord.clone());
            }
        }
        for a in &mut self.assignment {
            if let Some(vm) = a {
                #[allow(clippy::expect_used)] // this VM holds `a`, so it was kept
                let new_id = remap[vm.index()].expect("assigned VM cannot be empty");
                *a = Some(new_id);
            }
        }
        self.vms = new_vms;
        self.order = new_order;
    }

    /// Number of enrolled VM instances.
    #[inline]
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Category of a VM instance.
    #[inline]
    pub fn vm_category(&self, vm: VmId) -> CategoryId {
        self.vms[vm.index()]
    }

    /// Ids of all enrolled VMs.
    pub fn vm_ids(&self) -> impl Iterator<Item = VmId> + '_ {
        (0..self.vms.len() as u32).map(VmId)
    }

    /// Categories of all enrolled VMs, indexed by VM id. Lets hot loops
    /// iterate VM metadata without a per-VM method call.
    #[inline]
    pub fn vm_categories(&self) -> &[CategoryId] {
        &self.vms
    }

    /// The VM a task is assigned to, if any.
    #[inline]
    pub fn assignment(&self, task: TaskId) -> Option<VmId> {
        self.assignment[task.index()]
    }

    /// The execution order on a VM.
    #[inline]
    pub fn order(&self, vm: VmId) -> &[TaskId] {
        &self.order[vm.index()]
    }

    /// Number of VMs that actually host at least one task.
    pub fn used_vm_count(&self) -> usize {
        self.order.iter().filter(|o| !o.is_empty()).count()
    }

    /// True if producer and consumer of `edge` are on different VMs (so the
    /// data must transit through the datacenter).
    pub fn is_cross_vm(&self, wf: &Workflow, edge: wfs_workflow::EdgeId) -> bool {
        let e = wf.edge(edge);
        match (self.assignment(e.from), self.assignment(e.to)) {
            (Some(a), Some(b)) => a != b,
            _ => true,
        }
    }

    /// Validate that the schedule can execute `wf`: every task assigned,
    /// orders consistent, and the union of DAG precedence and per-VM order
    /// constraints acyclic.
    pub fn validate(&self, wf: &Workflow) -> Result<(), ScheduleError> {
        let n = wf.task_count();
        for t in wf.task_ids() {
            match self.assignment[t.index()] {
                None => return Err(ScheduleError::Unassigned(t)),
                Some(vm) if vm.index() >= self.vms.len() => {
                    return Err(ScheduleError::UnknownVm(vm))
                }
                Some(_) => {}
            }
        }
        // Each task appears exactly once, on the VM it is assigned to.
        let mut seen = vec![false; n];
        for (vm_idx, ord) in self.order.iter().enumerate() {
            for &t in ord {
                if t.index() >= n
                    || seen[t.index()]
                    || self.assignment[t.index()] != Some(VmId(vm_idx as u32))
                {
                    return Err(ScheduleError::InconsistentOrder(t));
                }
                seen[t.index()] = true;
            }
        }
        if let Some(idx) = seen.iter().position(|&s| !s) {
            return Err(ScheduleError::InconsistentOrder(TaskId(idx as u32)));
        }
        // Deadlock check: topological sort of DAG edges + per-VM order edges.
        let mut indeg = vec![0usize; n];
        let mut extra_succ: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for e in wf.edges() {
            indeg[e.to.index()] += 1;
        }
        for ord in &self.order {
            for w in ord.windows(2) {
                extra_succ[w[0].index()].push(w[1]);
                indeg[w[1].index()] += 1;
            }
        }
        let mut queue: Vec<TaskId> =
            wf.task_ids().filter(|t| indeg[t.index()] == 0).collect();
        let mut visited = 0usize;
        while let Some(t) = queue.pop() {
            visited += 1;
            for s in wf.successors(t) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push(s);
                }
            }
            for &s in &extra_succ[t.index()] {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push(s);
                }
            }
        }
        if visited != n {
            return Err(ScheduleError::Deadlock);
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use wfs_workflow::gen::{chain, fork_join};
    use wfs_workflow::StochasticWeight;
    use wfs_workflow::WorkflowBuilder;

    fn cat(i: u32) -> CategoryId {
        CategoryId(i)
    }

    #[test]
    fn build_and_query() {
        let wf = chain(3, 10.0, 1e6);
        let mut s = Schedule::new(wf.task_count());
        let v0 = s.add_vm(cat(0));
        let v1 = s.add_vm(cat(2));
        s.assign(TaskId(0), v0);
        s.assign(TaskId(1), v1);
        s.assign(TaskId(2), v0);
        assert_eq!(s.vm_count(), 2);
        assert_eq!(s.used_vm_count(), 2);
        assert_eq!(s.assignment(TaskId(1)), Some(v1));
        assert_eq!(s.order(v0), &[TaskId(0), TaskId(2)]);
        assert_eq!(s.vm_category(v1), cat(2));
        s.validate(&wf).unwrap();
    }

    #[test]
    fn unassigned_task_detected() {
        let wf = chain(2, 10.0, 1e6);
        let mut s = Schedule::new(wf.task_count());
        let v0 = s.add_vm(cat(0));
        s.assign(TaskId(0), v0);
        assert_eq!(s.validate(&wf).unwrap_err(), ScheduleError::Unassigned(TaskId(1)));
    }

    #[test]
    fn cross_vm_detection() {
        let wf = chain(2, 10.0, 1e6);
        let mut s = Schedule::new(wf.task_count());
        let v0 = s.add_vm(cat(0));
        s.assign(TaskId(0), v0);
        s.assign(TaskId(1), v0);
        assert!(!s.is_cross_vm(&wf, wfs_workflow::EdgeId(0)));
        let mut s2 = Schedule::new(wf.task_count());
        let a = s2.add_vm(cat(0));
        let b = s2.add_vm(cat(0));
        s2.assign(TaskId(0), a);
        s2.assign(TaskId(1), b);
        assert!(s2.is_cross_vm(&wf, wfs_workflow::EdgeId(0)));
    }

    #[test]
    fn deadlock_detected() {
        // a -> b on VM0; c -> d on VM1; order forces b before ... build a
        // cross wait: VM0 runs [b, c_pred] etc. Simplest: two independent
        // 2-chains, each VM interleaves them in opposite orders.
        let mut b = WorkflowBuilder::new("dl");
        let a1 = b.add_task("a1", StochasticWeight::fixed(1.0));
        let a2 = b.add_task("a2", StochasticWeight::fixed(1.0));
        let c1 = b.add_task("c1", StochasticWeight::fixed(1.0));
        let c2 = b.add_task("c2", StochasticWeight::fixed(1.0));
        b.add_edge(a1, a2, 0.0).unwrap();
        b.add_edge(c1, c2, 0.0).unwrap();
        let wf = b.build().unwrap();
        let mut s = Schedule::new(wf.task_count());
        let v0 = s.add_vm(cat(0));
        let v1 = s.add_vm(cat(0));
        // VM0 runs a2 then c1; VM1 runs c2 then a1: a1 waits VM1 slot after
        // c2, c2 waits c1, c1 waits VM0 slot after a2, a2 waits a1. Cycle.
        s.assign(a2, v0);
        s.assign(c1, v0);
        s.assign(c2, v1);
        s.assign(a1, v1);
        assert_eq!(s.validate(&wf).unwrap_err(), ScheduleError::Deadlock);
    }

    #[test]
    fn reassign_moves_between_orders() {
        let wf = fork_join(2, 5.0, 1e6);
        let mut s = Schedule::new(wf.task_count());
        let v0 = s.add_vm(cat(0));
        let v1 = s.add_vm(cat(1));
        for t in wf.task_ids() {
            s.assign(t, v0);
        }
        s.validate(&wf).unwrap();
        s.reassign(TaskId(1), v1);
        // Restore precedence-compatible ordering by task id (valid for
        // fork_join since ids are topological).
        s.sort_orders_by(|t| t.0);
        s.validate(&wf).unwrap();
        assert_eq!(s.assignment(TaskId(1)), Some(v1));
        assert_eq!(s.order(v1), &[TaskId(1)]);
        assert!(!s.order(v0).contains(&TaskId(1)));
    }

    #[test]
    fn prune_empty_vms_remaps_ids() {
        let wf = chain(2, 5.0, 1e6);
        let mut s = Schedule::new(wf.task_count());
        let _v0 = s.add_vm(cat(0));
        let v1 = s.add_vm(cat(1));
        let _v2 = s.add_vm(cat(2));
        s.assign(TaskId(0), v1);
        s.assign(TaskId(1), v1);
        s.prune_empty_vms();
        assert_eq!(s.vm_count(), 1);
        assert_eq!(s.assignment(TaskId(0)), Some(VmId(0)));
        assert_eq!(s.vm_category(VmId(0)), cat(1));
        s.validate(&wf).unwrap();
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn double_assign_panics() {
        let wf = chain(1, 5.0, 1e6);
        let mut s = Schedule::new(wf.task_count());
        let v0 = s.add_vm(cat(0));
        s.assign(TaskId(0), v0);
        s.assign(TaskId(0), v0);
    }

    #[test]
    fn serde_roundtrip() {
        let wf = chain(2, 5.0, 1e6);
        let mut s = Schedule::new(wf.task_count());
        let v0 = s.add_vm(cat(1));
        s.assign(TaskId(0), v0);
        s.assign(TaskId(1), v0);
        let json = serde_json::to_string(&s).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
