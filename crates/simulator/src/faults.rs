//! Seeded, deterministic fault injection (DESIGN.md §9).
//!
//! Three event families, each driven by its own RNG stream derived from one
//! master seed so runs are bit-reproducible and the families are
//! statistically independent:
//!
//! - **Crash-stop VM failures** ([`CrashModel`]): a time-to-failure is drawn
//!   per VM (exponential or Weibull, with a per-category scale factor) when
//!   the VM becomes operational. At the crash instant the in-flight task's
//!   work and every in-flight transfer of that VM are lost; the occupied
//!   interval up to the crash stays billed per Eq. 1.
//! - **Transient boot failures** ([`BootFaultModel`]): each boot attempt
//!   fails independently with a fixed probability; every failed attempt
//!   repeats the (uncharged) boot delay, scaled by a retry backoff. Past
//!   `max_retries` failures the instance is abandoned and never becomes
//!   operational.
//! - **Datacenter degradation windows** ([`DegradationModel`]): intervals
//!   during which the datacenter bandwidth (and aggregate capacity) is
//!   scaled down, stretching in-flight transfers under the engine's
//!   fair-share machinery.
//!
//! With [`FaultConfig::none`] — or with every family configured at rate
//! zero — the engine's behavior is bit-identical to the fault-free
//! simulator: no events are injected and no arithmetic changes.

use crate::lint::FaultLintContext;
use crate::report::SimulationReport;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use wfs_workflow::TaskId;

/// SplitMix64 finalizer — decorrelates per-stream seeds derived from one
/// master seed (the standard seed-stretching construction).
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed of sub-stream `stream` from a master `seed`. Used for
/// the per-VM fault streams and for per-epoch reseeding during recovery.
pub fn stream_seed(seed: u64, stream: u64) -> u64 {
    splitmix(seed ^ splitmix(stream))
}

/// One exponential sample with the given mean (inverse-CDF on a uniform
/// draw; the repo deliberately avoids a `rand_distr` dependency).
pub(crate) fn sample_exponential(mean: f64, rng: &mut StdRng) -> f64 {
    // u in [0, 1) so 1-u is in (0, 1] and the log is finite.
    let u: f64 = rng.gen();
    mean * -(1.0 - u).ln()
}

/// Crash-stop VM failures: time-to-failure from boot end, drawn per VM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashModel {
    /// Weibull scale `λ` in seconds for category 0. With `shape == 1` this
    /// is the mean time between failures; `f64::INFINITY` disables crashes
    /// (the rate-0 configuration).
    pub scale: f64,
    /// Weibull shape `k`; `1.0` gives exponential inter-arrivals, `< 1`
    /// infant mortality, `> 1` wear-out.
    pub shape: f64,
    /// Per-category scale multiplier: category `c` uses `scale·factor^c`
    /// (pricier instances can be made more — or less — reliable).
    pub category_factor: f64,
}

impl CrashModel {
    /// Exponential inter-arrivals with the given mean time between
    /// failures. `f64::INFINITY` yields a rate-0 model (never crashes).
    pub fn exponential(mtbf: f64) -> Self {
        assert!(mtbf > 0.0, "MTBF must be positive, got {mtbf}");
        Self { scale: mtbf, shape: 1.0, category_factor: 1.0 }
    }

    /// Weibull time-to-failure with the given scale and shape.
    pub fn weibull(scale: f64, shape: f64) -> Self {
        assert!(scale > 0.0, "Weibull scale must be positive, got {scale}");
        assert!(shape.is_finite() && shape > 0.0, "Weibull shape must be positive, got {shape}");
        Self { scale, shape, category_factor: 1.0 }
    }

    /// Set the per-category scale multiplier.
    pub fn with_category_factor(mut self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "category factor must be positive");
        self.category_factor = factor;
        self
    }

    /// Draw one time-to-failure for a VM of the given category.
    pub(crate) fn sample_ttf(&self, category: u32, rng: &mut StdRng) -> f64 {
        let scale = self.scale * self.category_factor.powf(f64::from(category));
        let u: f64 = rng.gen();
        scale * (-(1.0 - u).ln()).powf(1.0 / self.shape)
    }
}

/// Transient boot failures with retry-and-backoff.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootFaultModel {
    /// Probability that one boot attempt fails (`0.0` = rate-0).
    pub fail_prob: f64,
    /// Failed attempts tolerated before the instance is abandoned.
    pub max_retries: u32,
    /// Each retry's boot delay is the category boot time times
    /// `backoff^attempt` (`1.0` = plain repetition).
    pub backoff: f64,
}

impl BootFaultModel {
    /// Boot attempts fail with probability `fail_prob`; up to `max_retries`
    /// re-boots before abandoning the instance. Backoff factor 1.0.
    pub fn new(fail_prob: f64, max_retries: u32) -> Self {
        assert!(
            (0.0..1.0).contains(&fail_prob),
            "boot failure probability must be in [0, 1), got {fail_prob}"
        );
        Self { fail_prob, max_retries, backoff: 1.0 }
    }

    /// Grow each retry's boot delay geometrically.
    pub fn with_backoff(mut self, backoff: f64) -> Self {
        assert!(backoff.is_finite() && backoff >= 1.0, "backoff must be >= 1");
        self.backoff = backoff;
        self
    }
}

/// Datacenter degradation windows: alternating OK/degraded intervals with
/// exponential gap and duration, scaling the bandwidth while active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationModel {
    /// Bandwidth (and aggregate capacity) multiplier while degraded, in
    /// `(0, 1]` (`1.0` = rate-0: windows occur but change nothing).
    pub factor: f64,
    /// Mean gap between windows (seconds, exponential).
    pub mean_gap: f64,
    /// Mean window duration (seconds, exponential).
    pub mean_duration: f64,
}

impl DegradationModel {
    /// Windows scaling bandwidth by `factor`, exponential gaps/durations.
    pub fn new(factor: f64, mean_gap: f64, mean_duration: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "degradation factor must be in (0, 1], got {factor}");
        assert!(mean_gap.is_finite() && mean_gap > 0.0, "mean gap must be positive");
        assert!(mean_duration.is_finite() && mean_duration > 0.0, "mean duration must be positive");
        Self { factor, mean_gap, mean_duration }
    }
}

/// RNG stream tags (one namespace per event family; per-VM streams pack the
/// VM index above the tag).
const STREAM_CRASH: u64 = 1;
const STREAM_BOOT: u64 = 2;
const STREAM_DEGRADE: u64 = 3;

/// Complete fault-injection configuration: one master seed plus up to three
/// event families. Families left `None` inject nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Master seed; per-family, per-VM streams are derived from it via
    /// [`stream_seed`].
    pub seed: u64,
    /// Crash-stop VM failures.
    pub crash: Option<CrashModel>,
    /// Transient boot failures.
    pub boot: Option<BootFaultModel>,
    /// Datacenter degradation windows.
    pub degradation: Option<DegradationModel>,
}

impl FaultConfig {
    /// No faults at all — [`crate::simulate`] uses this internally; the
    /// engine behaves bit-identically to the pre-fault simulator.
    pub fn none() -> Self {
        Self { seed: 0, crash: None, boot: None, degradation: None }
    }

    /// An empty config with the given master seed; add families with the
    /// `with_*` builders.
    pub fn new(seed: u64) -> Self {
        Self { seed, crash: None, boot: None, degradation: None }
    }

    /// Enable crash-stop VM failures.
    pub fn with_crash(mut self, crash: CrashModel) -> Self {
        self.crash = Some(crash);
        self
    }

    /// Enable transient boot failures.
    pub fn with_boot(mut self, boot: BootFaultModel) -> Self {
        self.boot = Some(boot);
        self
    }

    /// Enable datacenter degradation windows.
    pub fn with_degradation(mut self, d: DegradationModel) -> Self {
        self.degradation = Some(d);
        self
    }

    /// Same families, different master seed (per-epoch reseeding during
    /// recovery).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// True when no event family is configured.
    pub fn is_none(&self) -> bool {
        self.crash.is_none() && self.boot.is_none() && self.degradation.is_none()
    }

    /// The crash-TTF stream of VM `vm`.
    pub(crate) fn crash_rng(&self, vm: usize) -> StdRng {
        let vm = u64::try_from(vm).unwrap_or(u64::MAX >> 2);
        StdRng::seed_from_u64(stream_seed(self.seed, (vm << 2) | STREAM_CRASH))
    }

    /// The boot-attempt stream of VM `vm`.
    pub(crate) fn boot_rng(&self, vm: usize) -> StdRng {
        let vm = u64::try_from(vm).unwrap_or(u64::MAX >> 2);
        StdRng::seed_from_u64(stream_seed(self.seed, (vm << 2) | STREAM_BOOT))
    }

    /// The (single) degradation-window stream.
    pub(crate) fn degrade_rng(&self) -> StdRng {
        StdRng::seed_from_u64(stream_seed(self.seed, STREAM_DEGRADE))
    }
}

/// Counters accumulated by one faulted simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Crash-stop failures that hit a VM with work left.
    pub crashes: usize,
    /// Tasks whose in-flight computation was lost to a crash.
    pub tasks_lost: usize,
    /// Failed boot attempts that were retried.
    pub boot_retries: usize,
    /// Instances abandoned after exhausting boot retries.
    pub boot_abandoned: usize,
    /// Degradation windows that overlapped live work.
    pub degradation_windows: usize,
    /// Total seconds spent inside degradation windows.
    pub degraded_seconds: f64,
    /// Compute seconds lost in flight to crashes.
    pub wasted_compute_seconds: f64,
    /// Billed seconds after a crashed VM's last completed activity — paid
    /// for (Eq. 1) but productive of nothing durable.
    pub wasted_billed_seconds: f64,
}

impl FaultStats {
    /// Accumulate another run's counters (recovery aggregates epochs).
    pub fn merge(&mut self, other: &FaultStats) {
        self.crashes += other.crashes;
        self.tasks_lost += other.tasks_lost;
        self.boot_retries += other.boot_retries;
        self.boot_abandoned += other.boot_abandoned;
        self.degradation_windows += other.degradation_windows;
        self.degraded_seconds += other.degraded_seconds;
        self.wasted_compute_seconds += other.wasted_compute_seconds;
        self.wasted_billed_seconds += other.wasted_billed_seconds;
    }
}

/// Outcome of one faulted simulation: the (possibly partial) execution
/// report plus everything the recovery layer needs to re-plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRun {
    /// Execution report; with faults it may cover only part of the
    /// workflow (records of tasks that never ran are zeroed).
    pub report: SimulationReport,
    /// Injected-fault counters.
    pub stats: FaultStats,
    /// Per task: computation finished during this run.
    pub finished: Vec<bool>,
    /// Per task: *durably* complete — computation finished AND every output
    /// needed later is safe at the datacenter (data on a VM is volatile;
    /// only uploaded bytes survive the epoch). Only durable tasks may be
    /// dropped from the residual DAG when re-planning.
    pub durable: Vec<bool>,
    /// Per VM: actual boot delay (base delay plus fault retries); `None`
    /// for VMs that were never booked or whose boot was abandoned.
    pub boot_delays: Vec<Option<f64>>,
    /// True when every task is durably complete.
    pub complete: bool,
}

impl FaultRun {
    /// Ids of the tasks that are not durably complete (the residual DAG).
    pub fn unfinished(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.durable
            .iter()
            .enumerate()
            .filter(|(_, &d)| !d)
            .map(|(i, _)| TaskId(u32::try_from(i).unwrap_or(u32::MAX)))
    }

    /// The lint context describing which invariants were fault-truncated
    /// (pass to [`crate::lint::plan_lint_faulted`]).
    pub fn lint_context(&self) -> FaultLintContext<'_> {
        FaultLintContext { finished: &self.finished, boot_delays: &self.boot_delays }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;

    #[test]
    fn stream_seed_decorrelates() {
        let a = stream_seed(1, 0);
        let b = stream_seed(1, 1);
        let c = stream_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Deterministic.
        assert_eq!(a, stream_seed(1, 0));
    }

    #[test]
    fn exponential_sample_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mean = 500.0;
        let avg: f64 = (0..n).map(|_| sample_exponential(mean, &mut rng)).sum::<f64>() / n as f64;
        assert!((avg - mean).abs() < mean * 0.02, "avg {avg}");
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let m = CrashModel::weibull(300.0, 1.0);
        let e = CrashModel::exponential(300.0);
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(m.sample_ttf(0, &mut r1), e.sample_ttf(0, &mut r2));
        }
    }

    #[test]
    fn infinite_mtbf_never_crashes() {
        let m = CrashModel::exponential(f64::INFINITY);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(m.sample_ttf(2, &mut rng).is_infinite());
        }
    }

    #[test]
    fn category_factor_scales_ttf() {
        let m = CrashModel::exponential(100.0).with_category_factor(2.0);
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        let t0 = m.sample_ttf(0, &mut r1);
        let t1 = m.sample_ttf(1, &mut r2);
        assert!((t1 - 2.0 * t0).abs() < 1e-9, "t0 {t0} t1 {t1}");
    }

    #[test]
    fn config_builders_compose() {
        let f = FaultConfig::new(9)
            .with_crash(CrashModel::exponential(1000.0))
            .with_boot(BootFaultModel::new(0.1, 3).with_backoff(1.5))
            .with_degradation(DegradationModel::new(0.25, 600.0, 60.0));
        assert!(!f.is_none());
        assert_eq!(f.with_seed(11).seed, 11);
        assert!(FaultConfig::none().is_none());
    }

    #[test]
    fn stats_merge_adds_everything() {
        let mut a = FaultStats { crashes: 1, wasted_billed_seconds: 2.0, ..Default::default() };
        let b = FaultStats { crashes: 2, boot_retries: 3, wasted_billed_seconds: 0.5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.crashes, 3);
        assert_eq!(a.boot_retries, 3);
        assert_eq!(a.wasted_billed_seconds, 2.5);
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1)")]
    fn certain_boot_failure_rejected() {
        BootFaultModel::new(1.0, 3);
    }

    #[test]
    #[should_panic(expected = "factor must be in (0, 1]")]
    fn zero_degradation_factor_rejected() {
        DegradationModel::new(0.0, 10.0, 10.0);
    }
}
