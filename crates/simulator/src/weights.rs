//! Task weight realization: deterministic planning estimates or Gaussian
//! samples (paper §III-A: weights follow `N(w̄, σ)`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wfs_workflow::Workflow;

/// How task weights are realized during a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightModel {
    /// Every task takes exactly its mean weight `w̄`.
    Mean,
    /// Every task takes its conservative weight `w̄ + σ` — what the
    /// budget-aware algorithms plan with, and what HEFTBUDG+'s internal
    /// `simulate()` evaluates (paper Alg. 5).
    Conservative,
    /// Weights drawn from `N(w̄, σ)`, truncated below at a small positive
    /// floor; the seed makes runs reproducible.
    Stochastic {
        /// RNG seed; one stream for the whole workflow, consumed in task-id
        /// order.
        seed: u64,
    },
    /// Weights drawn from a log-normal matched to each task's `(w̄, σ)` —
    /// same first two moments as [`WeightModel::Stochastic`] but with a
    /// heavy right tail (stragglers). An extension beyond the paper's
    /// Gaussian assumption, used to study the online re-scheduling of §VI:
    /// interrupting a straggler only pays when long durations signal *more*
    /// work remaining, which thin Gaussian tails never do.
    HeavyTail {
        /// RNG seed, consumed in task-id order.
        seed: u64,
    },
}

/// Fraction of the mean used as the truncation floor for Gaussian samples
/// (a task cannot have negative or zero work).
const TRUNCATION_FLOOR: f64 = 0.01;

/// Realize the weight of every task under the given model. Index = task id.
pub fn realize_weights(wf: &Workflow, model: WeightModel) -> Vec<f64> {
    match model {
        WeightModel::Mean => wf.tasks().iter().map(|t| t.weight.mean).collect(),
        WeightModel::Conservative => {
            wf.tasks().iter().map(|t| t.weight.conservative()).collect()
        }
        WeightModel::Stochastic { seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            wf.tasks()
                .iter()
                .map(|t| {
                    let z = sample_standard_normal(&mut rng);
                    let w = t.weight.mean + t.weight.std_dev * z;
                    w.max(t.weight.mean * TRUNCATION_FLOOR)
                })
                .collect()
        }
        WeightModel::HeavyTail { seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            wf.tasks()
                .iter()
                .map(|t| {
                    // Log-normal with the task's mean and std dev:
                    // s² = ln(1 + (σ/w̄)²), μ = ln(w̄) − s²/2.
                    let cv2 = (t.weight.std_dev / t.weight.mean).powi(2);
                    let s2 = (1.0 + cv2).ln();
                    let mu = t.weight.mean.ln() - s2 / 2.0;
                    let z = sample_standard_normal(&mut rng);
                    (mu + s2.sqrt() * z).exp().max(t.weight.mean * TRUNCATION_FLOOR)
                })
                .collect()
        }
    }
}

/// One standard-normal sample via the Box–Muller transform (we avoid the
/// `rand_distr` dependency; see DESIGN.md §6).
pub fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    // u1 in (0, 1] so ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use wfs_workflow::gen::bag_of_tasks;
    use wfs_workflow::{StochasticWeight, WorkflowBuilder};

    fn wf_with_sigma(n: usize, mean: f64, sigma: f64) -> Workflow {
        let mut b = WorkflowBuilder::new("w");
        for i in 0..n {
            b.add_task(format!("t{i}"), StochasticWeight::new(mean, sigma));
        }
        b.build().unwrap()
    }

    #[test]
    fn mean_model_returns_means() {
        let wf = wf_with_sigma(3, 100.0, 25.0);
        assert_eq!(realize_weights(&wf, WeightModel::Mean), vec![100.0; 3]);
    }

    #[test]
    fn conservative_model_adds_sigma() {
        let wf = wf_with_sigma(3, 100.0, 25.0);
        assert_eq!(realize_weights(&wf, WeightModel::Conservative), vec![125.0; 3]);
    }

    #[test]
    fn stochastic_is_deterministic_per_seed() {
        let wf = wf_with_sigma(10, 100.0, 30.0);
        let a = realize_weights(&wf, WeightModel::Stochastic { seed: 42 });
        let b = realize_weights(&wf, WeightModel::Stochastic { seed: 42 });
        let c = realize_weights(&wf, WeightModel::Stochastic { seed: 43 });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn stochastic_with_zero_sigma_is_mean() {
        let wf = wf_with_sigma(5, 100.0, 0.0);
        let w = realize_weights(&wf, WeightModel::Stochastic { seed: 7 });
        assert!(w.iter().all(|&x| (x - 100.0).abs() < 1e-12));
    }

    #[test]
    fn samples_are_always_positive() {
        // Even with σ = mean (the paper's most extreme setting), truncation
        // keeps weights positive.
        let wf = wf_with_sigma(2000, 50.0, 50.0);
        for seed in 0..5 {
            let w = realize_weights(&wf, WeightModel::Stochastic { seed });
            assert!(w.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn sample_statistics_match_gaussian() {
        // Empirical mean/std of Box–Muller over many draws.
        let mut rng = StdRng::seed_from_u64(123);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn heavy_tail_matches_mean_and_is_skewed() {
        let wf = wf_with_sigma(20_000, 100.0, 100.0);
        let w = realize_weights(&wf, WeightModel::HeavyTail { seed: 3 });
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        assert!((mean - 100.0).abs() < 3.0, "mean {mean}");
        // Heavy right tail: the max sample dwarfs anything a Gaussian with
        // the same moments produces; the median sits below the mean.
        let gauss = realize_weights(&wf, WeightModel::Stochastic { seed: 3 });
        let max_ht = w.iter().cloned().fold(f64::MIN, f64::max);
        let max_g = gauss.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max_ht > max_g, "heavy tail max {max_ht} <= gaussian max {max_g}");
        let mut sorted = w.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        assert!(median < mean, "median {median} not below mean {mean}");
    }

    #[test]
    fn heavy_tail_deterministic_per_seed() {
        let wf = wf_with_sigma(50, 100.0, 50.0);
        let a = realize_weights(&wf, WeightModel::HeavyTail { seed: 9 });
        let b = realize_weights(&wf, WeightModel::HeavyTail { seed: 9 });
        assert_eq!(a, b);
    }

    #[test]
    fn realized_weights_track_task_means() {
        // Average realized weight over seeds approaches the task mean.
        let wf = bag_of_tasks(1, 100.0, 0.0);
        let wf = {
            // give it sigma 20
            let mut b = WorkflowBuilder::new("x");
            b.add_task("t", StochasticWeight::new(100.0, 20.0));
            let _ = wf;
            b.build().unwrap()
        };
        let reps = 4000;
        let avg: f64 = (0..reps)
            .map(|s| realize_weights(&wf, WeightModel::Stochastic { seed: s })[0])
            .sum::<f64>()
            / reps as f64;
        assert!((avg - 100.0).abs() < 1.5, "avg {avg}");
    }
}
