//! Simulator-crate integration tests through the public API only:
//! billing policies, weight models, finite capacity, metrics and exports.

// Helper fns in integration-test files miss the tests-only exemption.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]

use wfs_platform::{BillingPolicy, CategoryId, Datacenter, Platform, VmCategory};
use wfs_simulator::{
    metrics::metrics, realize_weights, simulate, svg, Schedule, SimConfig, WeightModel,
};
use wfs_workflow::gen::{chain, fork_join, montage, GenConfig};
use wfs_workflow::Workflow;

fn single_vm(wf: &Workflow, cat: CategoryId) -> Schedule {
    let mut s = Schedule::new(wf.task_count());
    let vm = s.add_vm(cat);
    for &t in wf.topological_order() {
        s.assign(t, vm);
    }
    s
}

#[test]
fn per_hour_billing_rounds_to_whole_hours() {
    let wf = chain(1, 100.0, 0.0); // 10 s on a 10 Gflop/s VM
    let p = Platform::paper_default().with_billing(BillingPolicy::PerHour);
    let r = simulate(&wf, &p, &single_vm(&wf, CategoryId(0)), &SimConfig::planning()).unwrap();
    // Charged a full hour at $0.05 plus the init cost.
    assert!((r.vm_cost - (0.05 + 0.0001)).abs() < 1e-9, "vm cost {}", r.vm_cost);
}

#[test]
fn heavy_tail_model_runs_through_the_engine() {
    let wf = montage(GenConfig::new(30, 1));
    let p = Platform::paper_default();
    let s = single_vm(&wf, CategoryId(1));
    let g = simulate(&wf, &p, &s, &SimConfig::new(WeightModel::Stochastic { seed: 3 })).unwrap();
    let h = simulate(&wf, &p, &s, &SimConfig::new(WeightModel::HeavyTail { seed: 3 })).unwrap();
    assert_ne!(g.makespan, h.makespan);
    // Realized weights in the report match the model's samples.
    let expected = realize_weights(&wf, WeightModel::HeavyTail { seed: 3 });
    for t in &h.tasks {
        assert!((t.realized_weight - expected[t.task.index()]).abs() < 1e-9);
    }
}

#[test]
fn finite_capacity_interpolates_between_serial_and_parallel() {
    // Capacity sweep: makespan is monotone non-increasing in capacity.
    let wf = fork_join(6, 50.0, 50e6);
    let p = Platform::paper_default();
    let mut s = Schedule::new(wf.task_count());
    let hub = s.add_vm(CategoryId(1));
    s.assign(wfs_workflow::TaskId(0), hub);
    for i in 1..=6 {
        let vm = s.add_vm(CategoryId(1));
        s.assign(wfs_workflow::TaskId(i as u32), vm);
    }
    s.assign(wfs_workflow::TaskId(7), hub);
    let link = p.datacenter.bandwidth;
    let mut prev = f64::INFINITY;
    for caps in [0.5, 1.0, 2.0, 4.0, 100.0] {
        let cfg = SimConfig::planning().with_dc_capacity(caps * link);
        let mk = simulate(&wf, &p, &s, &cfg).unwrap().makespan;
        assert!(mk <= prev + 1e-6, "makespan rose with capacity: {mk} > {prev}");
        prev = mk;
    }
}

#[test]
fn svg_and_csv_exports_cover_all_tasks() {
    let wf = montage(GenConfig::new(30, 1));
    let p = Platform::paper_default();
    let r = simulate(&wf, &p, &single_vm(&wf, CategoryId(0)), &SimConfig::stochastic(1)).unwrap();
    let drawing = svg::to_svg(&r, svg::SvgOptions::default());
    assert_eq!(drawing.matches("<title>").count(), wf.task_count());
    let csv = r.tasks_csv();
    assert_eq!(csv.lines().count(), wf.task_count() + 1);
}

#[test]
fn metrics_distinguish_serial_from_parallel_schedules() {
    let wf = montage(GenConfig::new(60, 1));
    let p = Platform::paper_default();
    let serial = simulate(&wf, &p, &single_vm(&wf, CategoryId(1)), &SimConfig::planning()).unwrap();
    // One VM per entry task + shared VM for the rest (topological split).
    let m_serial = metrics(&serial);
    assert!(m_serial.peak_parallelism == 1);
    assert!(m_serial.utilization > 0.8);
}

#[test]
fn cheaper_billing_policies_never_cost_more_end_to_end() {
    let wf = montage(GenConfig::new(30, 4));
    let base = Platform::paper_default();
    let s = single_vm(&wf, CategoryId(2));
    let cost = |b: BillingPolicy| {
        let p = Platform::paper_default().with_billing(b);
        simulate(&wf, &p, &s, &SimConfig::stochastic(2)).unwrap().total_cost
    };
    let _ = base;
    assert!(cost(BillingPolicy::Continuous) <= cost(BillingPolicy::PerSecond) + 1e-12);
    assert!(cost(BillingPolicy::PerSecond) <= cost(BillingPolicy::PerHour) + 1e-12);
}

#[test]
fn extreme_bandwidths_behave() {
    let wf = chain(3, 100.0, 10e6);
    // Very slow network: transfers dominate.
    let slow = Platform::new(
        vec![VmCategory::new("u", 10.0, 0.05, 0.0, 0.0)],
        Datacenter::new(1e5, 0.0, 0.0),
    );
    // Very fast network: compute dominates.
    let fast = Platform::new(
        vec![VmCategory::new("u", 10.0, 0.05, 0.0, 0.0)],
        Datacenter::new(1e12, 0.0, 0.0),
    );
    let mk = |p: &Platform| {
        simulate(&wf, p, &single_vm(&wf, CategoryId(0)), &SimConfig::planning())
            .unwrap()
            .makespan
    };
    let mk_slow = mk(&slow);
    let mk_fast = mk(&fast);
    // Compute alone: 3 × 10 s (fixed 100 Gflop at 10 Gflop/s).
    assert!((mk_fast - 30.0).abs() < 0.1, "fast {mk_fast}");
    // Slow adds 10 MB in + 10 MB out at 0.1 MB/s = 200 s.
    assert!((mk_slow - 230.0).abs() < 1.0, "slow {mk_slow}");
}
