//! Property tests over the workflow substrate: every generator, every
//! analysis, arbitrary shapes.

use proptest::prelude::*;
use wfs_workflow::analysis::{
    bottom_levels, critical_path, heft_order, level_of, levels, stats, WeightMode,
};
use wfs_workflow::gen::{
    cybershake, epigenomics, layered_random, ligo, montage, sipht, GenConfig, LayeredParams,
};
use wfs_workflow::Workflow;

/// Any benchmark workflow: type × size × seed × σ.
fn arb_benchmark() -> impl Strategy<Value = Workflow> {
    (0usize..5, 12usize..120, 0u64..500, 0.0f64..=1.0).prop_map(|(ty, n, seed, sigma)| {
        let cfg = GenConfig::new(n.max(12), seed).with_sigma_ratio(sigma);
        match ty {
            0 => montage(cfg),
            1 => cybershake(cfg),
            2 => ligo(cfg),
            3 => epigenomics(cfg),
            _ => sipht(cfg),
        }
    })
}

fn arb_layered() -> impl Strategy<Value = Workflow> {
    (1usize..6, 1usize..7, 0.05f64..0.95, 0u64..500).prop_map(|(layers, width, p, seed)| {
        layered_random(
            LayeredParams { layers, width, edge_prob: p, work: 100.0, data: 1e6 },
            GenConfig { tasks: 0, seed, sigma_ratio: 0.5 },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generators always emit valid DAGs with positive weights and
    /// non-negative data, hitting the exact task count.
    #[test]
    fn benchmark_generators_sound(wf in arb_benchmark()) {
        prop_assert!(wf.task_count() >= 12);
        prop_assert_eq!(wf.topological_order().len(), wf.task_count());
        for t in wf.tasks() {
            prop_assert!(t.weight.mean > 0.0);
            prop_assert!(t.weight.std_dev >= 0.0);
            prop_assert!(t.external_input >= 0.0 && t.external_output >= 0.0);
        }
        for e in wf.edges() {
            prop_assert!(e.size >= 0.0);
        }
        // Round-trips through JSON.
        let back = Workflow::from_json(&wf.to_json()).unwrap();
        prop_assert_eq!(back.task_count(), wf.task_count());
    }

    /// Levels partition the tasks; level(t) > level(pred) for every edge.
    #[test]
    fn levels_partition_and_respect_edges(wf in arb_layered()) {
        let lv = levels(&wf);
        let total: usize = lv.iter().map(Vec::len).sum();
        prop_assert_eq!(total, wf.task_count());
        let depth = level_of(&wf);
        for e in wf.edges() {
            prop_assert!(depth[e.from.0 as usize] < depth[e.to.0 as usize]);
        }
        // Tasks within one level are pairwise independent (no direct edge).
        for layer in &lv {
            for e in wf.edges() {
                prop_assert!(
                    !(layer.contains(&e.from) && layer.contains(&e.to)),
                    "edge inside a level"
                );
            }
        }
    }

    /// Bottom levels decrease along edges and exceed the task's own
    /// execution time; the HEFT order is a linear extension.
    #[test]
    fn bottom_levels_sound(wf in arb_benchmark(), speed in 1.0f64..100.0, bw in 1e6f64..1e9) {
        let rank = bottom_levels(&wf, WeightMode::Conservative, speed, bw);
        for t in wf.task_ids() {
            let own = wf.task(t).weight.conservative() / speed;
            prop_assert!(rank[t.0 as usize] >= own - 1e-9);
        }
        for e in wf.edges() {
            prop_assert!(rank[e.from.0 as usize] > rank[e.to.0 as usize]);
        }
        let order = heft_order(&wf, WeightMode::Conservative, speed, bw);
        let mut pos = vec![0usize; wf.task_count()];
        for (i, t) in order.iter().enumerate() {
            pos[t.0 as usize] = i;
        }
        for e in wf.edges() {
            prop_assert!(pos[e.from.0 as usize] < pos[e.to.0 as usize]);
        }
    }

    /// The critical path is a real path from an entry to an exit whose
    /// length matches the maximal bottom level.
    #[test]
    fn critical_path_is_a_real_path(wf in arb_benchmark()) {
        let (path, len) = critical_path(&wf, WeightMode::Mean, 10.0, 125e6);
        prop_assert!(!path.is_empty());
        prop_assert!(wf.predecessors(path[0]).count() == 0, "starts at an entry");
        prop_assert!(wf.successors(*path.last().unwrap()).count() == 0, "ends at an exit");
        for w in path.windows(2) {
            prop_assert!(
                wf.successors(w[0]).any(|s| s == w[1]),
                "consecutive path tasks not connected"
            );
        }
        let rank = bottom_levels(&wf, WeightMode::Mean, 10.0, 125e6);
        let max_entry_rank = wf
            .entry_tasks()
            .map(|t| rank[t.0 as usize])
            .fold(f64::MIN, f64::max);
        prop_assert!((len - max_entry_rank).abs() < 1e-6);
    }

    /// Stats are internally consistent.
    #[test]
    fn stats_consistent(wf in arb_benchmark()) {
        let s = stats(&wf);
        prop_assert_eq!(s.tasks, wf.task_count());
        prop_assert_eq!(s.edges, wf.edge_count());
        prop_assert!(s.width >= 1 && s.width <= s.tasks);
        prop_assert!(s.depth >= 1 && s.depth <= s.tasks);
        prop_assert!(s.entries >= 1 && s.exits >= 1);
        prop_assert!(s.width * s.depth >= s.tasks, "width*depth bounds tasks");
        prop_assert!((s.total_work - wf.total_mean_work()).abs() < 1e-6);
    }

    /// σ re-scaling is idempotent in distribution parameters.
    #[test]
    fn sigma_rescale(wf in arb_benchmark(), r in 0.0f64..=1.0) {
        let scaled = wf.clone().with_sigma_ratio(r);
        for (a, b) in wf.tasks().iter().zip(scaled.tasks()) {
            prop_assert_eq!(a.weight.mean, b.weight.mean);
            prop_assert!((b.weight.std_dev - r * b.weight.mean).abs() < 1e-9);
        }
    }
}
