//! Randomized invariant tests over the workflow substrate: every
//! generator, every analysis, arbitrary shapes.
//!
//! Formerly proptest-based; now plain seeded loops so the suite builds
//! offline. Each test draws its cases from a fixed-seed `StdRng`, so
//! failures are reproducible by case index.

// Helper fns in integration-test files miss the tests-only exemption.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wfs_workflow::analysis::{
    bottom_levels, critical_path, heft_order, level_of, levels, stats, WeightMode,
};
use wfs_workflow::gen::{
    cybershake, epigenomics, layered_random, ligo, montage, sipht, GenConfig, LayeredParams,
};
use wfs_workflow::Workflow;

const CASES: u64 = 48;

/// Any benchmark workflow: type × size × seed × σ.
fn random_benchmark(rng: &mut StdRng) -> Workflow {
    let ty = rng.gen_range(0..5usize);
    let n = rng.gen_range(12..120usize);
    let cfg = GenConfig::new(n, rng.gen_range(0..500u64))
        .with_sigma_ratio(rng.gen_range(0.0..=1.0f64));
    match ty {
        0 => montage(cfg),
        1 => cybershake(cfg),
        2 => ligo(cfg),
        3 => epigenomics(cfg),
        _ => sipht(cfg),
    }
}

fn random_layered(rng: &mut StdRng) -> Workflow {
    layered_random(
        LayeredParams {
            layers: rng.gen_range(1..6usize),
            width: rng.gen_range(1..7usize),
            edge_prob: rng.gen_range(0.05..0.95f64),
            work: 100.0,
            data: 1e6,
        },
        GenConfig {
            tasks: 0,
            seed: rng.gen_range(0..500u64),
            sigma_ratio: 0.5,
        },
    )
}

/// Generators always emit valid DAGs with positive weights and
/// non-negative data, hitting the exact task count.
#[test]
fn benchmark_generators_sound() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD00D_0001 + case);
        let wf = random_benchmark(&mut rng);
        assert!(wf.task_count() >= 12, "case {case}");
        assert_eq!(wf.topological_order().len(), wf.task_count(), "case {case}");
        for t in wf.tasks() {
            assert!(t.weight.mean > 0.0, "case {case}");
            assert!(t.weight.std_dev >= 0.0, "case {case}");
            assert!(
                t.external_input >= 0.0 && t.external_output >= 0.0,
                "case {case}"
            );
        }
        for e in wf.edges() {
            assert!(e.size >= 0.0, "case {case}");
        }
        // Round-trips through JSON.
        let back = Workflow::from_json(&wf.to_json()).unwrap();
        assert_eq!(back.task_count(), wf.task_count(), "case {case}");
    }
}

/// Levels partition the tasks; level(t) > level(pred) for every edge.
#[test]
fn levels_partition_and_respect_edges() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD00D_0002 + case);
        let wf = random_layered(&mut rng);
        let lv = levels(&wf);
        let total: usize = lv.iter().map(Vec::len).sum();
        assert_eq!(total, wf.task_count(), "case {case}");
        let depth = level_of(&wf);
        for e in wf.edges() {
            assert!(
                depth[e.from.0 as usize] < depth[e.to.0 as usize],
                "case {case}"
            );
        }
        // Tasks within one level are pairwise independent (no direct edge).
        for layer in &lv {
            for e in wf.edges() {
                assert!(
                    !(layer.contains(&e.from) && layer.contains(&e.to)),
                    "case {case}: edge inside a level"
                );
            }
        }
    }
}

/// Bottom levels decrease along edges and exceed the task's own
/// execution time; the HEFT order is a linear extension.
#[test]
fn bottom_levels_sound() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD00D_0003 + case);
        let wf = random_benchmark(&mut rng);
        let speed = rng.gen_range(1.0..100.0f64);
        let bw = rng.gen_range(1e6..1e9f64);
        let rank = bottom_levels(&wf, WeightMode::Conservative, speed, bw);
        for t in wf.task_ids() {
            let own = wf.task(t).weight.conservative() / speed;
            assert!(rank[t.0 as usize] >= own - 1e-9, "case {case}");
        }
        for e in wf.edges() {
            assert!(
                rank[e.from.0 as usize] > rank[e.to.0 as usize],
                "case {case}"
            );
        }
        let order = heft_order(&wf, WeightMode::Conservative, speed, bw);
        let mut pos = vec![0usize; wf.task_count()];
        for (i, t) in order.iter().enumerate() {
            pos[t.0 as usize] = i;
        }
        for e in wf.edges() {
            assert!(
                pos[e.from.0 as usize] < pos[e.to.0 as usize],
                "case {case}"
            );
        }
    }
}

/// The critical path is a real path from an entry to an exit whose
/// length matches the maximal bottom level.
#[test]
fn critical_path_is_a_real_path() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD00D_0004 + case);
        let wf = random_benchmark(&mut rng);
        let (path, len) = critical_path(&wf, WeightMode::Mean, 10.0, 125e6);
        assert!(!path.is_empty(), "case {case}");
        assert!(
            wf.predecessors(path[0]).count() == 0,
            "case {case}: starts at an entry"
        );
        assert!(
            wf.successors(*path.last().unwrap()).count() == 0,
            "case {case}: ends at an exit"
        );
        for w in path.windows(2) {
            assert!(
                wf.successors(w[0]).any(|s| s == w[1]),
                "case {case}: consecutive path tasks not connected"
            );
        }
        let rank = bottom_levels(&wf, WeightMode::Mean, 10.0, 125e6);
        let max_entry_rank = wf
            .entry_tasks()
            .map(|t| rank[t.0 as usize])
            .fold(f64::MIN, f64::max);
        assert!((len - max_entry_rank).abs() < 1e-6, "case {case}");
    }
}

/// Stats are internally consistent.
#[test]
fn stats_consistent() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD00D_0005 + case);
        let wf = random_benchmark(&mut rng);
        let s = stats(&wf);
        assert_eq!(s.tasks, wf.task_count(), "case {case}");
        assert_eq!(s.edges, wf.edge_count(), "case {case}");
        assert!(s.width >= 1 && s.width <= s.tasks, "case {case}");
        assert!(s.depth >= 1 && s.depth <= s.tasks, "case {case}");
        assert!(s.entries >= 1 && s.exits >= 1, "case {case}");
        assert!(s.width * s.depth >= s.tasks, "case {case}: width*depth bounds tasks");
        assert!((s.total_work - wf.total_mean_work()).abs() < 1e-6, "case {case}");
    }
}

/// σ re-scaling is idempotent in distribution parameters.
#[test]
fn sigma_rescale() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD00D_0006 + case);
        let wf = random_benchmark(&mut rng);
        let r = rng.gen_range(0.0..=1.0f64);
        let scaled = wf.clone().with_sigma_ratio(r);
        for (a, b) in wf.tasks().iter().zip(scaled.tasks()) {
            assert_eq!(a.weight.mean, b.weight.mean, "case {case}");
            assert!(
                (b.weight.std_dev - r * b.weight.mean).abs() < 1e-9,
                "case {case}"
            );
        }
    }
}
