//! Tasks and their stochastic weights.

use serde::{Deserialize, Serialize};

/// Index of a task inside a [`crate::Workflow`].
///
/// `TaskId`s are dense: a workflow with `n` tasks uses ids `0..n`, so they
/// double as indices into per-task vectors kept by schedulers and simulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// The stochastic weight of a task: the number of instructions it executes,
/// modelled as a Gaussian `N(mean, std_dev)` (paper §III-A).
///
/// Weights are expressed in abstract work units (we use Gflop); dividing by a
/// VM speed (work units per second) yields an execution time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StochasticWeight {
    /// Mean number of instructions `w̄` (> 0).
    pub mean: f64,
    /// Standard deviation `σ` (>= 0).
    pub std_dev: f64,
}

impl StochasticWeight {
    /// A new stochastic weight. Panics if `mean <= 0` or `std_dev < 0` or
    /// either is non-finite — weights are produced by generators, so a bad
    /// value is a programming error, not an input error.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "task weight mean must be positive, got {mean}");
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "task weight std dev must be non-negative, got {std_dev}"
        );
        Self { mean, std_dev }
    }

    /// A deterministic weight (σ = 0).
    pub fn fixed(mean: f64) -> Self {
        Self::new(mean, 0.0)
    }

    /// The conservative estimate `w̄ + σ` the budget-aware algorithms plan
    /// with (paper §IV-A): low risk of under-estimation, accurate for most
    /// executions.
    #[inline]
    pub fn conservative(&self) -> f64 {
        self.mean + self.std_dev
    }

    /// Scale the deviation to `ratio * mean` (the paper sweeps σ over
    /// 25/50/75/100% of the mean).
    pub fn with_sigma_ratio(self, ratio: f64) -> Self {
        Self::new(self.mean, self.mean * ratio)
    }
}

/// A workflow task: a non-preemptive unit of computation that runs on a
/// single processor (paper §III-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Dense id within the owning workflow.
    pub id: TaskId,
    /// Human-readable name, e.g. `mProjectPP_3` (used in traces and DOT).
    pub name: String,
    /// Stochastic instruction count.
    pub weight: StochasticWeight,
    /// Bytes of input this task reads from the outside world via the
    /// datacenter (`d_in,DC` in Eq. 2). Non-zero only for entry tasks.
    pub external_input: f64,
    /// Bytes of output this task ships to the outside world via the
    /// datacenter (`d_DC,out` in Eq. 2). Non-zero only for exit tasks.
    pub external_output: f64,
}

impl Task {
    /// A task with no external I/O.
    pub fn new(id: TaskId, name: impl Into<String>, weight: StochasticWeight) -> Self {
        Self { id, name: name.into(), weight, external_input: 0.0, external_output: 0.0 }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;

    #[test]
    fn conservative_adds_one_sigma() {
        let w = StochasticWeight::new(100.0, 25.0);
        assert_eq!(w.conservative(), 125.0);
    }

    #[test]
    fn fixed_weight_has_zero_sigma() {
        let w = StochasticWeight::fixed(10.0);
        assert_eq!(w.std_dev, 0.0);
        assert_eq!(w.conservative(), 10.0);
    }

    #[test]
    fn sigma_ratio_rescales_deviation() {
        let w = StochasticWeight::new(200.0, 10.0).with_sigma_ratio(0.5);
        assert_eq!(w.mean, 200.0);
        assert_eq!(w.std_dev, 100.0);
    }

    #[test]
    #[should_panic(expected = "mean must be positive")]
    fn zero_mean_rejected() {
        StochasticWeight::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "std dev must be non-negative")]
    fn negative_sigma_rejected() {
        StochasticWeight::new(1.0, -0.5);
    }

    #[test]
    fn task_id_display_and_index() {
        let id = TaskId(7);
        assert_eq!(id.to_string(), "T7");
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn serde_roundtrip() {
        let t = Task::new(TaskId(3), "mAdd", StochasticWeight::new(5.0, 1.0));
        let json = serde_json::to_string(&t).unwrap();
        let back: Task = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
