//! # wfs-workflow — scientific workflow DAGs with stochastic task weights
//!
//! Substrate crate of the budget-aware scheduling reproduction (Caniou,
//! Caron, Kong Win Chang, Robert — IPDPSW 2018). A workflow is a DAG whose
//! tasks carry Gaussian instruction counts `N(w̄, σ)` and whose edges carry
//! data-transfer sizes (paper §III-A).
//!
//! What lives here:
//! - [`Workflow`] / [`WorkflowBuilder`]: the validated DAG and its builder;
//! - [`analysis`]: BFS levels (BDT), bottom levels & HEFT priority order,
//!   critical path, shape statistics;
//! - [`gen`]: Pegasus-style benchmark generators (CYBERSHAKE / LIGO /
//!   MONTAGE, plus EPIGENOMICS, SIPHT and synthetic shapes);
//! - [`dot`]: Graphviz export; [`dax`]: Pegasus DAX import/export;
//!   JSON (de)serialization on [`Workflow`] itself.
//!
//! ```
//! use wfs_workflow::gen::{montage, GenConfig};
//! use wfs_workflow::analysis::{stats, heft_order, WeightMode};
//!
//! let wf = montage(GenConfig::new(30, 1));
//! assert_eq!(wf.task_count(), 30);
//! let order = heft_order(&wf, WeightMode::Conservative, 20.0e9, 125.0e6);
//! assert_eq!(order.len(), 30);
//! println!("{:?}", stats(&wf));
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod dax;
pub mod dot;
pub mod gen;
mod graph;
mod ord;
mod task;

pub use graph::{Edge, EdgeId, Workflow, WorkflowBuilder, WorkflowError};
pub use ord::OrdF64;
pub use task::{StochasticWeight, Task, TaskId};
