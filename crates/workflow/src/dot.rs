//! Graphviz DOT export for workflows (handy for eyeballing generated DAGs).

use crate::graph::Workflow;

/// Render the workflow as a Graphviz `digraph`. Node labels carry the task
/// name and mean weight; edge labels carry the transferred megabytes.
pub fn to_dot(wf: &Workflow) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(64 * wf.task_count());
    let _ = writeln!(s, "digraph \"{}\" {{", wf.name);
    let _ = writeln!(s, "  rankdir=TB;");
    for t in wf.tasks() {
        let _ = writeln!(
            s,
            "  {} [label=\"{}\\n{:.1} Gflop\"];",
            t.id.0, t.name, t.weight.mean
        );
    }
    for e in wf.edges() {
        let _ = writeln!(s, "  {} -> {} [label=\"{:.1} MB\"];", e.from.0, e.to.0, e.size / 1e6);
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use crate::graph::WorkflowBuilder;
    use crate::task::StochasticWeight;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut b = WorkflowBuilder::new("tiny");
        let a = b.add_task("prep", StochasticWeight::fixed(3.0));
        let c = b.add_task("crunch", StochasticWeight::fixed(5.0));
        b.add_edge(a, c, 2e6).unwrap();
        let wf = b.build().unwrap();
        let dot = to_dot(&wf);
        assert!(dot.starts_with("digraph \"tiny\""));
        assert!(dot.contains("prep"));
        assert!(dot.contains("crunch"));
        assert!(dot.contains("0 -> 1"));
        assert!(dot.contains("2.0 MB"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
