//! DAX interchange: read and write the Pegasus DAX (Directed Acyclic graph
//! XML) dialect that the paper's benchmark suite ships in.
//!
//! Only the subset the WorkflowGenerator emits is supported — `<job>`
//! elements with `runtime` and `<uses file=... link=in|output size=...>`
//! children, plus `<child>/<parent>` dependency declarations. Data sizes on
//! edges are recovered the standard way: an edge `(P, C)` carries the bytes
//! of every file `P` lists as *output* and `C` lists as *input*.
//!
//! DAX runtimes are seconds on a reference machine; weights are
//! `runtime × reference_speed`. Standard DAX has no weight variance; the
//! writer emits a non-standard `sigma` attribute (ignored by other tools)
//! which the reader honours when present.
//!
//! The parser is hand-rolled for this subset (attributes in double quotes,
//! no entity support beyond the five predefined ones) to keep the crate
//! dependency-free — see DESIGN.md §6.

use crate::graph::{Workflow, WorkflowBuilder};
use crate::task::StochasticWeight;
use std::collections::HashMap;

/// Errors raised while parsing a DAX document.
#[derive(Debug, Clone, PartialEq)]
pub enum DaxError {
    /// Syntax error with a human-readable description.
    Syntax(String),
    /// A `<child>`/`<parent>` reference names an unknown job id.
    UnknownJob(String),
    /// The resulting graph is not a valid workflow.
    Graph(String),
}

impl std::fmt::Display for DaxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaxError::Syntax(m) => write!(f, "DAX syntax error: {m}"),
            DaxError::UnknownJob(id) => write!(f, "DAX references unknown job `{id}`"),
            DaxError::Graph(m) => write!(f, "DAX graph invalid: {m}"),
        }
    }
}

impl std::error::Error for DaxError {}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn xml_unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Serialize a workflow as a DAX document. `reference_speed` converts
/// weights (work units) into DAX runtimes (seconds): `runtime = w̄/speed`.
pub fn to_dax(wf: &Workflow, reference_speed: f64) -> String {
    assert!(reference_speed > 0.0, "reference speed must be positive");
    use std::fmt::Write;
    let mut s = String::with_capacity(256 * wf.task_count());
    let _ = writeln!(s, r#"<?xml version="1.0" encoding="UTF-8"?>"#);
    let _ = writeln!(
        s,
        r#"<adag xmlns="http://pegasus.isi.edu/schema/DAX" version="2.1" name="{}" jobCount="{}">"#,
        xml_escape(&wf.name),
        wf.task_count()
    );
    for t in wf.tasks() {
        let runtime = t.weight.mean / reference_speed;
        let sigma = t.weight.std_dev / reference_speed;
        let _ = writeln!(
            s,
            r#"  <job id="ID{:05}" name="{}" runtime="{runtime:.6}" sigma="{sigma:.6}">"#,
            t.id.0,
            xml_escape(&t.name)
        );
        if t.external_input > 0.0 {
            let _ = writeln!(
                s,
                r#"    <uses file="ext_in_{}" link="input" size="{:.0}"/>"#,
                t.id.0, t.external_input
            );
        }
        for &e in wf.in_edges(t.id) {
            let edge = wf.edge(e);
            let _ = writeln!(
                s,
                r#"    <uses file="d_{}_{}" link="input" size="{:.0}"/>"#,
                edge.from.0, edge.to.0, edge.size
            );
        }
        for &e in wf.out_edges(t.id) {
            let edge = wf.edge(e);
            let _ = writeln!(
                s,
                r#"    <uses file="d_{}_{}" link="output" size="{:.0}"/>"#,
                edge.from.0, edge.to.0, edge.size
            );
        }
        if t.external_output > 0.0 {
            let _ = writeln!(
                s,
                r#"    <uses file="ext_out_{}" link="output" size="{:.0}"/>"#,
                t.id.0, t.external_output
            );
        }
        let _ = writeln!(s, "  </job>");
    }
    for t in wf.task_ids() {
        let preds: Vec<_> = wf.predecessors(t).collect();
        if preds.is_empty() {
            continue;
        }
        let _ = writeln!(s, r#"  <child ref="ID{:05}">"#, t.0);
        for p in preds {
            let _ = writeln!(s, r#"    <parent ref="ID{:05}"/>"#, p.0);
        }
        let _ = writeln!(s, "  </child>");
    }
    s.push_str("</adag>\n");
    s
}

/// One parsed XML tag: name + attributes (self-closing flag unused by the
/// builder but tracked for well-formedness of `<job>` blocks).
struct Tag {
    name: String,
    attrs: HashMap<String, String>,
    closing: bool,
}

/// Minimal tag scanner: yields tags in order, skipping text/comments/PIs.
fn scan_tags(doc: &str) -> Result<Vec<Tag>, DaxError> {
    let mut tags = Vec::new();
    let bytes = doc.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'<' {
            i += 1;
            continue;
        }
        let rest = &doc[i..];
        if rest.starts_with("<?") {
            i += rest.find("?>").ok_or_else(|| syntax("unterminated <?"))? + 2;
            continue;
        }
        if rest.starts_with("<!--") {
            i += rest.find("-->").ok_or_else(|| syntax("unterminated comment"))? + 3;
            continue;
        }
        let end = rest.find('>').ok_or_else(|| syntax("unterminated tag"))?;
        let inner = &rest[1..end];
        i += end + 1;
        let inner = inner.trim();
        if inner.is_empty() {
            return Err(syntax("empty tag"));
        }
        let closing = inner.starts_with('/');
        let body = inner.trim_start_matches('/').trim_end_matches('/').trim();
        let (name, attr_str) = match body.find(char::is_whitespace) {
            Some(p) => (&body[..p], &body[p..]),
            None => (body, ""),
        };
        let mut attrs = HashMap::new();
        let mut a = attr_str;
        loop {
            a = a.trim_start();
            if a.is_empty() {
                break;
            }
            let eq = match a.find('=') {
                Some(p) => p,
                None => break,
            };
            let key = a[..eq].trim().to_string();
            let after = a[eq + 1..].trim_start();
            if !after.starts_with('"') {
                return Err(syntax(&format!("attribute `{key}` not quoted")));
            }
            let close = after[1..]
                .find('"')
                .ok_or_else(|| syntax(&format!("unterminated value for `{key}`")))?;
            attrs.insert(key, xml_unescape(&after[1..1 + close]));
            a = &after[close + 2..];
        }
        tags.push(Tag { name: name.to_string(), attrs, closing });
    }
    Ok(tags)
}

fn syntax(m: &str) -> DaxError {
    DaxError::Syntax(m.to_string())
}

/// Parse a DAX document into a workflow. `reference_speed` converts
/// runtimes back into work units.
pub fn from_dax(doc: &str, reference_speed: f64) -> Result<Workflow, DaxError> {
    assert!(reference_speed > 0.0, "reference speed must be positive");
    let tags = scan_tags(doc)?;

    struct Job {
        name: String,
        runtime: f64,
        sigma: f64,
        inputs: Vec<(String, f64)>,
        outputs: Vec<(String, f64)>,
    }

    let mut adag_name = String::from("dax");
    let mut jobs: Vec<(String, Job)> = Vec::new();
    let mut deps: Vec<(String, String)> = Vec::new(); // (parent, child)
    let mut current_child: Option<String> = None;
    let mut in_job: Option<usize> = None;

    for tag in &tags {
        match (tag.name.as_str(), tag.closing) {
            ("adag", false) => {
                if let Some(n) = tag.attrs.get("name") {
                    adag_name = n.clone();
                }
            }
            ("job", false) => {
                let id = tag
                    .attrs
                    .get("id")
                    .ok_or_else(|| syntax("job without id"))?
                    .clone();
                let runtime: f64 = tag
                    .attrs
                    .get("runtime")
                    .ok_or_else(|| syntax("job without runtime"))?
                    .parse()
                    .map_err(|_| syntax("bad runtime"))?;
                let sigma: f64 = tag
                    .attrs
                    .get("sigma")
                    .map(|s| s.parse().map_err(|_| syntax("bad sigma")))
                    .transpose()?
                    .unwrap_or(0.0);
                let name = tag.attrs.get("name").cloned().unwrap_or_else(|| id.clone());
                jobs.push((id, Job { name, runtime, sigma, inputs: vec![], outputs: vec![] }));
                in_job = Some(jobs.len() - 1);
            }
            ("job", true) => in_job = None,
            ("uses", false) => {
                let Some(j) = in_job else {
                    return Err(syntax("<uses> outside a <job>"));
                };
                let file = tag
                    .attrs
                    .get("file")
                    .or_else(|| tag.attrs.get("name"))
                    .ok_or_else(|| syntax("<uses> without file"))?
                    .clone();
                let size: f64 = tag
                    .attrs
                    .get("size")
                    .map(|s| s.parse().map_err(|_| syntax("bad size")))
                    .transpose()?
                    .unwrap_or(0.0);
                let link = tag.attrs.get("link").map(String::as_str).unwrap_or("input");
                match link {
                    "output" => jobs[j].1.outputs.push((file, size)),
                    _ => jobs[j].1.inputs.push((file, size)),
                }
            }
            ("child", false) => {
                current_child = Some(
                    tag.attrs
                        .get("ref")
                        .ok_or_else(|| syntax("<child> without ref"))?
                        .clone(),
                );
            }
            ("child", true) => current_child = None,
            ("parent", false) => {
                let child = current_child
                    .clone()
                    .ok_or_else(|| syntax("<parent> outside <child>"))?;
                let parent = tag
                    .attrs
                    .get("ref")
                    .ok_or_else(|| syntax("<parent> without ref"))?
                    .clone();
                deps.push((parent, child));
            }
            _ => {}
        }
    }

    // Build the workflow: job order defines task ids.
    let mut b = WorkflowBuilder::new(adag_name);
    let mut id_of: HashMap<&str, crate::TaskId> = HashMap::new();
    for (id, job) in &jobs {
        let mean = (job.runtime * reference_speed).max(1e-9);
        let sigma = (job.sigma * reference_speed).max(0.0);
        let t = b.add_task(job.name.clone(), StochasticWeight::new(mean, sigma));
        id_of.insert(id.as_str(), t);
    }
    // Edge sizes: files output by the parent and input by the child.
    for (parent, child) in &deps {
        let &pt = id_of
            .get(parent.as_str())
            .ok_or_else(|| DaxError::UnknownJob(parent.clone()))?;
        let &ct = id_of
            .get(child.as_str())
            .ok_or_else(|| DaxError::UnknownJob(child.clone()))?;
        // `id_of` was built from `jobs`, so both lookups must succeed.
        #[allow(clippy::expect_used)] // invariant: id_of keys ⊆ jobs
        let pj = &jobs.iter().find(|(i, _)| i == parent).expect("just resolved").1;
        #[allow(clippy::expect_used)] // invariant: id_of keys ⊆ jobs
        let cj = &jobs.iter().find(|(i, _)| i == child).expect("just resolved").1;
        let size: f64 = pj
            .outputs
            .iter()
            .filter(|(f, _)| cj.inputs.iter().any(|(g, _)| g == f))
            .map(|(_, s)| s)
            .sum();
        b.add_edge(pt, ct, size).map_err(|e| DaxError::Graph(e.to_string()))?;
    }
    // External I/O: inputs no parent produces; outputs no child consumes.
    for (idx, (_, job)) in jobs.iter().enumerate() {
        let t = crate::TaskId(idx as u32);
        let produced_elsewhere = |f: &str| {
            jobs.iter().any(|(_, j)| j.outputs.iter().any(|(g, _)| g == f))
        };
        let consumed_elsewhere = |f: &str| {
            jobs.iter().any(|(_, j)| j.inputs.iter().any(|(g, _)| g == f))
        };
        let ext_in: f64 = job
            .inputs
            .iter()
            .filter(|(f, _)| !produced_elsewhere(f))
            .map(|(_, s)| s)
            .sum();
        let ext_out: f64 = job
            .outputs
            .iter()
            .filter(|(f, _)| !consumed_elsewhere(f))
            .map(|(_, s)| s)
            .sum();
        if ext_in > 0.0 {
            b.set_external_input(t, ext_in);
        }
        if ext_out > 0.0 {
            b.set_external_output(t, ext_out);
        }
    }
    b.build().map_err(|e| DaxError::Graph(e.to_string()))
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use crate::gen::{cybershake, montage, GenConfig};

    const SPEED: f64 = 10.0;

    #[test]
    fn roundtrip_preserves_structure_and_weights() {
        for wf in [montage(GenConfig::new(30, 1)), cybershake(GenConfig::new(30, 2))] {
            let dax = to_dax(&wf, SPEED);
            let back = from_dax(&dax, SPEED).unwrap();
            assert_eq!(back.task_count(), wf.task_count());
            assert_eq!(back.edge_count(), wf.edge_count());
            for (a, b) in wf.tasks().iter().zip(back.tasks()) {
                assert_eq!(a.name, b.name);
                assert!((a.weight.mean - b.weight.mean).abs() < 1e-3, "{}", a.name);
                assert!((a.weight.std_dev - b.weight.std_dev).abs() < 1e-3);
                assert!((a.external_input - b.external_input).abs() < 1.0);
                assert!((a.external_output - b.external_output).abs() < 1.0);
            }
            // Same edge *set* with (approximately) the same sizes — the
            // reader rebuilds edges grouped by child, so order may differ.
            let canon = |w: &Workflow| {
                let mut v: Vec<(u32, u32, i64)> =
                    w.edges().iter().map(|e| (e.from.0, e.to.0, e.size.round() as i64)).collect();
                v.sort_unstable();
                v
            };
            assert_eq!(canon(&wf), canon(&back));
        }
    }

    #[test]
    fn parses_a_hand_written_pegasus_style_dax() {
        let doc = r#"<?xml version="1.0" encoding="UTF-8"?>
<!-- generated by hand -->
<adag xmlns="http://pegasus.isi.edu/schema/DAX" name="mini" jobCount="3">
  <job id="A" name="preprocess" runtime="10.0">
    <uses file="raw.dat" link="input" size="1000000"/>
    <uses file="mid.dat" link="output" size="500000"/>
  </job>
  <job id="B" name="analyze" runtime="20.0">
    <uses file="mid.dat" link="input" size="500000"/>
    <uses file="res.dat" link="output" size="1000"/>
  </job>
  <job id="C" name="archive" runtime="1.5">
    <uses file="res.dat" link="input" size="1000"/>
    <uses file="final.tgz" link="output" size="2000"/>
  </job>
  <child ref="B"><parent ref="A"/></child>
  <child ref="C"><parent ref="B"/></child>
</adag>"#;
        let wf = from_dax(doc, SPEED).unwrap();
        assert_eq!(wf.name, "mini");
        assert_eq!(wf.task_count(), 3);
        assert_eq!(wf.edge_count(), 2);
        assert_eq!(wf.task(crate::TaskId(0)).name, "preprocess");
        assert_eq!(wf.task(crate::TaskId(0)).weight.mean, 100.0); // 10 s × 10
        assert_eq!(wf.task(crate::TaskId(0)).weight.std_dev, 0.0);
        assert_eq!(wf.edges()[0].size, 500000.0);
        assert_eq!(wf.task(crate::TaskId(0)).external_input, 1000000.0);
        assert_eq!(wf.task(crate::TaskId(2)).external_output, 2000.0);
    }

    #[test]
    fn unknown_ref_rejected() {
        let doc = r#"<adag name="x">
  <job id="A" name="a" runtime="1"/>
  <child ref="B"><parent ref="A"/></child>
</adag>"#;
        assert_eq!(from_dax(doc, 1.0).unwrap_err(), DaxError::UnknownJob("B".into()));
    }

    #[test]
    fn cyclic_dax_rejected() {
        let doc = r#"<adag name="x">
  <job id="A" name="a" runtime="1"/>
  <job id="B" name="b" runtime="1"/>
  <child ref="B"><parent ref="A"/></child>
  <child ref="A"><parent ref="B"/></child>
</adag>"#;
        assert!(matches!(from_dax(doc, 1.0).unwrap_err(), DaxError::Graph(_)));
    }

    #[test]
    fn malformed_xml_rejected() {
        assert!(matches!(from_dax("<adag", 1.0), Err(DaxError::Syntax(_))));
        assert!(matches!(
            from_dax(r#"<adag name="x"><job id="A" runtime=bad/></adag>"#, 1.0),
            Err(DaxError::Syntax(_))
        ));
        assert!(matches!(
            from_dax(r#"<adag><uses file="f"/></adag>"#, 1.0),
            Err(DaxError::Syntax(_))
        ));
        // No jobs at all -> empty workflow -> graph error.
        assert!(matches!(from_dax(r#"<adag name="e"></adag>"#, 1.0), Err(DaxError::Graph(_))));
    }

    #[test]
    fn escapes_survive_roundtrip() {
        use crate::{StochasticWeight, WorkflowBuilder};
        let mut b = WorkflowBuilder::new("name <with> \"specials\" & stuff");
        b.add_task("task <1>", StochasticWeight::new(5.0, 1.0));
        let wf = b.build().unwrap();
        let back = from_dax(&to_dax(&wf, 1.0), 1.0).unwrap();
        assert_eq!(back.name, wf.name);
        assert_eq!(back.task(crate::TaskId(0)).name, "task <1>");
    }

    #[test]
    fn comments_and_pis_are_skipped() {
        let doc = r#"<?xml version="1.0"?>
<!-- a comment with <job id="FAKE"> inside -->
<adag name="c"><job id="A" name="a" runtime="2"/></adag>"#;
        let wf = from_dax(doc, 1.0).unwrap();
        assert_eq!(wf.task_count(), 1);
    }
}
