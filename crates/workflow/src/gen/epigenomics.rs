//! EPIGENOMICS generator (extension beyond the paper's three benchmarks).
//!
//! The Pegasus Epigenomics workflow maps DNA methylation: several independent
//! *lanes*, each a deep pipeline `fastQSplit -> {filterContams -> sol2sanger
//! -> fast2bfq -> map}_per_chunk -> mapMerge`, all merging into a global
//! `maqIndex -> pileup` tail. It stresses deep chains with mid-level
//! parallelism — a shape none of the paper's three benchmarks covers, which
//! makes it a useful extra workload for the harness.

use super::{jitter, GenConfig, MB};
use crate::graph::{Workflow, WorkflowBuilder};
use crate::task::StochasticWeight;

/// Minimum tasks: one lane with one chunk (1+4+1) plus the 2 tail tasks.
pub const EPIGENOMICS_MIN_TASKS: usize = 8;

/// Generate an EPIGENOMICS workflow with exactly `cfg.tasks` tasks.
///
/// # Panics
/// If `cfg.tasks < EPIGENOMICS_MIN_TASKS`.
pub fn epigenomics(cfg: GenConfig) -> Workflow {
    assert!(
        cfg.tasks >= EPIGENOMICS_MIN_TASKS,
        "EPIGENOMICS needs at least {EPIGENOMICS_MIN_TASKS} tasks, got {}",
        cfg.tasks
    );
    let mut rng = super::rng_for(&cfg, 0x45504947); // "EPIG"
    let mut b = WorkflowBuilder::new(format!("EPIGENOMICS-{}-s{}", cfg.tasks, cfg.seed));

    let wgt = |rng: &mut _, base: f64| {
        StochasticWeight::new(jitter(rng, base, 0.2), 0.0).with_sigma_ratio(cfg.sigma_ratio)
    };
    let data = |rng: &mut _, base: f64| jitter(rng, base, 0.2);

    // Budget: 2 tail tasks; lanes of (2 + 4*chunks) tasks each.
    let free = cfg.tasks - 2;
    // Prefer ~4 chunks per lane; each lane is 2 + 4*c tasks.
    let lane_size = 2 + 4 * 4;
    let lanes = (free / lane_size).max(1);
    let mut remaining = free;

    let maq_index = b.add_task("maqIndex", wgt(&mut rng, 400.0));
    let pileup = b.add_task("pileup", wgt(&mut rng, 300.0));
    b.connect(maq_index, pileup, data(&mut rng, 30.0 * MB));
    b.set_external_output(pileup, data(&mut rng, 20.0 * MB));

    for lane in 0..lanes {
        let lanes_left = lanes - lane;
        // Keep at least 6 tasks (1 chunk lane) for each later lane.
        let avail = remaining - 6 * (lanes_left - 1);
        let this = if lanes_left == 1 { avail } else { avail.min(lane_size).max(6) };
        remaining -= this;
        // this = 2 + 4c + extra, extra < 4 handled by widening one stage.
        let chunks = (this - 2) / 4;
        let extra = this - 2 - 4 * chunks;

        let split = b.add_task(format!("fastQSplit_{lane}"), wgt(&mut rng, 150.0));
        b.set_external_input(split, data(&mut rng, 100.0 * MB));
        let merge = b.add_task(format!("mapMerge_{lane}"), wgt(&mut rng, 200.0));
        for c in 0..chunks {
            let filter = b.add_task(format!("filterContams_{lane}_{c}"), wgt(&mut rng, 120.0));
            let sol = b.add_task(format!("sol2sanger_{lane}_{c}"), wgt(&mut rng, 60.0));
            let bfq = b.add_task(format!("fast2bfq_{lane}_{c}"), wgt(&mut rng, 60.0));
            let map = b.add_task(format!("map_{lane}_{c}"), wgt(&mut rng, 900.0));
            b.connect(split, filter, data(&mut rng, 25.0 * MB));
            b.connect(filter, sol, data(&mut rng, 25.0 * MB));
            b.connect(sol, bfq, data(&mut rng, 20.0 * MB));
            b.connect(bfq, map, data(&mut rng, 15.0 * MB));
            b.connect(map, merge, data(&mut rng, 10.0 * MB));
        }
        // Spare tasks become extra map chunks hanging off the split directly.
        for x in 0..extra {
            let map = b.add_task(format!("map_{lane}_x{x}"), wgt(&mut rng, 900.0));
            b.connect(split, map, data(&mut rng, 25.0 * MB));
            b.connect(map, merge, data(&mut rng, 10.0 * MB));
        }
        b.connect(merge, maq_index, data(&mut rng, 30.0 * MB));
    }
    debug_assert_eq!(remaining, 0);

    let wf = b.build_valid();
    debug_assert_eq!(wf.task_count(), cfg.tasks);
    wf
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use crate::analysis::{levels, stats};

    #[test]
    fn exact_task_count_across_sizes() {
        for n in [8, 9, 20, 30, 60, 90, 100] {
            assert_eq!(epigenomics(GenConfig::new(n, 2)).task_count(), n, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn too_small_rejected() {
        epigenomics(GenConfig::new(7, 1));
    }

    #[test]
    fn deep_pipeline() {
        // split -> filter -> sol -> bfq -> map -> merge -> maqIndex ->
        // pileup = 8 levels.
        let wf = epigenomics(GenConfig::new(90, 1));
        assert_eq!(levels(&wf).len(), 8);
    }

    #[test]
    fn single_exit_pileup() {
        let wf = epigenomics(GenConfig::new(60, 1));
        let exits: Vec<_> = wf.exit_tasks().collect();
        assert_eq!(exits.len(), 1);
        assert_eq!(wf.task(exits[0]).name, "pileup");
    }

    #[test]
    fn deeper_than_cybershake() {
        let e = stats(&epigenomics(GenConfig::new(90, 1)));
        let c = stats(&super::super::cybershake(GenConfig::new(90, 1)));
        assert!(e.depth > c.depth);
    }
}
