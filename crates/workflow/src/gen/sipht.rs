//! SIPHT generator (extension beyond the paper's three benchmarks).
//!
//! The Pegasus SIPHT workflow (sRNA identification) is wide and shallow
//! with a distinctive asymmetric join: many independent `Patser` scans
//! collapse into a `Patser_concate`, while a parallel group of BLAST-family
//! tasks all feed a single `SRNA` hub that fans out to more BLASTs before
//! the final `FindsRNA` annotation. Compared to CYBERSHAKE (pairs) and LIGO
//! (blocks), SIPHT exercises hub-and-spoke joins with unbalanced weights.

use super::{jitter, GenConfig, MB};
use crate::graph::{Workflow, WorkflowBuilder};
use crate::task::StochasticWeight;

/// Minimum tasks: 1 patser + concate + srna + 1 pre-blast + 1 post-blast +
/// findsrna.
pub const SIPHT_MIN_TASKS: usize = 6;

/// Generate a SIPHT workflow with exactly `cfg.tasks` tasks.
///
/// # Panics
/// If `cfg.tasks < SIPHT_MIN_TASKS`.
pub fn sipht(cfg: GenConfig) -> Workflow {
    assert!(
        cfg.tasks >= SIPHT_MIN_TASKS,
        "SIPHT needs at least {SIPHT_MIN_TASKS} tasks, got {}",
        cfg.tasks
    );
    let mut rng = super::rng_for(&cfg, 0x53495048); // "SIPH"
    let mut b = WorkflowBuilder::new(format!("SIPHT-{}-s{}", cfg.tasks, cfg.seed));

    let wgt = |rng: &mut _, base: f64| {
        StochasticWeight::new(jitter(rng, base, 0.25), 0.0).with_sigma_ratio(cfg.sigma_ratio)
    };
    let data = |rng: &mut _, base: f64| jitter(rng, base, 0.25);

    // Fixed hubs: Patser_concate, SRNA, FindsRNA. The rest splits into
    // patser scans (~40 %), pre-SRNA blasts (~30 %), post-SRNA blasts.
    let free = cfg.tasks - 3;
    let patsers_n = (free * 2 / 5).max(1);
    let pre_n = (free * 3 / 10).max(1);
    let post_n = free - patsers_n - pre_n;
    debug_assert!(post_n >= 1);

    let concate = b.add_task("Patser_concate", wgt(&mut rng, 40.0));
    let srna = b.add_task("SRNA", wgt(&mut rng, 2500.0)); // the heavy hub
    let find = b.add_task("FindsRNA", wgt(&mut rng, 300.0));
    b.set_external_output(find, data(&mut rng, 5.0 * MB));

    for i in 0..patsers_n {
        let t = b.add_task(format!("Patser_{i}"), wgt(&mut rng, 50.0));
        b.set_external_input(t, data(&mut rng, 2.0 * MB));
        b.connect(t, concate, data(&mut rng, 0.5 * MB));
    }
    b.connect(concate, find, data(&mut rng, 1.0 * MB));

    for i in 0..pre_n {
        let t = b.add_task(format!("Blast_pre_{i}"), wgt(&mut rng, 900.0));
        b.set_external_input(t, data(&mut rng, 10.0 * MB));
        b.connect(t, srna, data(&mut rng, 3.0 * MB));
    }
    for i in 0..post_n {
        let t = b.add_task(format!("Blast_post_{i}"), wgt(&mut rng, 700.0));
        b.connect(srna, t, data(&mut rng, 3.0 * MB));
        b.connect(t, find, data(&mut rng, 1.0 * MB));
    }

    let wf = b.build_valid();
    debug_assert_eq!(wf.task_count(), cfg.tasks);
    wf
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use crate::analysis::stats;

    #[test]
    fn exact_task_count_across_sizes() {
        for n in [6, 7, 20, 30, 60, 90, 97] {
            assert_eq!(sipht(GenConfig::new(n, 2)).task_count(), n, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn too_small_rejected() {
        sipht(GenConfig::new(5, 1));
    }

    #[test]
    fn single_exit_findsrna() {
        let wf = sipht(GenConfig::new(60, 1));
        let exits: Vec<_> = wf.exit_tasks().collect();
        assert_eq!(exits.len(), 1);
        assert_eq!(wf.task(exits[0]).name, "FindsRNA");
    }

    #[test]
    fn srna_hub_has_large_fan_in_and_out() {
        let wf = sipht(GenConfig::new(90, 1));
        let srna = wf
            .task_ids()
            .find(|&t| wf.task(t).name == "SRNA")
            .expect("SRNA exists");
        assert!(wf.predecessors(srna).count() >= 5);
        assert!(wf.successors(srna).count() >= 5);
    }

    #[test]
    fn weights_are_unbalanced() {
        // Unlike MONTAGE, SIPHT mixes light scans with a heavy hub.
        let wf = sipht(GenConfig::new(60, 1));
        let means: Vec<f64> = wf.tasks().iter().map(|t| t.weight.mean).collect();
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 20.0, "max/min = {}", max / min);
    }

    #[test]
    fn shallow_and_wide() {
        let s = stats(&sipht(GenConfig::new(90, 1)));
        assert!(s.depth <= 4, "{s:?}");
        assert!(s.width > s.depth * 5, "{s:?}");
    }
}
