//! CYBERSHAKE generator: seismic hazard characterization.
//!
//! Structure (paper §V-A): "a first set of tasks generating data in parallel,
//! data which will be used by a directly connected task (one calculating task
//! per generating task). These parallel activities are all linked to two
//! different agglomerative tasks. [...] half the tasks have huge input data."
//!
//! Shape implemented:
//!
//! ```text
//!   ExtractSGT_1..g     (parallel; HUGE external inputs — SGT files)
//!        |  1-to-1
//!   SeismogramSynthesis_1..g   (huge input edges from their extractor)
//!        |        \
//!     ZipSeis    ZipPSA        (the two agglomerators; external outputs)
//! ```

use super::{jitter, GenConfig, MB};
use crate::graph::{Workflow, WorkflowBuilder};
use crate::task::StochasticWeight;

/// Minimum number of tasks (1 pair + the 2 agglomerators).
pub const CYBERSHAKE_MIN_TASKS: usize = 4;

/// Generate a CYBERSHAKE workflow with exactly `cfg.tasks` tasks.
///
/// # Panics
/// If `cfg.tasks < CYBERSHAKE_MIN_TASKS`.
pub fn cybershake(cfg: GenConfig) -> Workflow {
    assert!(
        cfg.tasks >= CYBERSHAKE_MIN_TASKS,
        "CYBERSHAKE needs at least {CYBERSHAKE_MIN_TASKS} tasks, got {}",
        cfg.tasks
    );
    let mut rng = super::rng_for(&cfg, 0x43594245); // "CYBE"
    let mut b = WorkflowBuilder::new(format!("CYBERSHAKE-{}-s{}", cfg.tasks, cfg.seed));

    let free = cfg.tasks - 2;
    let pairs = free / 2;
    let stragglers = free - 2 * pairs; // 0 or 1 extra extractor

    let wgt = |rng: &mut _, base: f64| {
        StochasticWeight::new(jitter(rng, base, 0.2), 0.0).with_sigma_ratio(cfg.sigma_ratio)
    };
    // Huge SGT data: hundreds of MB flowing extractor → synthesis (the
    // "huge input data" half of the task population). The SGT volumes are
    // produced *within* the workflow; the boundary inputs (rupture
    // descriptions) are modest.
    let sgt = |rng: &mut _| jitter(rng, 250.0 * MB, 0.3);
    let small = |rng: &mut _| jitter(rng, 1.0 * MB, 0.3);

    let mut extractors = Vec::with_capacity(pairs + stragglers);
    let mut syntheses = Vec::with_capacity(pairs);
    for i in 0..pairs + stragglers {
        let e = b.add_task(format!("ExtractSGT_{i}"), wgt(&mut rng, 1100.0));
        b.set_external_input(e, jitter(&mut rng, 20.0 * MB, 0.3));
        extractors.push(e);
    }
    for (i, &extractor) in extractors.iter().take(pairs).enumerate() {
        let s = b.add_task(format!("SeismogramSynthesis_{i}"), wgt(&mut rng, 800.0));
        syntheses.push(s);
        b.connect(extractor, s, sgt(&mut rng));
    }
    let zip_seis = b.add_task("ZipSeis", wgt(&mut rng, 100.0));
    let zip_psa = b.add_task("ZipPSA", wgt(&mut rng, 100.0));
    b.set_external_output(zip_seis, jitter(&mut rng, 50.0 * MB, 0.2));
    b.set_external_output(zip_psa, jitter(&mut rng, 20.0 * MB, 0.2));

    for &s in &syntheses {
        b.connect(s, zip_seis, jitter(&mut rng, 10.0 * MB, 0.3));
        b.connect(s, zip_psa, small(&mut rng));
    }
    // A straggler extractor (odd task count) feeds the agglomerators
    // directly so it still participates in the DAG.
    for &e in &extractors[pairs..] {
        b.connect(e, zip_seis, small(&mut rng));
        b.connect(e, zip_psa, small(&mut rng));
    }

    let wf = b.build_valid();
    debug_assert_eq!(wf.task_count(), cfg.tasks);
    wf
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use crate::analysis::levels;

    #[test]
    fn exact_task_count_even_and_odd() {
        for n in [4, 5, 30, 31, 60, 90] {
            assert_eq!(cybershake(GenConfig::new(n, 2)).task_count(), n);
        }
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn too_small_rejected() {
        cybershake(GenConfig::new(3, 1));
    }

    #[test]
    fn two_agglomerators_are_the_exits() {
        let wf = cybershake(GenConfig::new(30, 1));
        let exits: Vec<_> = wf.exit_tasks().map(|t| wf.task(t).name.clone()).collect();
        assert_eq!(exits.len(), 2);
        assert!(exits.contains(&"ZipSeis".to_string()));
        assert!(exits.contains(&"ZipPSA".to_string()));
    }

    #[test]
    fn three_levels_parallel_structure() {
        // extractors -> syntheses -> agglomerators.
        let wf = cybershake(GenConfig::new(90, 1));
        let lv = levels(&wf);
        assert_eq!(lv.len(), 3);
        assert_eq!(lv[0].len(), 44); // (90-2)/2 pairs, no straggler
        assert_eq!(lv[2].len(), 2);
    }

    #[test]
    fn half_the_tasks_have_huge_inputs() {
        // Paper: "half the tasks have huge input data" — every synthesis
        // reads >= 100 MB (one half of the generator/filter population).
        let wf = cybershake(GenConfig::new(90, 1));
        let huge = wf
            .task_ids()
            .filter(|&t| wf.pred_data_size(t) > 100.0 * MB)
            .count();
        let pairs = (wf.task_count() - 2) / 2;
        // Every synthesis reads a huge SGT volume; the two agglomerators
        // can also aggregate past 100 MB.
        assert!((pairs..=pairs + 2).contains(&huge), "huge = {huge}, pairs = {pairs}");
        assert!(huge as f64 >= 0.4 * wf.task_count() as f64);
    }

    #[test]
    fn one_synthesis_per_extractor() {
        let wf = cybershake(GenConfig::new(30, 1));
        for t in wf.task_ids() {
            if wf.task(t).name.starts_with("SeismogramSynthesis") {
                assert_eq!(wf.predecessors(t).count(), 1);
            }
        }
    }
}
