//! Parameterized generators for the Pegasus-style benchmark workflows the
//! paper evaluates on (CYBERSHAKE, LIGO, MONTAGE), plus EPIGENOMICS and
//! synthetic shapes used in tests and extensions.
//!
//! The paper generates its DAGs with the Pegasus WorkflowGenerator (5
//! instances per type, 30/60/90 tasks, §V-A). We reproduce the *structural*
//! properties it describes for each type — branching shape, weight balance,
//! data-size skew — with deterministic seeded randomness, so instance `i` of
//! a given type/size is reproducible bit-for-bit.

mod cybershake;
mod epigenomics;
mod ligo;
mod montage;
mod sipht;
mod synthetic;

pub use cybershake::cybershake;
pub use epigenomics::epigenomics;
pub use ligo::ligo;
pub use montage::montage;
pub use sipht::sipht;
pub use synthetic::{bag_of_tasks, chain, fork_join, layered_random, LayeredParams};

use crate::graph::Workflow;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One megabyte, in bytes.
pub const MB: f64 = 1e6;
/// One gigabyte, in bytes.
pub const GB: f64 = 1e9;

/// Configuration common to all benchmark generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenConfig {
    /// Requested number of tasks (the generator hits it exactly; minimum
    /// varies per workflow type and is documented on each generator).
    pub tasks: usize,
    /// Seed selecting the instance (the paper uses 5 instances per type).
    pub seed: u64,
    /// Standard deviation of each task weight, as a ratio of its mean
    /// (the paper sweeps 0.25/0.50/0.75/1.00).
    pub sigma_ratio: f64,
}

impl GenConfig {
    /// Convenience constructor with the paper's default σ = 50 %.
    pub fn new(tasks: usize, seed: u64) -> Self {
        Self { tasks, seed, sigma_ratio: 0.5 }
    }

    /// Override the σ/mean ratio.
    pub fn with_sigma_ratio(mut self, ratio: f64) -> Self {
        self.sigma_ratio = ratio;
        self
    }
}

/// The three benchmark types of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchmarkType {
    /// Parallel generator/filter pairs feeding two agglomerators; half the
    /// tasks carry huge input data.
    CyberShake,
    /// Repeated {parallel set → per-set agglomerator} blocks; near
    /// bag-of-tasks; one oversized input.
    Ligo,
    /// Highly interconnected mosaicking pipeline; balanced weights and data.
    Montage,
}

impl BenchmarkType {
    /// Generate an instance of this benchmark type.
    pub fn generate(self, cfg: GenConfig) -> Workflow {
        match self {
            BenchmarkType::CyberShake => cybershake(cfg),
            BenchmarkType::Ligo => ligo(cfg),
            BenchmarkType::Montage => montage(cfg),
        }
    }

    /// Canonical lowercase name (`cybershake`, `ligo`, `montage`).
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkType::CyberShake => "cybershake",
            BenchmarkType::Ligo => "ligo",
            BenchmarkType::Montage => "montage",
        }
    }

    /// All three benchmark types, in the paper's order.
    pub const ALL: [BenchmarkType; 3] =
        [BenchmarkType::CyberShake, BenchmarkType::Ligo, BenchmarkType::Montage];
}

impl std::str::FromStr for BenchmarkType {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "cybershake" => Ok(BenchmarkType::CyberShake),
            "ligo" | "inspiral" => Ok(BenchmarkType::Ligo),
            "montage" => Ok(BenchmarkType::Montage),
            other => Err(format!("unknown benchmark type `{other}`")),
        }
    }
}

/// Seeded RNG shared by the generators.
pub(crate) fn rng_for(cfg: &GenConfig, salt: u64) -> StdRng {
    StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(salt))
}

/// Multiply `base` by a uniform factor in `[1-rel, 1+rel]` — the per-task
/// variation the Pegasus generator applies around profiled means.
pub(crate) fn jitter(rng: &mut StdRng, base: f64, rel: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&rel));
    base * (1.0 + rng.gen_range(-rel..=rel))
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use crate::analysis::stats;

    #[test]
    fn all_types_hit_requested_task_counts() {
        for ty in BenchmarkType::ALL {
            for n in [30, 60, 90] {
                let wf = ty.generate(GenConfig::new(n, 1));
                assert_eq!(wf.task_count(), n, "{} with n={n}", ty.name());
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for ty in BenchmarkType::ALL {
            let a = ty.generate(GenConfig::new(60, 7));
            let b = ty.generate(GenConfig::new(60, 7));
            assert_eq!(a.to_json(), b.to_json(), "{}", ty.name());
        }
    }

    #[test]
    fn different_seeds_give_different_weights() {
        for ty in BenchmarkType::ALL {
            let a = ty.generate(GenConfig::new(60, 1));
            let b = ty.generate(GenConfig::new(60, 2));
            let same = a
                .tasks()
                .iter()
                .zip(b.tasks())
                .all(|(x, y)| (x.weight.mean - y.weight.mean).abs() < 1e-12);
            assert!(!same, "{} instances 1 and 2 are identical", ty.name());
        }
    }

    #[test]
    fn sigma_ratio_is_honored() {
        for ty in BenchmarkType::ALL {
            let wf = ty.generate(GenConfig::new(30, 1).with_sigma_ratio(0.75));
            for t in wf.tasks() {
                assert!((t.weight.std_dev - 0.75 * t.weight.mean).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn benchmark_type_parses_from_str() {
        assert_eq!("montage".parse::<BenchmarkType>().unwrap(), BenchmarkType::Montage);
        assert_eq!("LIGO".parse::<BenchmarkType>().unwrap(), BenchmarkType::Ligo);
        assert_eq!("inspiral".parse::<BenchmarkType>().unwrap(), BenchmarkType::Ligo);
        assert!("frobnicate".parse::<BenchmarkType>().is_err());
    }

    #[test]
    fn montage_is_more_connected_than_ligo() {
        // The paper contrasts MONTAGE ("plenty highly inter-connected
        // tasks") with LIGO ("structure near a Bag of Tasks"): edge density
        // must reflect that.
        let m = stats(&montage(GenConfig::new(90, 1)));
        let l = stats(&ligo(GenConfig::new(90, 1)));
        let density = |s: &crate::analysis::WorkflowStats| s.edges as f64 / s.tasks as f64;
        assert!(
            density(&m) > density(&l),
            "montage density {} should exceed ligo density {}",
            density(&m),
            density(&l)
        );
    }

    #[test]
    fn external_io_present_on_all_types() {
        for ty in BenchmarkType::ALL {
            let wf = ty.generate(GenConfig::new(30, 1));
            assert!(wf.external_input_data() > 0.0, "{} has no external input", ty.name());
            assert!(wf.external_output_data() > 0.0, "{} has no external output", ty.name());
        }
    }
}
