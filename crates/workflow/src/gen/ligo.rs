//! LIGO (Inspiral) generator: gravitational-wave template analysis.
//!
//! Structure (paper §V-A): "a lot of parallel tasks sharing a link to some
//! agglomerative tasks, one agglomerative task per little set; this scheme
//! repeats twice since there is a second subdivision after the first
//! agglomeration". Also: "most input data have the same (large) size, only
//! one of them is oversized compared with the others (by a ratio over 100)",
//! and growing the task count "leads to an increasing number of independent
//! short workflows" (near bag-of-tasks).
//!
//! Shape implemented — independent blocks, each:
//!
//! ```text
//!   TmpltBank_1..g   (parallel, external inputs of uniform large size)
//!        \ | /
//!       Thinca_a     (agglomerator of the set)
//!        / | \
//!   TrigBank_1..g    (second parallel subdivision)
//!        \ | /
//!       Thinca_b     (second agglomerator; external output)
//! ```

use super::{jitter, GenConfig, MB};
use crate::graph::{Workflow, WorkflowBuilder};
use crate::task::{StochasticWeight, TaskId};

/// Tasks per block: `2*LIGO_GROUP + 2`.
const LIGO_GROUP: usize = 6;

/// Minimum number of tasks (one block with groups of 1).
pub const LIGO_MIN_TASKS: usize = 4;

/// Generate a LIGO workflow with exactly `cfg.tasks` tasks.
///
/// # Panics
/// If `cfg.tasks < LIGO_MIN_TASKS`.
pub fn ligo(cfg: GenConfig) -> Workflow {
    assert!(
        cfg.tasks >= LIGO_MIN_TASKS,
        "LIGO needs at least {LIGO_MIN_TASKS} tasks, got {}",
        cfg.tasks
    );
    let mut rng = super::rng_for(&cfg, 0x4c49474f); // "LIGO"
    let mut b = WorkflowBuilder::new(format!("LIGO-{}-s{}", cfg.tasks, cfg.seed));

    let wgt = |rng: &mut _, base: f64| {
        StochasticWeight::new(jitter(rng, base, 0.2), 0.0).with_sigma_ratio(cfg.sigma_ratio)
    };

    // Uniform large inputs, except exactly one oversized by a ratio > 100.
    let base_input = 8.0 * MB;
    let oversized_input = base_input * 120.0;

    // Carve `cfg.tasks` into blocks of up to 2*LIGO_GROUP+2 tasks. Each block
    // needs at least 4 tasks (1+1+1+1); distribute the remainder over the
    // first blocks' parallel groups.
    let block_size = 2 * LIGO_GROUP + 2;
    let n_blocks = (cfg.tasks / block_size).max(1);
    let mut remaining = cfg.tasks;
    let mut entry_tasks: Vec<TaskId> = Vec::new();

    for blk in 0..n_blocks {
        let blocks_left = n_blocks - blk;
        // Tasks available for this block, leaving >= 4 for each later block.
        let avail = remaining - 4 * (blocks_left - 1);
        let this = if blocks_left == 1 { avail } else { avail.min(block_size).max(4) };
        remaining -= this;

        // Split `this` into g1 templates, 1 agg, g2 trigbanks, 1 agg.
        let par = this - 2;
        let g1 = par.div_ceil(2);
        let g2 = par - g1;

        let templates: Vec<_> = (0..g1)
            .map(|i| {
                let t = b.add_task(format!("TmpltBank_{blk}_{i}"), wgt(&mut rng, 180.0));
                entry_tasks.push(t);
                t
            })
            .collect();
        let agg1 = b.add_task(format!("Thinca1_{blk}"), wgt(&mut rng, 60.0));
        for &t in &templates {
            b.connect(t, agg1, jitter(&mut rng, base_input, 0.05));
        }
        let trigbanks: Vec<_> = (0..g2)
            .map(|i| b.add_task(format!("TrigBank_{blk}_{i}"), wgt(&mut rng, 180.0)))
            .collect();
        let last = if g2 > 0 {
            let agg2 = b.add_task(format!("Thinca2_{blk}"), wgt(&mut rng, 60.0));
            for &t in &trigbanks {
                b.connect(agg1, t, jitter(&mut rng, base_input, 0.05));
                b.connect(t, agg2, jitter(&mut rng, base_input, 0.05));
            }
            agg2
        } else {
            // Degenerate tiny block: Thinca1 doubles as the exit; the spare
            // task becomes one more template.
            let t = b.add_task(format!("TmpltBank_{blk}_x"), wgt(&mut rng, 180.0));
            entry_tasks.push(t);
            b.connect(t, agg1, jitter(&mut rng, base_input, 0.05));
            agg1
        };
        b.set_external_output(last, jitter(&mut rng, 5.0 * MB, 0.2));
    }
    debug_assert_eq!(remaining, 0);

    // Uniform external inputs on every entry, one oversized (deterministic
    // pick from the seeded RNG).
    use rand::Rng;
    let oversized_idx = rng.gen_range(0..entry_tasks.len());
    for (i, &t) in entry_tasks.iter().enumerate() {
        let size = if i == oversized_idx { oversized_input } else { jitter(&mut rng, base_input, 0.05) };
        b.set_external_input(t, size);
    }

    let wf = b.build_valid();
    debug_assert_eq!(wf.task_count(), cfg.tasks);
    wf
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use crate::analysis::{levels, stats};

    #[test]
    fn exact_task_count_across_sizes() {
        for n in [4, 5, 14, 30, 60, 90, 91, 400] {
            assert_eq!(ligo(GenConfig::new(n, 2)).task_count(), n, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn too_small_rejected() {
        ligo(GenConfig::new(3, 1));
    }

    #[test]
    fn has_one_oversized_input() {
        let wf = ligo(GenConfig::new(90, 1));
        let inputs: Vec<f64> = wf
            .tasks()
            .iter()
            .filter(|t| t.external_input > 0.0)
            .map(|t| t.external_input)
            .collect();
        let max = inputs.iter().cloned().fold(f64::MIN, f64::max);
        let oversized = inputs.iter().filter(|&&s| s > max / 2.0).count();
        assert_eq!(oversized, 1, "exactly one oversized input expected");
        // Ratio over 100 vs the typical size.
        let typical: f64 =
            inputs.iter().filter(|&&s| s < max / 2.0).sum::<f64>() / (inputs.len() - 1) as f64;
        assert!(max / typical > 100.0, "ratio {} too small", max / typical);
    }

    #[test]
    fn grows_as_independent_blocks() {
        // 90 tasks => 6 full blocks; the number of connected components
        // (= number of exit Thinca2 with disjoint ancestry) grows with n.
        let small = stats(&ligo(GenConfig::new(30, 1)));
        let large = stats(&ligo(GenConfig::new(90, 1)));
        assert!(large.exits > small.exits, "{} vs {}", large.exits, small.exits);
    }

    #[test]
    fn four_levels_per_block() {
        let wf = ligo(GenConfig::new(90, 1));
        assert_eq!(levels(&wf).len(), 4);
    }

    #[test]
    fn agglomerators_fan_in() {
        let wf = ligo(GenConfig::new(90, 1));
        for t in wf.task_ids() {
            let name = &wf.task(t).name;
            if name.starts_with("Thinca") {
                assert!(wf.predecessors(t).count() >= 2, "{name} has a trivial fan-in");
            }
        }
    }

    #[test]
    fn near_bag_of_tasks_density() {
        // Edge density stays close to 1 edge per task (tree-ish blocks).
        let s = stats(&ligo(GenConfig::new(90, 1)));
        assert!(s.edges as f64 / s.tasks as f64 <= 1.3, "{s:?}");
    }
}
