//! MONTAGE generator: the astronomy mosaicking pipeline.
//!
//! Structure (paper §V-A): "plenty highly inter-connected tasks, rendering
//! parallelization less easy. The number of instructions of its different
//! tasks is balanced, as is the size of the exchanged data."
//!
//! Shape implemented (following the Pegasus Montage DAG):
//!
//! ```text
//!   mProjectPP_1..p      (parallel re-projections, external inputs)
//!        |  \  crosswise
//!   mDiffFit_1..d        (each reads TWO neighbouring projections)
//!        \ ... /
//!     mConcatFit         (agglomerates all diffs)
//!          |
//!      mBgModel
//!      /   |   \         (fans out to every background task)
//!   mBackground_1..p     (also reads its own projection: interconnection)
//!      \   |   /
//!      mImgtbl
//!          |
//!        mAdd -> mShrink -> mJPEG   (external output)
//! ```

use super::{jitter, GenConfig, MB};
use crate::graph::{Workflow, WorkflowBuilder};
use crate::task::StochasticWeight;

/// Minimum number of tasks a MONTAGE instance needs (2 projections, 1 diff,
/// the 6 tail tasks, 2 backgrounds).
pub const MONTAGE_MIN_TASKS: usize = 11;

/// Generate a MONTAGE workflow with exactly `cfg.tasks` tasks.
///
/// # Panics
/// If `cfg.tasks < MONTAGE_MIN_TASKS`.
pub fn montage(cfg: GenConfig) -> Workflow {
    assert!(
        cfg.tasks >= MONTAGE_MIN_TASKS,
        "MONTAGE needs at least {MONTAGE_MIN_TASKS} tasks, got {}",
        cfg.tasks
    );
    let mut rng = super::rng_for(&cfg, 0x4d4f4e54); // "MONT"
    let mut b = WorkflowBuilder::new(format!("MONTAGE-{}-s{}", cfg.tasks, cfg.seed));

    // 6 fixed tail tasks; remaining split into p projections, p backgrounds,
    // and d = rest diffs (d >= p-1 so neighbouring pairs are covered).
    let free = cfg.tasks - 6;
    let p = (free / 3).max(2);
    let d = free - 2 * p;
    debug_assert!(d >= 1);

    // Balanced weights (Gflop; ~5-30 s on the 10 Gflop/s reference VM) and
    // balanced data (Montage FITS tiles are a few MB each).
    let wgt = |rng: &mut _, base: f64| {
        StochasticWeight::new(jitter(rng, base, 0.2), 0.0).with_sigma_ratio(cfg.sigma_ratio)
    };
    let fits = |rng: &mut _| jitter(rng, 4.0 * MB, 0.2);

    let projections: Vec<_> = (0..p)
        .map(|i| {
            let t = b.add_task(format!("mProjectPP_{i}"), wgt(&mut rng, 100.0));
            b.set_external_input(t, jitter(&mut rng, 4.0 * MB, 0.2));
            t
        })
        .collect();

    let diffs: Vec<_> =
        (0..d).map(|i| b.add_task(format!("mDiffFit_{i}"), wgt(&mut rng, 50.0))).collect();

    let concat = b.add_task("mConcatFit", wgt(&mut rng, 150.0));
    let bgmodel = b.add_task("mBgModel", wgt(&mut rng, 200.0));

    let backgrounds: Vec<_> =
        (0..p).map(|i| b.add_task(format!("mBackground_{i}"), wgt(&mut rng, 100.0))).collect();

    let imgtbl = b.add_task("mImgtbl", wgt(&mut rng, 80.0));
    let add = b.add_task("mAdd", wgt(&mut rng, 300.0));
    let shrink = b.add_task("mShrink", wgt(&mut rng, 100.0));
    let jpeg = b.add_task("mJPEG", wgt(&mut rng, 50.0));
    b.set_external_output(jpeg, jitter(&mut rng, 10.0 * MB, 0.2));

    // Each diff reads two neighbouring projections (wrap around), producing
    // the dense interconnection the paper highlights.
    for (i, &diff) in diffs.iter().enumerate() {
        let a = projections[i % p];
        let c = projections[(i + 1) % p];
        b.connect(a, diff, fits(&mut rng));
        if c != a {
            b.connect(c, diff, fits(&mut rng));
        }
        b.connect(diff, concat, fits(&mut rng) * 0.25);
    }
    b.connect(concat, bgmodel, fits(&mut rng) * 0.25);
    for (i, &bg) in backgrounds.iter().enumerate() {
        b.connect(bgmodel, bg, fits(&mut rng) * 0.1);
        b.connect(projections[i], bg, fits(&mut rng));
        b.connect(bg, imgtbl, fits(&mut rng));
    }
    b.connect(imgtbl, add, fits(&mut rng));
    b.connect(add, shrink, fits(&mut rng) * 2.0);
    b.connect(shrink, jpeg, fits(&mut rng));

    let wf = b.build_valid();
    debug_assert_eq!(wf.task_count(), cfg.tasks);
    wf
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use crate::analysis::{levels, stats};

    #[test]
    fn exact_task_count_across_sizes() {
        for n in [11, 30, 60, 90, 137, 400] {
            assert_eq!(montage(GenConfig::new(n, 3)).task_count(), n);
        }
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn too_small_rejected() {
        montage(GenConfig::new(5, 1));
    }

    #[test]
    fn single_exit_is_jpeg() {
        let wf = montage(GenConfig::new(30, 1));
        let exits: Vec<_> = wf.exit_tasks().collect();
        assert_eq!(exits.len(), 1);
        assert_eq!(wf.task(exits[0]).name, "mJPEG");
        assert!(wf.task(exits[0]).external_output > 0.0);
    }

    #[test]
    fn entries_are_projections() {
        let wf = montage(GenConfig::new(30, 1));
        for t in wf.entry_tasks() {
            assert!(wf.task(t).name.starts_with("mProjectPP"));
            assert!(wf.task(t).external_input > 0.0);
        }
    }

    #[test]
    fn depth_reflects_pipeline_stages() {
        // projections -> diffs -> concat -> bgmodel -> background -> imgtbl
        // -> add -> shrink -> jpeg = 9 levels.
        let wf = montage(GenConfig::new(90, 1));
        assert_eq!(levels(&wf).len(), 9);
    }

    #[test]
    fn weights_are_balanced() {
        // Paper: "the number of instructions of its different tasks is
        // balanced" — max/min mean weight within a small factor.
        let wf = montage(GenConfig::new(90, 1));
        let means: Vec<f64> = wf.tasks().iter().map(|t| t.weight.mean).collect();
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 12.0, "weight imbalance {max}/{min}");
    }

    #[test]
    fn interconnection_density_is_high() {
        let s = stats(&montage(GenConfig::new(90, 1)));
        assert!(s.edges as f64 / s.tasks as f64 > 1.5, "{s:?}");
    }
}
