//! Synthetic DAG shapes: chains, fork-joins, bags of tasks, and random
//! layered DAGs. Used heavily in unit/property tests and available to users
//! who want controlled structures.

use super::{jitter, GenConfig, MB};
use crate::graph::{Workflow, WorkflowBuilder};
use crate::task::StochasticWeight;
use rand::Rng;

/// A pure chain `t0 -> t1 -> ... -> t(n-1)` of `n` tasks of `work` Gflop
/// each, with `data` bytes on every edge.
pub fn chain(n: usize, work: f64, data: f64) -> Workflow {
    assert!(n >= 1, "chain needs at least one task");
    let mut b = WorkflowBuilder::new(format!("chain-{n}"));
    let mut prev = b.add_task("t0", StochasticWeight::fixed(work));
    b.set_external_input(prev, data);
    for i in 1..n {
        let t = b.add_task(format!("t{i}"), StochasticWeight::fixed(work));
        b.connect(prev, t, data);
        prev = t;
    }
    b.set_external_output(prev, data);
    b.build_valid()
}

/// A fork-join: `source -> {b_1..b_width} -> sink` (`width + 2` tasks).
pub fn fork_join(width: usize, work: f64, data: f64) -> Workflow {
    assert!(width >= 1, "fork_join needs at least one branch");
    let mut b = WorkflowBuilder::new(format!("forkjoin-{width}"));
    let src = b.add_task("source", StochasticWeight::fixed(work));
    b.set_external_input(src, data);
    let sink_weight = StochasticWeight::fixed(work);
    let branches: Vec<_> = (0..width)
        .map(|i| b.add_task(format!("b{i}"), StochasticWeight::fixed(work)))
        .collect();
    let sink = b.add_task("sink", sink_weight);
    b.set_external_output(sink, data);
    for &t in &branches {
        b.connect(src, t, data);
        b.connect(t, sink, data);
    }
    b.build_valid()
}

/// `n` fully independent tasks (no edges) — the degenerate shape LIGO tends
/// towards in the paper's analysis.
pub fn bag_of_tasks(n: usize, work: f64, io: f64) -> Workflow {
    assert!(n >= 1, "bag_of_tasks needs at least one task");
    let mut b = WorkflowBuilder::new(format!("bag-{n}"));
    for i in 0..n {
        let t = b.add_task(format!("t{i}"), StochasticWeight::fixed(work));
        b.set_external_input(t, io);
        b.set_external_output(t, io);
    }
    b.build_valid()
}

/// Parameters for [`layered_random`].
#[derive(Debug, Clone, Copy)]
pub struct LayeredParams {
    /// Number of layers (>= 1).
    pub layers: usize,
    /// Tasks per layer (>= 1).
    pub width: usize,
    /// Probability of an edge between consecutive-layer task pairs.
    pub edge_prob: f64,
    /// Mean task work in Gflop (jittered ±30 %).
    pub work: f64,
    /// Mean edge data in bytes (jittered ±30 %).
    pub data: f64,
}

impl Default for LayeredParams {
    fn default() -> Self {
        Self { layers: 4, width: 5, edge_prob: 0.35, work: 100.0, data: 5.0 * MB }
    }
}

/// A random layered DAG: `layers × width` tasks; each task gets at least one
/// predecessor in the previous layer (so layers are honest), plus extra
/// random edges with probability `edge_prob`.
pub fn layered_random(params: LayeredParams, cfg: GenConfig) -> Workflow {
    assert!(params.layers >= 1 && params.width >= 1);
    let mut rng = super::rng_for(&cfg, 0x4c415952); // "LAYR"
    let mut b = WorkflowBuilder::new(format!(
        "layered-{}x{}-s{}",
        params.layers, params.width, cfg.seed
    ));
    let mut layers: Vec<Vec<_>> = Vec::with_capacity(params.layers);
    for l in 0..params.layers {
        let layer: Vec<_> = (0..params.width)
            .map(|i| {
                let w = StochasticWeight::new(jitter(&mut rng, params.work, 0.3), 0.0)
                    .with_sigma_ratio(cfg.sigma_ratio);
                b.add_task(format!("t{l}_{i}"), w)
            })
            .collect();
        if l > 0 {
            for &t in &layer {
                let prev = &layers[l - 1];
                // Guarantee one predecessor, then sprinkle extras.
                let forced = prev[rng.gen_range(0..prev.len())];
                b.connect(forced, t, jitter(&mut rng, params.data, 0.3));
                for &p in prev {
                    if p != forced && rng.gen_bool(params.edge_prob) {
                        b.connect(p, t, jitter(&mut rng, params.data, 0.3));
                    }
                }
            }
        }
        layers.push(layer);
    }
    for &t in &layers[0] {
        b.set_external_input(t, jitter(&mut rng, params.data, 0.3));
    }
    if let Some(last) = layers.last() {
        for &t in last {
            b.set_external_output(t, jitter(&mut rng, params.data, 0.3));
        }
    }
    b.build_valid()
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use crate::analysis::{levels, stats};

    #[test]
    fn chain_shape() {
        let wf = chain(5, 10.0, 1.0 * MB);
        assert_eq!(wf.task_count(), 5);
        assert_eq!(wf.edge_count(), 4);
        assert_eq!(stats(&wf).width, 1);
        assert_eq!(stats(&wf).depth, 5);
    }

    #[test]
    fn single_task_chain() {
        let wf = chain(1, 10.0, MB);
        assert_eq!(wf.task_count(), 1);
        assert_eq!(wf.edge_count(), 0);
        assert!(wf.external_input_data() > 0.0);
        assert!(wf.external_output_data() > 0.0);
    }

    #[test]
    fn fork_join_shape() {
        let wf = fork_join(8, 10.0, MB);
        assert_eq!(wf.task_count(), 10);
        assert_eq!(wf.edge_count(), 16);
        let lv = levels(&wf);
        assert_eq!(lv.len(), 3);
        assert_eq!(lv[1].len(), 8);
    }

    #[test]
    fn bag_has_no_edges() {
        let wf = bag_of_tasks(12, 50.0, MB);
        assert_eq!(wf.task_count(), 12);
        assert_eq!(wf.edge_count(), 0);
        assert_eq!(wf.entry_tasks().count(), 12);
        assert_eq!(wf.exit_tasks().count(), 12);
    }

    #[test]
    fn layered_random_every_task_connected() {
        let wf = layered_random(LayeredParams::default(), GenConfig::new(0, 5));
        // Every non-entry task has >= 1 predecessor by construction.
        for t in wf.task_ids() {
            let is_first_layer = wf.task(t).name.starts_with("t0_");
            if !is_first_layer {
                assert!(wf.predecessors(t).count() >= 1, "{} orphaned", wf.task(t).name);
            }
        }
        assert_eq!(levels(&wf).len(), 4);
    }

    #[test]
    fn layered_random_deterministic() {
        let p = LayeredParams::default();
        let a = layered_random(p, GenConfig::new(0, 9));
        let b = layered_random(p, GenConfig::new(0, 9));
        assert_eq!(a.to_json(), b.to_json());
    }
}
