//! The workflow DAG: tasks, data dependencies, and structural queries.

use crate::task::{StochasticWeight, Task, TaskId};
use serde::{Deserialize, Serialize};

/// Index of an edge inside a [`Workflow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A data dependency `(T_i, T_j)`: `to` may start only after `from` completed
/// and `size` bytes produced by `from` are available on the host of `to`
/// (paper §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Producer task.
    pub from: TaskId,
    /// Consumer task.
    pub to: TaskId,
    /// Bytes transferred, `size(d_{T_i,T_j})`.
    pub size: f64,
}

/// Errors raised while building or validating a workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowError {
    /// An edge references a task id that does not exist.
    UnknownTask(TaskId),
    /// An edge connects a task to itself.
    SelfLoop(TaskId),
    /// The dependency graph contains a cycle (so it is not a DAG).
    Cycle,
    /// The same (from, to) pair was added twice.
    DuplicateEdge(TaskId, TaskId),
    /// The workflow has no tasks.
    Empty,
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::UnknownTask(t) => write!(f, "edge references unknown task {t}"),
            WorkflowError::SelfLoop(t) => write!(f, "self-loop on task {t}"),
            WorkflowError::Cycle => write!(f, "dependency graph contains a cycle"),
            WorkflowError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            WorkflowError::Empty => write!(f, "workflow has no tasks"),
        }
    }
}

impl std::error::Error for WorkflowError {}

/// A scientific workflow: a DAG `G = (V, E)` of tasks with stochastic
/// weights and data-transfer edges (paper §III-A).
///
/// Construction goes through [`WorkflowBuilder`], which validates acyclicity;
/// a `Workflow` is therefore always a well-formed non-empty DAG.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workflow {
    /// Workflow name (e.g. `MONTAGE-90-i2`).
    pub name: String,
    tasks: Vec<Task>,
    edges: Vec<Edge>,
    /// Per task: incoming edge ids (predecessors).
    preds: Vec<Vec<EdgeId>>,
    /// Per task: outgoing edge ids (successors).
    succs: Vec<Vec<EdgeId>>,
    /// A fixed topological order of the task ids.
    topo: Vec<TaskId>,
}

impl Workflow {
    /// Number of tasks `n`.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of dependency edges `e`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All tasks, indexed by `TaskId`.
    #[inline]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// All edges, indexed by `EdgeId`.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The task with the given id.
    #[inline]
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// The edge with the given id.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Ids of all tasks in insertion order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len() as u32).map(TaskId)
    }

    /// Incoming edges of `t` (one per predecessor).
    #[inline]
    pub fn in_edges(&self, t: TaskId) -> &[EdgeId] {
        &self.preds[t.index()]
    }

    /// Outgoing edges of `t` (one per successor).
    #[inline]
    pub fn out_edges(&self, t: TaskId) -> &[EdgeId] {
        &self.succs[t.index()]
    }

    /// Predecessor task ids of `t`.
    pub fn predecessors(&self, t: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.preds[t.index()].iter().map(|&e| self.edges[e.index()].from)
    }

    /// Successor task ids of `t`.
    pub fn successors(&self, t: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.succs[t.index()].iter().map(|&e| self.edges[e.index()].to)
    }

    /// Tasks with no predecessors.
    pub fn entry_tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.task_ids().filter(|&t| self.preds[t.index()].is_empty())
    }

    /// Tasks with no successors.
    pub fn exit_tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.task_ids().filter(|&t| self.succs[t.index()].is_empty())
    }

    /// A topological order of the tasks (fixed at construction; Kahn order
    /// with FIFO tie-breaking, so it is deterministic).
    #[inline]
    pub fn topological_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// Total volume of input data of `t` from all its predecessors,
    /// `size(d_pred,T)` (paper Eq. 6).
    pub fn pred_data_size(&self, t: TaskId) -> f64 {
        self.preds[t.index()].iter().map(|&e| self.edges[e.index()].size).sum()
    }

    /// Total volume of data within the workflow, `d_max = Σ size(d_{T',T})`.
    pub fn total_edge_data(&self) -> f64 {
        self.edges.iter().map(|e| e.size).sum()
    }

    /// Sum of conservative task weights `Σ (w̄_i + σ_i)` — the `W_max`
    /// aggregate used when sizing the whole-workflow budget (paper Eq. 5).
    pub fn total_conservative_work(&self) -> f64 {
        self.tasks.iter().map(|t| t.weight.conservative()).sum()
    }

    /// Sum of mean task weights `Σ w̄_i`.
    pub fn total_mean_work(&self) -> f64 {
        self.tasks.iter().map(|t| t.weight.mean).sum()
    }

    /// `size(d_in,DC)`: bytes entering the platform from the outside world.
    pub fn external_input_data(&self) -> f64 {
        self.tasks.iter().map(|t| t.external_input).sum()
    }

    /// `size(d_DC,out)`: bytes leaving the platform to the outside world.
    pub fn external_output_data(&self) -> f64 {
        self.tasks.iter().map(|t| t.external_output).sum()
    }

    /// Rescale every task's standard deviation to `ratio * mean` (the paper
    /// derives 4 stochastic variants of each benchmark DAG this way, §V-A).
    pub fn with_sigma_ratio(mut self, ratio: f64) -> Self {
        for t in &mut self.tasks {
            t.weight = t.weight.with_sigma_ratio(ratio);
        }
        self
    }

    /// Serialize to pretty JSON.
    #[allow(clippy::expect_used)] // plain-old-data type: serialization is infallible
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("workflow serialization cannot fail")
    }

    /// Deserialize from JSON produced by [`Workflow::to_json`], re-validating
    /// the DAG structure.
    pub fn from_json(s: &str) -> Result<Self, Box<dyn std::error::Error>> {
        let wf: Workflow = serde_json::from_str(s)?;
        // Re-build through the builder so hand-edited files cannot smuggle in
        // cycles or dangling edges.
        let mut b = WorkflowBuilder::new(&wf.name);
        for t in &wf.tasks {
            let id = b.add_task_full(t.clone());
            debug_assert_eq!(id, t.id);
        }
        for e in &wf.edges {
            b.add_edge(e.from, e.to, e.size)?;
        }
        Ok(b.build()?)
    }
}

/// Incremental builder for [`Workflow`], validating as it goes.
#[derive(Debug, Clone)]
pub struct WorkflowBuilder {
    name: String,
    tasks: Vec<Task>,
    edges: Vec<Edge>,
    seen_pairs: std::collections::HashSet<(u32, u32)>,
}

impl WorkflowBuilder {
    /// Start building a workflow with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tasks: Vec::new(),
            edges: Vec::new(),
            seen_pairs: std::collections::HashSet::new(),
        }
    }

    /// Add a task; its id is assigned densely in insertion order.
    pub fn add_task(&mut self, name: impl Into<String>, weight: StochasticWeight) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(Task::new(id, name, weight));
        id
    }

    /// Add a pre-constructed task, overwriting its id with the next dense id.
    pub fn add_task_full(&mut self, mut task: Task) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        task.id = id;
        self.tasks.push(task);
        id
    }

    /// Declare external input bytes for an entry task (`d_in,DC`).
    pub fn set_external_input(&mut self, t: TaskId, bytes: f64) {
        self.tasks[t.index()].external_input = bytes;
    }

    /// Declare external output bytes for an exit task (`d_DC,out`).
    pub fn set_external_output(&mut self, t: TaskId, bytes: f64) {
        self.tasks[t.index()].external_output = bytes;
    }

    /// Add a dependency edge carrying `size` bytes.
    pub fn add_edge(&mut self, from: TaskId, to: TaskId, size: f64) -> Result<EdgeId, WorkflowError> {
        let n = self.tasks.len() as u32;
        if from.0 >= n {
            return Err(WorkflowError::UnknownTask(from));
        }
        if to.0 >= n {
            return Err(WorkflowError::UnknownTask(to));
        }
        if from == to {
            return Err(WorkflowError::SelfLoop(from));
        }
        if !self.seen_pairs.insert((from.0, to.0)) {
            return Err(WorkflowError::DuplicateEdge(from, to));
        }
        assert!(size.is_finite() && size >= 0.0, "edge data size must be non-negative");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { from, to, size });
        Ok(id)
    }

    /// [`WorkflowBuilder::add_edge`] for callers that construct graphs from
    /// ids they just created (generators): structurally, such an edge cannot
    /// be rejected, so the `Result` is collapsed here — one audited panic
    /// site instead of one `unwrap()` per generator edge.
    ///
    /// # Panics
    /// If the edge is invalid after all (unknown endpoint, self-loop or
    /// duplicate) — a bug in the calling generator.
    #[allow(clippy::expect_used)] // single audited funnel for generator edges
    pub fn connect(&mut self, from: TaskId, to: TaskId, size: f64) -> EdgeId {
        self.add_edge(from, to, size)
            .expect("generator-constructed edges are structurally valid")
    }

    /// Number of tasks added so far.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// [`WorkflowBuilder::build`] for generators whose construction is
    /// correct by design (tasks added before edges, edges follow the shape's
    /// layering, at least one task): collapses the `Result` in one audited
    /// place instead of a per-generator `expect()`.
    ///
    /// # Panics
    /// If the graph is empty or cyclic — a bug in the calling generator.
    #[allow(clippy::expect_used)] // single audited funnel for generator builds
    pub fn build_valid(self) -> Workflow {
        self.build().expect("generator-constructed workflows form a non-empty DAG")
    }

    /// Finish: verifies the graph is a non-empty DAG and computes the
    /// adjacency and a topological order.
    pub fn build(self) -> Result<Workflow, WorkflowError> {
        if self.tasks.is_empty() {
            return Err(WorkflowError::Empty);
        }
        let n = self.tasks.len();
        let mut preds: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        for (i, e) in self.edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            succs[e.from.index()].push(id);
            preds[e.to.index()].push(id);
        }
        // Kahn's algorithm with a FIFO queue: deterministic topological order.
        let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut queue: std::collections::VecDeque<TaskId> = (0..n as u32)
            .map(TaskId)
            .filter(|t| indeg[t.index()] == 0)
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(t) = queue.pop_front() {
            topo.push(t);
            for &e in &succs[t.index()] {
                let v = self.edges[e.index()].to;
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    queue.push_back(v);
                }
            }
        }
        if topo.len() != n {
            return Err(WorkflowError::Cycle);
        }
        Ok(Workflow { name: self.name, tasks: self.tasks, edges: self.edges, preds, succs, topo })
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;

    fn w(mean: f64) -> StochasticWeight {
        StochasticWeight::fixed(mean)
    }

    /// Small diamond: a -> {b, c} -> d.
    fn diamond() -> Workflow {
        let mut b = WorkflowBuilder::new("diamond");
        let a = b.add_task("a", w(1.0));
        let t1 = b.add_task("b", w(2.0));
        let t2 = b.add_task("c", w(3.0));
        let d = b.add_task("d", w(4.0));
        b.add_edge(a, t1, 10.0).unwrap();
        b.add_edge(a, t2, 20.0).unwrap();
        b.add_edge(t1, d, 30.0).unwrap();
        b.add_edge(t2, d, 40.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn diamond_structure() {
        let wf = diamond();
        assert_eq!(wf.task_count(), 4);
        assert_eq!(wf.edge_count(), 4);
        assert_eq!(wf.entry_tasks().collect::<Vec<_>>(), vec![TaskId(0)]);
        assert_eq!(wf.exit_tasks().collect::<Vec<_>>(), vec![TaskId(3)]);
        assert_eq!(wf.predecessors(TaskId(3)).collect::<Vec<_>>(), vec![TaskId(1), TaskId(2)]);
        assert_eq!(wf.successors(TaskId(0)).collect::<Vec<_>>(), vec![TaskId(1), TaskId(2)]);
    }

    #[test]
    fn topological_order_respects_edges() {
        let wf = diamond();
        let pos: Vec<usize> = {
            let mut pos = vec![0; wf.task_count()];
            for (i, t) in wf.topological_order().iter().enumerate() {
                pos[t.index()] = i;
            }
            pos
        };
        for e in wf.edges() {
            assert!(pos[e.from.index()] < pos[e.to.index()], "edge {e:?} violated");
        }
    }

    #[test]
    fn pred_data_size_sums_incoming() {
        let wf = diamond();
        assert_eq!(wf.pred_data_size(TaskId(3)), 70.0);
        assert_eq!(wf.pred_data_size(TaskId(0)), 0.0);
        assert_eq!(wf.total_edge_data(), 100.0);
    }

    #[test]
    fn cycle_detected() {
        let mut b = WorkflowBuilder::new("cyc");
        let a = b.add_task("a", w(1.0));
        let c = b.add_task("b", w(1.0));
        b.add_edge(a, c, 0.0).unwrap();
        b.add_edge(c, a, 0.0).unwrap();
        assert_eq!(b.build().unwrap_err(), WorkflowError::Cycle);
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = WorkflowBuilder::new("x");
        let a = b.add_task("a", w(1.0));
        assert_eq!(b.add_edge(a, a, 0.0).unwrap_err(), WorkflowError::SelfLoop(a));
    }

    #[test]
    fn unknown_task_rejected() {
        let mut b = WorkflowBuilder::new("x");
        let a = b.add_task("a", w(1.0));
        let ghost = TaskId(42);
        assert_eq!(b.add_edge(a, ghost, 0.0).unwrap_err(), WorkflowError::UnknownTask(ghost));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = WorkflowBuilder::new("x");
        let a = b.add_task("a", w(1.0));
        let c = b.add_task("b", w(1.0));
        b.add_edge(a, c, 1.0).unwrap();
        assert_eq!(b.add_edge(a, c, 2.0).unwrap_err(), WorkflowError::DuplicateEdge(a, c));
    }

    #[test]
    fn empty_workflow_rejected() {
        assert_eq!(WorkflowBuilder::new("e").build().unwrap_err(), WorkflowError::Empty);
    }

    #[test]
    fn external_io_sums() {
        let mut b = WorkflowBuilder::new("io");
        let a = b.add_task("a", w(1.0));
        let c = b.add_task("b", w(1.0));
        b.add_edge(a, c, 5.0).unwrap();
        b.set_external_input(a, 100.0);
        b.set_external_output(c, 200.0);
        let wf = b.build().unwrap();
        assert_eq!(wf.external_input_data(), 100.0);
        assert_eq!(wf.external_output_data(), 200.0);
    }

    #[test]
    fn sigma_ratio_applies_to_all_tasks() {
        let wf = diamond().with_sigma_ratio(0.25);
        for t in wf.tasks() {
            assert_eq!(t.weight.std_dev, t.weight.mean * 0.25);
        }
    }

    #[test]
    fn json_roundtrip_preserves_structure() {
        let wf = diamond();
        let back = Workflow::from_json(&wf.to_json()).unwrap();
        assert_eq!(back.task_count(), wf.task_count());
        assert_eq!(back.edge_count(), wf.edge_count());
        assert_eq!(back.topological_order(), wf.topological_order());
    }

    #[test]
    fn json_with_cycle_rejected() {
        // Hand-craft a JSON blob whose edge list forms a cycle.
        let wf = diamond();
        let mut json: serde_json::Value = serde_json::from_str(&wf.to_json()).unwrap();
        json["edges"]
            .as_array_mut()
            .unwrap()
            .push(serde_json::json!({"from": 3, "to": 0, "size": 1.0}));
        assert!(Workflow::from_json(&json.to_string()).is_err());
    }

    #[test]
    fn total_work_aggregates() {
        let wf = diamond().with_sigma_ratio(1.0);
        assert_eq!(wf.total_mean_work(), 10.0);
        assert_eq!(wf.total_conservative_work(), 20.0);
    }
}
