//! Structural analyses over workflows: BFS levels (BDT), bottom levels /
//! upward ranks (HEFT), critical path, and summary statistics.

use crate::graph::Workflow;
use crate::task::TaskId;

/// Which weight estimate an analysis uses for task durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightMode {
    /// Mean weight `w̄` (what plain HEFT/MIN-MIN on deterministic DAGs use).
    Mean,
    /// Conservative `w̄ + σ` (what the budget-aware algorithms plan with).
    Conservative,
}

impl WeightMode {
    /// The work amount of `t` under this mode.
    pub fn work(self, wf: &Workflow, t: TaskId) -> f64 {
        let w = wf.task(t).weight;
        match self {
            WeightMode::Mean => w.mean,
            WeightMode::Conservative => w.conservative(),
        }
    }
}

/// Partition the tasks into *levels*: level of `t` = length of the longest
/// path from any entry task to `t` (0 for entries). Tasks in one level are
/// pairwise independent. This is the decomposition BDT schedules by
/// (paper §V-D1 step (i)).
pub fn levels(wf: &Workflow) -> Vec<Vec<TaskId>> {
    let n = wf.task_count();
    let mut depth = vec![0usize; n];
    for &t in wf.topological_order() {
        for p in wf.predecessors(t) {
            depth[t.index()] = depth[t.index()].max(depth[p.index()] + 1);
        }
    }
    let max_depth = depth.iter().copied().max().unwrap_or(0);
    let mut out = vec![Vec::new(); max_depth + 1];
    for t in wf.task_ids() {
        out[depth[t.index()]].push(t);
    }
    out
}

/// Level index of each task (same definition as [`levels`]).
pub fn level_of(wf: &Workflow) -> Vec<usize> {
    let mut depth = vec![0usize; wf.task_count()];
    for &t in wf.topological_order() {
        for p in wf.predecessors(t) {
            depth[t.index()] = depth[t.index()].max(depth[p.index()] + 1);
        }
    }
    depth
}

/// Bottom levels (HEFT upward ranks):
///
/// `rank(T) = w_T / speed + max over successors S of (size(T,S)/bw + rank(S))`
///
/// `speed` is the mean VM speed `s̄` and `bw` the datacenter bandwidth, so
/// ranks are in seconds. HEFT and HEFTBUDG schedule tasks by non-increasing
/// rank (paper §IV, [24]).
pub fn bottom_levels(wf: &Workflow, mode: WeightMode, speed: f64, bw: f64) -> Vec<f64> {
    assert!(speed > 0.0 && bw > 0.0, "speed and bandwidth must be positive");
    let mut rank = vec![0.0f64; wf.task_count()];
    for &t in wf.topological_order().iter().rev() {
        let exec = mode.work(wf, t) / speed;
        let mut tail: f64 = 0.0;
        for &e in wf.out_edges(t) {
            let edge = wf.edge(e);
            tail = tail.max(edge.size / bw + rank[edge.to.index()]);
        }
        rank[t.index()] = exec + tail;
    }
    rank
}

/// Task ids ordered by non-increasing bottom level — the `ListT` priority
/// list of HEFT/HEFTBUDG. Ties break on task id for determinism.
pub fn heft_order(wf: &Workflow, mode: WeightMode, speed: f64, bw: f64) -> Vec<TaskId> {
    let rank = bottom_levels(wf, mode, speed, bw);
    let mut ids: Vec<TaskId> = wf.task_ids().collect();
    // `total_cmp`, not `partial_cmp(..).unwrap()`: a degenerate workflow
    // (e.g. zero total weight feeding a 0/0 in a budget share) can make
    // ranks NaN, and the order must stay total and deterministic.
    ids.sort_by(|a, b| rank[b.index()].total_cmp(&rank[a.index()]).then(a.0.cmp(&b.0)));
    ids
}

/// The critical path: the entry→exit chain with maximal total duration
/// (execution at `speed` + transfers at `bw`). Returns `(path, length_secs)`.
pub fn critical_path(wf: &Workflow, mode: WeightMode, speed: f64, bw: f64) -> (Vec<TaskId>, f64) {
    let rank = bottom_levels(wf, mode, speed, bw);
    // Start from the entry task with the largest rank, then repeatedly follow
    // the successor that realizes the max in the rank recurrence.
    // NaN-safe selection: `total_cmp` keeps the max well-defined even when
    // ranks contain NaN (empty workflows cannot be built, so an entry task
    // always exists — but avoid a panic site anyway).
    let Some(start) = wf
        .entry_tasks()
        .max_by(|a, b| rank[a.index()].total_cmp(&rank[b.index()]))
    else {
        return (Vec::new(), 0.0);
    };
    let mut path = vec![start];
    let mut cur = start;
    loop {
        let mut best: Option<(TaskId, f64)> = None;
        for &e in wf.out_edges(cur) {
            let edge = wf.edge(e);
            let via = edge.size / bw + rank[edge.to.index()];
            if best.is_none_or(|(_, v)| via > v) {
                best = Some((edge.to, via));
            }
        }
        match best {
            Some((next, _)) => {
                path.push(next);
                cur = next;
            }
            None => break,
        }
    }
    (path, rank[start.index()])
}

/// Summary statistics of a workflow's shape.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowStats {
    /// Number of tasks.
    pub tasks: usize,
    /// Number of edges.
    pub edges: usize,
    /// Number of levels (longest path length + 1).
    pub depth: usize,
    /// Maximum level population (degree of parallelism).
    pub width: usize,
    /// Number of entry tasks.
    pub entries: usize,
    /// Number of exit tasks.
    pub exits: usize,
    /// Total mean work (Gflop).
    pub total_work: f64,
    /// Total intra-workflow data (bytes).
    pub total_data: f64,
    /// Communication-to-computation ratio: bytes per unit of work.
    pub ccr: f64,
}

/// Compute [`WorkflowStats`].
pub fn stats(wf: &Workflow) -> WorkflowStats {
    let lv = levels(wf);
    let total_work = wf.total_mean_work();
    let total_data = wf.total_edge_data();
    WorkflowStats {
        tasks: wf.task_count(),
        edges: wf.edge_count(),
        depth: lv.len(),
        width: lv.iter().map(Vec::len).max().unwrap_or(0),
        entries: wf.entry_tasks().count(),
        exits: wf.exit_tasks().count(),
        total_work,
        total_data,
        ccr: if total_work > 0.0 { total_data / total_work } else { 0.0 },
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use crate::graph::WorkflowBuilder;
    use crate::task::StochasticWeight;

    fn w(mean: f64) -> StochasticWeight {
        StochasticWeight::fixed(mean)
    }

    /// a(1) -> b(2) -> d(4); a -> c(8) -> d. Edges all 10 bytes.
    fn diamond() -> Workflow {
        let mut b = WorkflowBuilder::new("diamond");
        let a = b.add_task("a", w(1.0));
        let t1 = b.add_task("b", w(2.0));
        let t2 = b.add_task("c", w(8.0));
        let d = b.add_task("d", w(4.0));
        for (f, t) in [(a, t1), (a, t2), (t1, d), (t2, d)] {
            b.add_edge(f, t, 10.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn levels_of_diamond() {
        let wf = diamond();
        let lv = levels(&wf);
        assert_eq!(lv.len(), 3);
        assert_eq!(lv[0], vec![TaskId(0)]);
        assert_eq!(lv[1], vec![TaskId(1), TaskId(2)]);
        assert_eq!(lv[2], vec![TaskId(3)]);
        assert_eq!(level_of(&wf), vec![0, 1, 1, 2]);
    }

    #[test]
    fn bottom_levels_unit_speed_no_comm() {
        let wf = diamond();
        // speed 1, bandwidth huge => pure compute ranks.
        let r = bottom_levels(&wf, WeightMode::Mean, 1.0, 1e18);
        assert!((r[3] - 4.0).abs() < 1e-9);
        assert!((r[1] - 6.0).abs() < 1e-9);
        assert!((r[2] - 12.0).abs() < 1e-9);
        assert!((r[0] - 13.0).abs() < 1e-9);
    }

    #[test]
    fn bottom_levels_include_transfers() {
        let wf = diamond();
        // speed 1, bw 10 bytes/s => each edge adds 1 s.
        let r = bottom_levels(&wf, WeightMode::Mean, 1.0, 10.0);
        assert!((r[3] - 4.0).abs() < 1e-9);
        assert!((r[2] - (8.0 + 1.0 + 4.0)).abs() < 1e-9);
        assert!((r[0] - (1.0 + 1.0 + 13.0)).abs() < 1e-9);
    }

    #[test]
    fn heft_order_is_descending_rank() {
        let wf = diamond();
        let order = heft_order(&wf, WeightMode::Mean, 1.0, 1e18);
        assert_eq!(order, vec![TaskId(0), TaskId(2), TaskId(1), TaskId(3)]);
    }

    #[test]
    fn heft_order_respects_precedence() {
        // For any DAG, sorting by bottom level is a valid topological order
        // when all edge costs are non-negative.
        let wf = diamond();
        let order = heft_order(&wf, WeightMode::Conservative, 2.0, 100.0);
        let mut pos = vec![0; wf.task_count()];
        for (i, t) in order.iter().enumerate() {
            pos[t.index()] = i;
        }
        for e in wf.edges() {
            assert!(pos[e.from.index()] < pos[e.to.index()]);
        }
    }

    #[test]
    fn critical_path_of_diamond() {
        let wf = diamond();
        let (path, len) = critical_path(&wf, WeightMode::Mean, 1.0, 10.0);
        assert_eq!(path, vec![TaskId(0), TaskId(2), TaskId(3)]);
        assert!((len - 15.0).abs() < 1e-9);
    }

    #[test]
    fn conservative_mode_uses_sigma() {
        let wf = diamond().with_sigma_ratio(1.0); // σ = mean => weight doubles
        let r_mean = bottom_levels(&wf, WeightMode::Mean, 1.0, 1e18);
        let r_cons = bottom_levels(&wf, WeightMode::Conservative, 1.0, 1e18);
        for (m, c) in r_mean.iter().zip(&r_cons) {
            assert!((c - 2.0 * m).abs() < 1e-9);
        }
    }

    #[test]
    fn stats_of_diamond() {
        let wf = diamond();
        let s = stats(&wf);
        assert_eq!(s.tasks, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.depth, 3);
        assert_eq!(s.width, 2);
        assert_eq!(s.entries, 1);
        assert_eq!(s.exits, 1);
        assert!((s.total_work - 15.0).abs() < 1e-9);
        assert!((s.total_data - 40.0).abs() < 1e-9);
    }

    /// Regression: a zero-weight workflow used to panic in `heft_order` /
    /// `critical_path` once a NaN rank appeared. The NaN arises exactly as
    /// in the paper's budget split (Eq. 5–6): a per-task share `w_i / W`
    /// with total work `W = 0` is `0.0 / 0.0`. The analyses must stay
    /// panic-free and deterministic.
    #[test]
    fn nan_ranks_from_zero_weight_workflow_do_not_panic() {
        let total_work: f64 = 0.0; // zero-weight workflow
        let share = 0.0 / total_work; // Eq. 5 share: 0/0 = NaN
        assert!(share.is_nan());
        // Bypass the constructor assert the way a buggy caller would: the
        // fields are public, and upstream arithmetic can hand over a NaN.
        let w = StochasticWeight { mean: share, std_dev: 0.0 };
        let mut b = WorkflowBuilder::new("zero");
        let a = b.add_task("a", w);
        let c = b.add_task("c", w);
        let d = b.add_task("d", w);
        b.add_edge(a, c, 0.0).unwrap();
        b.add_edge(a, d, 0.0).unwrap();
        let wf = b.build().unwrap();
        let ranks = bottom_levels(&wf, WeightMode::Mean, 1.0, 1.0);
        assert!(ranks.iter().all(|r| r.is_nan()), "0/0 weights make every rank NaN");
        // Before the total_cmp migration both of these panicked.
        let o1 = heft_order(&wf, WeightMode::Mean, 1.0, 1.0);
        let o2 = heft_order(&wf, WeightMode::Mean, 1.0, 1.0);
        assert_eq!(o1, o2, "NaN ranks still give a deterministic order");
        assert_eq!(o1.len(), 3);
        let (path, len) = critical_path(&wf, WeightMode::Mean, 1.0, 1.0);
        assert!(!path.is_empty());
        assert!(len.is_nan());
    }

    #[test]
    fn chain_has_width_one() {
        let mut b = WorkflowBuilder::new("chain");
        let mut prev = b.add_task("t0", w(1.0));
        for i in 1..5 {
            let t = b.add_task(format!("t{i}"), w(1.0));
            b.add_edge(prev, t, 1.0).unwrap();
            prev = t;
        }
        let wf = b.build().unwrap();
        let s = stats(&wf);
        assert_eq!(s.depth, 5);
        assert_eq!(s.width, 1);
        let lv = levels(&wf);
        assert!(lv.iter().all(|l| l.len() == 1));
    }
}
