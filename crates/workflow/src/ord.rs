//! Total-order wrapper for `f64` keys.
//!
//! Scheduling is full of lexicographic comparison keys that mix floats with
//! integers (EFT, cost, VM id, ...). Comparing those tuples through
//! `PartialOrd` silently mis-orders — or, via `partial_cmp(..).unwrap()`,
//! panics — as soon as a NaN slips in (e.g. from the budget split of paper
//! Eq. 5–6 dividing by a zero total duration). [`OrdF64`] gives such keys a
//! real `Ord` based on [`f64::total_cmp`], so tuple comparisons are total
//! and NaN-safe by construction.

use std::cmp::Ordering;

/// An `f64` ordered by [`f64::total_cmp`] (IEEE 754 totalOrder).
///
/// For the finite, non-NaN, non-negative values scheduling keys are made of,
/// the order agrees exactly with the usual `<` on `f64`; in addition NaNs
/// sort above `+∞` (and `-0.0` below `+0.0`) instead of poisoning the
/// comparison. Wrap each float component of a comparison key:
///
/// ```
/// use wfs_workflow::OrdF64;
/// let a = (OrdF64(1.0), 3u32);
/// let b = (OrdF64(1.0), 7u32);
/// assert!(a < b); // float ties fall through to the integer tie-breaker
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct OrdF64(pub f64);

impl PartialEq for OrdF64 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for OrdF64 {
    #[inline]
    fn from(v: f64) -> Self {
        Self(v)
    }
}

impl From<OrdF64> for f64 {
    #[inline]
    fn from(v: OrdF64) -> f64 {
        v.0
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;

    #[test]
    fn agrees_with_partial_ord_on_normal_values() {
        let vals = [0.0, 1.0, 1.5, 1e300, f64::INFINITY];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(OrdF64(a) < OrdF64(b), a < b);
                assert_eq!(OrdF64(a) == OrdF64(b), a == b);
            }
        }
    }

    #[test]
    fn nan_is_ordered_not_poisonous() {
        let nan = OrdF64(f64::NAN);
        assert!(OrdF64(f64::INFINITY) < nan);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        let mut v = [nan, OrdF64(1.0), OrdF64(-1.0)];
        v.sort(); // does not panic, total order
        assert_eq!(v[0].0, -1.0);
        assert_eq!(v[1].0, 1.0);
        assert!(v[2].0.is_nan());
    }

    #[test]
    fn tuple_keys_tie_break() {
        let a = (OrdF64(2.0), OrdF64(1.0), 0u8, 5u32);
        let b = (OrdF64(2.0), OrdF64(1.0), 0u8, 9u32);
        assert!(a < b);
        assert!((OrdF64(1.0), 9u32) < (OrdF64(2.0), 0u32));
    }
}
