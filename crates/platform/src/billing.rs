//! Billing policies: how VM usage duration converts into charged time.

use serde::{Deserialize, Serialize};

/// Granularity at which VM usage time is billed. The paper's platform bills
/// "for each used second" (§V-A); per-hour billing (classic EC2) and exact
/// continuous billing are provided for ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum BillingPolicy {
    /// Round usage up to whole seconds (the paper's model).
    #[default]
    PerSecond,
    /// Round usage up to whole hours (classic IaaS billing).
    PerHour,
    /// Charge the exact fractional duration.
    Continuous,
}

impl BillingPolicy {
    /// The number of seconds actually charged for `duration` seconds of use.
    pub fn charged_seconds(self, duration: f64) -> f64 {
        assert!(duration >= 0.0, "usage duration cannot be negative");
        match self {
            BillingPolicy::PerSecond => duration.ceil(),
            BillingPolicy::PerHour => (duration / 3600.0).ceil() * 3600.0,
            BillingPolicy::Continuous => duration,
        }
    }

    /// Cost of using a resource priced `cost_per_second` for `duration`
    /// seconds under this policy.
    #[inline]
    pub fn usage_cost(self, duration: f64, cost_per_second: f64) -> f64 {
        self.charged_seconds(duration) * cost_per_second
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;

    #[test]
    fn per_second_rounds_up() {
        assert_eq!(BillingPolicy::PerSecond.charged_seconds(10.2), 11.0);
        assert_eq!(BillingPolicy::PerSecond.charged_seconds(10.0), 10.0);
        assert_eq!(BillingPolicy::PerSecond.charged_seconds(0.0), 0.0);
    }

    #[test]
    fn per_hour_rounds_up_to_hours() {
        assert_eq!(BillingPolicy::PerHour.charged_seconds(1.0), 3600.0);
        assert_eq!(BillingPolicy::PerHour.charged_seconds(3600.0), 3600.0);
        assert_eq!(BillingPolicy::PerHour.charged_seconds(3601.0), 7200.0);
    }

    #[test]
    fn continuous_is_exact() {
        assert_eq!(BillingPolicy::Continuous.charged_seconds(10.2), 10.2);
    }

    #[test]
    fn usage_cost_multiplies() {
        assert!((BillingPolicy::PerSecond.usage_cost(9.5, 0.01) - 0.10).abs() < 1e-12);
    }

    #[test]
    fn policies_ordered_by_generosity() {
        // Continuous <= PerSecond <= PerHour for any duration.
        for d in [0.1, 1.0, 59.9, 3599.0, 7201.5] {
            let c = BillingPolicy::Continuous.charged_seconds(d);
            let s = BillingPolicy::PerSecond.charged_seconds(d);
            let h = BillingPolicy::PerHour.charged_seconds(d);
            assert!(c <= s && s <= h, "d={d}");
        }
    }
}
