//! VM categories: the heterogeneous processing units of the platform.

use serde::{Deserialize, Serialize};

/// Index of a VM category within a [`crate::Platform`]. Categories are
/// sorted by non-decreasing hourly cost (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CategoryId(pub u32);

impl CategoryId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CategoryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cat{}", self.0)
    }
}

/// A VM category `k`: speed `s_k`, per-hour cost `c_h,k`, one-time init
/// cost `c_ini,k`, boot delay `t_boot` (uncharged), and processor count
/// `n_k` (paper §III-B; the evaluation uses single-processor VMs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmCategory {
    /// Display name, e.g. `small`.
    pub name: String,
    /// Instructions per second (work units/s; we use Gflop/s scale).
    pub speed: f64,
    /// Cost per hour of usage, in dollars (`c_h,k`).
    pub cost_per_hour: f64,
    /// One-time cost charged when the VM is started (`c_ini,k`).
    pub init_cost: f64,
    /// Boot delay in seconds before the VM can process tasks (`t_boot`);
    /// this time is *not* charged (paper §III-B).
    pub boot_time: f64,
    /// Number of processors `n_k` (1 in the paper's evaluation).
    pub processors: u32,
}

impl VmCategory {
    /// A new single-processor category. Panics on non-positive speed or
    /// negative costs/delays (platform definitions are code, not input).
    pub fn new(
        name: impl Into<String>,
        speed: f64,
        cost_per_hour: f64,
        init_cost: f64,
        boot_time: f64,
    ) -> Self {
        assert!(speed.is_finite() && speed > 0.0, "VM speed must be positive");
        assert!(cost_per_hour.is_finite() && cost_per_hour >= 0.0);
        assert!(init_cost.is_finite() && init_cost >= 0.0);
        assert!(boot_time.is_finite() && boot_time >= 0.0);
        Self { name: name.into(), speed, cost_per_hour, init_cost, boot_time, processors: 1 }
    }

    /// Cost per *second* of usage.
    #[inline]
    pub fn cost_per_second(&self) -> f64 {
        self.cost_per_hour / 3600.0
    }

    /// Seconds to execute `work` units on this category.
    #[inline]
    pub fn exec_time(&self, work: f64) -> f64 {
        work / self.speed
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;

    #[test]
    fn exec_time_divides_by_speed() {
        let c = VmCategory::new("m", 20.0, 0.10, 0.005, 100.0);
        assert_eq!(c.exec_time(100.0), 5.0);
    }

    #[test]
    fn per_second_cost() {
        let c = VmCategory::new("m", 20.0, 3.6, 0.0, 0.0);
        assert!((c.cost_per_second() - 0.001).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_rejected() {
        VmCategory::new("bad", 0.0, 0.1, 0.0, 0.0);
    }
}
