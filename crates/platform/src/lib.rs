//! # wfs-platform — the IaaS Cloud platform model
//!
//! Substrate crate of the budget-aware scheduling reproduction (IPDPSW
//! 2018, §III-B/C): heterogeneous VM categories (speed, hourly cost, init
//! cost, uncharged boot delay), a single datacenter relaying every transfer,
//! and a configurable billing policy (per-second in the paper).
//!
//! ```
//! use wfs_platform::Platform;
//!
//! let p = Platform::paper_default();
//! assert_eq!(p.category_count(), 3);
//! // Eq. 1: usage cost + init cost.
//! let cost = p.vm_cost(p.cheapest(), 3600.0);
//! assert!((cost - (0.05 + 0.0001)).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

mod billing;
mod datacenter;
mod platform;
mod vm;

pub use billing::BillingPolicy;
pub use datacenter::Datacenter;
pub use platform::Platform;
pub use vm::{CategoryId, VmCategory};
