//! The datacenter: the single crossing point of all data exchanges.

use serde::{Deserialize, Serialize};

/// Datacenter parameters (paper §III-B/C). All VM↔VM communication is
/// relayed through it; external input/output data also transit here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Datacenter {
    /// Bandwidth between any VM and the datacenter, bytes/s, identical in
    /// both directions (`bw`).
    pub bandwidth: f64,
    /// Cost per hour of datacenter usage (`c_h,DC`), charged over
    /// `H_end,last − H_start,first` (Eq. 2).
    pub cost_per_hour: f64,
    /// Transfer cost per byte for data crossing the platform boundary
    /// (`c_iof`), applied to `size(d_in,DC) + size(d_DC,out)` (Eq. 2).
    pub io_cost_per_byte: f64,
}

impl Datacenter {
    /// A new datacenter. Panics on non-positive bandwidth / negative costs.
    pub fn new(bandwidth: f64, cost_per_hour: f64, io_cost_per_byte: f64) -> Self {
        assert!(bandwidth.is_finite() && bandwidth > 0.0, "bandwidth must be positive");
        assert!(cost_per_hour.is_finite() && cost_per_hour >= 0.0);
        assert!(io_cost_per_byte.is_finite() && io_cost_per_byte >= 0.0);
        Self { bandwidth, cost_per_hour, io_cost_per_byte }
    }

    /// Seconds to move `bytes` between a VM and the datacenter.
    #[inline]
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        bytes / self.bandwidth
    }

    /// Cost per second of datacenter usage.
    #[inline]
    pub fn cost_per_second(&self) -> f64 {
        self.cost_per_hour / 3600.0
    }

    /// The full datacenter cost `C_DC` (Eq. 2) for an execution spanning
    /// `duration` seconds and moving `external_bytes` across the boundary.
    pub fn cost(&self, duration: f64, external_bytes: f64) -> f64 {
        external_bytes * self.io_cost_per_byte + duration * self.cost_per_second()
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;

    #[test]
    fn transfer_time_divides_by_bandwidth() {
        let dc = Datacenter::new(125e6, 0.022, 0.055e-9);
        assert_eq!(dc.transfer_time(125e6), 1.0);
        assert_eq!(dc.transfer_time(0.0), 0.0);
    }

    #[test]
    fn cost_combines_io_and_duration() {
        let dc = Datacenter::new(1e6, 3.6, 1e-9);
        // 1 GB external + 10 s duration at $0.001/s.
        let c = dc.cost(10.0, 1e9);
        assert!((c - (1.0 + 0.01)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        Datacenter::new(0.0, 0.0, 0.0);
    }
}
