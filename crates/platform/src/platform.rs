//! The complete platform: VM categories + datacenter + billing policy.

use crate::billing::BillingPolicy;
use crate::datacenter::Datacenter;
use crate::vm::{CategoryId, VmCategory};
use serde::{Deserialize, Serialize};

/// An IaaS Cloud platform (paper §III-B): `k` VM categories sorted by
/// non-decreasing hourly cost, a single datacenter relaying all transfers,
/// and a billing policy. On-demand provisioning: any number of VMs of any
/// category can be started at any time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    categories: Vec<VmCategory>,
    /// The shared datacenter.
    pub datacenter: Datacenter,
    /// How VM usage time is charged.
    pub billing: BillingPolicy,
}

impl Platform {
    /// Build a platform. Categories are sorted by hourly cost (the paper's
    /// convention `c_h,1 <= c_h,2 <= ...`; speeds are *expected* but not
    /// required to follow the same order).
    ///
    /// # Panics
    /// If `categories` is empty.
    pub fn new(mut categories: Vec<VmCategory>, datacenter: Datacenter) -> Self {
        assert!(!categories.is_empty(), "platform needs at least one VM category");
        categories.sort_by(|a, b| {
            a.cost_per_hour.total_cmp(&b.cost_per_hour).then(a.speed.total_cmp(&b.speed))
        });
        Self { categories, datacenter, billing: BillingPolicy::PerSecond }
    }

    /// Override the billing policy.
    pub fn with_billing(mut self, billing: BillingPolicy) -> Self {
        self.billing = billing;
        self
    }

    /// The platform used throughout the paper's evaluation (Table II):
    /// 3 categories with cost increasing in speed, per-second billing,
    /// 100 s uncharged boot delay, and the datacenter prices quoted in the
    /// paper ($0.022/h usage, $0.055/GB boundary transfers, 125 MB/s).
    ///
    /// The scanned Table II is partly illegible; see DESIGN.md §3 for the
    /// calibration rationale. Pricing is mildly super-linear in speed
    /// (cost per Gflop rises with the category, as with real providers'
    /// size ladders) — with *exactly* proportional pricing the cost of a
    /// unit of work is category-independent and the budget/speed trade-off
    /// the paper studies degenerates. Speeds are in Gflop/s and task
    /// weights in Gflop, so `weight/speed` is seconds.
    pub fn paper_default() -> Self {
        Self::new(
            vec![
                VmCategory::new("small", 10.0, 0.05, 0.0001, 100.0),
                VmCategory::new("medium", 20.0, 0.12, 0.0001, 100.0),
                VmCategory::new("large", 40.0, 0.30, 0.0001, 100.0),
            ],
            Datacenter::new(125.0e6, 0.022, 0.055e-9),
        )
    }

    /// A platform with a *wide* speed ladder (16× between the smallest and
    /// largest category, like real providers' size ranges), used by the
    /// online re-scheduling study: migrating an interrupted task — which
    /// must redo its work from scratch — can only pay off when much faster
    /// VMs exist (see `wfs-scheduler::online`).
    pub fn wide_ladder() -> Self {
        Self::new(
            vec![
                VmCategory::new("nano", 5.0, 0.03, 0.0001, 60.0),
                VmCategory::new("std", 20.0, 0.15, 0.0001, 60.0),
                VmCategory::new("xl", 80.0, 0.80, 0.0001, 60.0),
            ],
            Datacenter::new(125.0e6, 0.022, 0.055e-9),
        )
    }

    /// Number of categories `k`.
    #[inline]
    pub fn category_count(&self) -> usize {
        self.categories.len()
    }

    /// All categories, cheapest first.
    #[inline]
    pub fn categories(&self) -> &[VmCategory] {
        &self.categories
    }

    /// The category with the given id.
    #[inline]
    pub fn category(&self, id: CategoryId) -> &VmCategory {
        &self.categories[id.index()]
    }

    /// Ids of all categories, cheapest first.
    pub fn category_ids(&self) -> impl Iterator<Item = CategoryId> + '_ {
        (0..self.categories.len() as u32).map(CategoryId)
    }

    /// The cheapest category (per hour) — `cat0` by construction.
    #[inline]
    pub fn cheapest(&self) -> CategoryId {
        CategoryId(0)
    }

    /// The most expensive category (per hour).
    #[inline]
    pub fn most_expensive(&self) -> CategoryId {
        CategoryId(self.categories.len() as u32 - 1)
    }

    /// The fastest category (highest speed; not necessarily the priciest).
    pub fn fastest(&self) -> CategoryId {
        // Like `Iterator::max_by`, keep the *last* maximal element on speed
        // ties; `total_cmp` keeps the fold well-defined for any input.
        let mut best = CategoryId(0);
        for id in self.category_ids() {
            if self.category(id).speed.total_cmp(&self.category(best).speed).is_ge() {
                best = id;
            }
        }
        best
    }

    /// Mean speed `s̄` over categories — the speed the budget-division
    /// estimates plan with (paper Eq. 5).
    pub fn mean_speed(&self) -> f64 {
        self.categories.iter().map(|c| c.speed).sum::<f64>() / self.categories.len() as f64
    }

    /// Cost of one VM of category `cat` used for `duration` seconds:
    /// Eq. 1, `C_v = charged(H_end − H_start) · c_h,k + c_ini,k`.
    pub fn vm_cost(&self, cat: CategoryId, duration: f64) -> f64 {
        let c = self.category(cat);
        self.billing.usage_cost(duration, c.cost_per_second()) + c.init_cost
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let p = Platform::paper_default();
        assert_eq!(p.category_count(), 3);
        // Sorted by cost; speeds follow; cost per unit of work rises with
        // the category (mildly super-linear pricing — DESIGN.md §3).
        let cats = p.categories();
        for w in cats.windows(2) {
            assert!(w[0].cost_per_hour <= w[1].cost_per_hour);
            assert!(w[0].speed <= w[1].speed);
            assert!(
                w[0].cost_per_hour / w[0].speed <= w[1].cost_per_hour / w[1].speed + 1e-12,
                "cost per Gflop must not decrease with category"
            );
        }
        assert_eq!(p.mean_speed(), (10.0 + 20.0 + 40.0) / 3.0);
    }

    #[test]
    fn categories_sorted_on_construction() {
        let p = Platform::new(
            vec![
                VmCategory::new("big", 40.0, 0.20, 0.0, 0.0),
                VmCategory::new("tiny", 10.0, 0.05, 0.0, 0.0),
            ],
            Datacenter::new(1e6, 0.0, 0.0),
        );
        assert_eq!(p.category(p.cheapest()).name, "tiny");
        assert_eq!(p.category(p.most_expensive()).name, "big");
        assert_eq!(p.fastest(), p.most_expensive());
    }

    #[test]
    fn fastest_can_differ_from_most_expensive() {
        // The paper does not assume speed follows cost; exercise that case.
        let p = Platform::new(
            vec![
                VmCategory::new("cheap-fast", 50.0, 0.05, 0.0, 0.0),
                VmCategory::new("pricey-slow", 10.0, 0.20, 0.0, 0.0),
            ],
            Datacenter::new(1e6, 0.0, 0.0),
        );
        assert_eq!(p.category(p.fastest()).name, "cheap-fast");
        assert_eq!(p.category(p.most_expensive()).name, "pricey-slow");
    }

    #[test]
    fn vm_cost_eq1() {
        let p = Platform::paper_default();
        // medium: $0.12/h; 10 s usage + init.
        let c = p.vm_cost(CategoryId(1), 10.0);
        assert!((c - (10.0 * 0.12 / 3600.0 + 0.0001)).abs() < 1e-12);
    }

    #[test]
    fn per_second_billing_rounds_up_in_vm_cost() {
        let p = Platform::paper_default();
        assert_eq!(p.vm_cost(CategoryId(0), 10.5), p.vm_cost(CategoryId(0), 11.0));
    }

    #[test]
    #[should_panic(expected = "at least one VM category")]
    fn empty_platform_rejected() {
        Platform::new(vec![], Datacenter::new(1e6, 0.0, 0.0));
    }

    #[test]
    fn serde_roundtrip() {
        let p = Platform::paper_default();
        let json = serde_json::to_string(&p).unwrap();
        let back: Platform = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
