//! Experiment harness regenerating every table and figure of the paper.
//!
//! ```text
//! wfs-experiments [--fast] <command>
//!
//! commands:
//!   fig1      Fig. 1 — MIN-MIN(BUDG)/HEFT(BUDG) vs budget (makespan, cost, VMs)
//!   fig2      Fig. 2 — HEFTBUDG+/+INV vs HEFT/HEFTBUDG
//!   fig3      Fig. 3 — vs BDT and CG (makespan, % valid, cost)
//!   fig4      Fig. 4 — HEFTBUDG+/+INV vs CG+
//!   table3a   Table III(a) — scheduling CPU time vs budget (MONTAGE-90)
//!   table3b   Table III(b) — scheduling CPU time vs task count
//!   sigma     extended: impact of the uncertainty level σ
//!   sizes     extended: budget needed to match the baseline, per size
//!   online    extended: online re-scheduling study (§VI future work)
//!   extras    extended: MAX-MIN(BUDG) / SUFFERAGE(BUDG) sweep
//!   deadline  extended: budget needed per deadline (Eq. 3)
//!   robustness extended: Gaussian-planned schedules under heavy-tailed reality
//!   faults    extended: fault injection + budget-aware recovery grid
//!   counters  extended: planner work counters per algorithm (traced runs)
//!   platform  Table II — print the platform instantiation
//!   all       everything above
//!
//! `--fast` shrinks instances/replays for smoke runs. Outputs land in
//! `results/` (override with WFS_RESULTS_DIR).
//! ```

mod common;
mod extended;
mod figures;
mod tables;

use common::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let cmd = args.iter().find(|a| !a.starts_with("--")).cloned().unwrap_or_default();
    let scale = if fast { Scale::fast() } else { Scale::full() };
    let (t3_reps, include_refined) = if fast { (2, false) } else { (10, true) };

    let started = std::time::Instant::now();
    match cmd.as_str() {
        "fig1" => figures::fig1(scale),
        "fig2" => figures::fig2(scale),
        "fig3" => figures::fig3(scale),
        "fig4" => figures::fig4(scale),
        "table3a" => tables::table3a(t3_reps, include_refined),
        "table3b" => tables::table3b(t3_reps, include_refined),
        "sigma" => extended::sigma_sweep(scale.instances, scale.reps),
        "sizes" => extended::size_sweep(),
        "online" => extended::online_study(scale.reps),
        "extras" => extended::extras_sweep(scale),
        "deadline" => extended::deadline_map(),
        "robustness" => extended::robustness(scale.instances, scale.reps),
        "faults" => extended::fault_study(scale.instances, scale.reps.min(10)),
        "counters" => extended::counters_study(),
        "platform" => tables::platform_table(),
        "all" => {
            tables::platform_table();
            figures::fig1(scale);
            figures::fig2(scale);
            figures::fig3(scale);
            figures::fig4(scale);
            tables::table3a(t3_reps, include_refined);
            tables::table3b(t3_reps, include_refined);
            extended::sigma_sweep(scale.instances, scale.reps);
            extended::size_sweep();
            extended::online_study(scale.reps);
            extended::extras_sweep(scale);
            extended::deadline_map();
            extended::robustness(scale.instances, scale.reps);
            extended::fault_study(scale.instances, scale.reps.min(10));
            extended::counters_study();
        }
        other => {
            eprintln!("unknown or missing command `{other}`\n");
            eprintln!(
                "usage: wfs-experiments [--fast] \
                 <fig1|fig2|fig3|fig4|table3a|table3b|sigma|sizes|online|extras|faults|counters|platform|all>"
            );
            std::process::exit(2);
        }
    }
    println!("done in {:.1}s", started.elapsed().as_secs_f64());
}
