//! Shared plumbing for the experiment harness: run matrices, aggregation,
//! CSV/markdown output, and parallel fan-out.

use std::sync::Mutex;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use wfs_platform::Platform;
use wfs_scheduler::{min_cost_schedule, Algorithm};
use wfs_simulator::{simulate, Schedule, SimConfig};
use wfs_workflow::gen::{BenchmarkType, GenConfig};
use wfs_workflow::Workflow;

/// Global experiment scale, switchable for smoke runs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Instances (seeds) per workflow type.
    pub instances: u64,
    /// Stochastic replays per schedule.
    pub reps: u64,
    /// Budget multipliers applied to each workflow's `min_cost` floor.
    pub budget_multipliers: &'static [f64],
}

impl Scale {
    /// Paper-like scale (5 instances × 25 replays), with the multiplier
    /// grid densest in the 1–5× band where the budget actually binds.
    pub fn full() -> Self {
        Self {
            instances: 5,
            reps: 25,
            budget_multipliers: &[
                0.8, 0.9, 1.0, 1.2, 1.4, 1.7, 2.0, 2.5, 3.0, 4.0, 5.0, 8.0, 12.0, 20.0,
            ],
        }
    }

    /// Quick scale for smoke testing the harness.
    pub fn fast() -> Self {
        Self { instances: 2, reps: 5, budget_multipliers: &[1.0, 2.0, 5.0, 12.0] }
    }
}

/// Aggregated statistics of one metric over repetitions.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (population formula, like the paper's
    /// error bars).
    pub std: f64,
}

/// Compute [`Stats`] over a slice.
pub fn stats_of(xs: &[f64]) -> Stats {
    if xs.is_empty() {
        return Stats::default();
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
    Stats { mean, std: var.sqrt() }
}

/// One aggregated result cell of a sweep.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Workflow type.
    pub workflow: &'static str,
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Initial budget handed to the scheduler.
    pub budget: f64,
    /// Makespan statistics over instances × replays.
    pub makespan: Stats,
    /// Total cost statistics.
    pub cost: Stats,
    /// VMs-used statistics.
    pub vms: Stats,
    /// Fraction of runs whose cost fit the budget.
    pub valid_pct: f64,
    /// Mean wall-clock time spent computing the schedule (seconds).
    pub sched_time: Stats,
}

/// The `min_cost` floor of a workflow: total cost of the all-on-one-cheap-VM
/// schedule under conservative weights (the green dot of Fig. 1).
pub fn min_cost_floor(wf: &Workflow, platform: &Platform) -> f64 {
    simulate(wf, platform, &min_cost_schedule(wf, platform), &SimConfig::planning())
        .expect("min-cost schedule is valid")
        .total_cost
}

/// Work item of a sweep: one (workflow instance, algorithm, budget) triple.
struct Job {
    wf_ty: BenchmarkType,
    seed: u64,
    alg: Algorithm,
    budget: f64,
}

/// Raw per-job measurements prior to aggregation.
struct JobResult {
    wf_name: &'static str,
    alg: &'static str,
    budget_mult: f64,
    makespans: Vec<f64>,
    costs: Vec<f64>,
    vms: Vec<f64>,
    valid: Vec<bool>,
    sched_secs: f64,
}

/// Run a full sweep: `types × instances × budgets × algorithms`, each
/// schedule replayed `reps` times with stochastic weights. Budgets are
/// per-instance multiples of the instance's `min_cost` floor, so results
/// aggregate cleanly across instances. Returns one [`Cell`] per
/// (type, algorithm, multiplier).
pub fn sweep(
    types: &[BenchmarkType],
    tasks: usize,
    algorithms: &[Algorithm],
    scale: Scale,
) -> Vec<Cell> {
    let platform = Platform::paper_default();
    let mut jobs = Vec::new();
    for &ty in types {
        for seed in 0..scale.instances {
            for &alg in algorithms {
                for &m in scale.budget_multipliers {
                    jobs.push((
                        Job { wf_ty: ty, seed, alg, budget: m },
                        m, // keep the multiplier for grouping
                    ));
                }
            }
        }
    }

    let results: Mutex<Vec<JobResult>> = Mutex::new(Vec::with_capacity(jobs.len()));
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get()).min(16);

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (job, mult) = &jobs[i];
                let wf = job.wf_ty.generate(GenConfig::new(tasks, job.seed));
                let floor = min_cost_floor(&wf, &platform);
                let budget = floor * job.budget;
                let t0 = std::time::Instant::now();
                let schedule = job.alg.run(&wf, &platform, budget);
                let sched_secs = t0.elapsed().as_secs_f64();
                let r = replay(&wf, &platform, &schedule, budget, scale.reps);
                results.lock().unwrap().push(JobResult {
                    wf_name: job.wf_ty.name(),
                    alg: job.alg.name(),
                    budget_mult: *mult,
                    makespans: r.0,
                    costs: r.1,
                    vms: r.2,
                    valid: r.3,
                    sched_secs,
                });
            });
        }
    });

    aggregate(results.into_inner().expect("worker threads do not panic"))
}

/// Replay a schedule `reps` times; returns (makespans, costs, vms, valid).
#[allow(clippy::type_complexity)]
fn replay(
    wf: &Workflow,
    platform: &Platform,
    schedule: &Schedule,
    budget: f64,
    reps: u64,
) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<bool>) {
    let mut mk = Vec::with_capacity(reps as usize);
    let mut cost = Vec::with_capacity(reps as usize);
    let mut vms = Vec::with_capacity(reps as usize);
    let mut valid = Vec::with_capacity(reps as usize);
    for seed in 0..reps {
        let r = simulate(wf, platform, schedule, &SimConfig::stochastic(seed))
            .expect("schedules from the algorithms are valid");
        mk.push(r.makespan);
        cost.push(r.total_cost);
        vms.push(r.vms_used as f64);
        valid.push(r.within_budget(budget));
    }
    (mk, cost, vms, valid)
}

fn aggregate(raw: Vec<JobResult>) -> Vec<Cell> {
    use std::collections::BTreeMap;
    // Group by (workflow, algorithm, multiplier); merge instance samples.
    let mut groups: BTreeMap<(&str, &str, u64), Vec<&JobResult>> = BTreeMap::new();
    for r in &raw {
        groups
            .entry((r.wf_name, r.alg, r.budget_mult.to_bits()))
            .or_default()
            .push(r);
    }
    groups
        .into_iter()
        .map(|((wf, alg, mult_bits), rs)| {
            let gather = |f: fn(&JobResult) -> &Vec<f64>| -> Vec<f64> {
                rs.iter().flat_map(|r| f(r).iter().copied()).collect()
            };
            let mk = gather(|r| &r.makespans);
            let cost = gather(|r| &r.costs);
            let vms = gather(|r| &r.vms);
            let valid: Vec<bool> = rs.iter().flat_map(|r| r.valid.iter().copied()).collect();
            let sched: Vec<f64> = rs.iter().map(|r| r.sched_secs).collect();
            Cell {
                workflow: wf,
                algorithm: alg,
                budget: f64::from_bits(mult_bits),
                makespan: stats_of(&mk),
                cost: stats_of(&cost),
                vms: stats_of(&vms),
                valid_pct: 100.0 * valid.iter().filter(|&&v| v).count() as f64
                    / valid.len().max(1) as f64,
                sched_time: stats_of(&sched),
            }
        })
        .collect()
}

/// Directory where experiment outputs land.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("WFS_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    std::fs::create_dir_all(&dir).expect("can create results directory");
    PathBuf::from(dir)
}

/// Write cells as CSV (`budget` column is the multiplier over `min_cost`).
pub fn write_csv(path: &Path, cells: &[Cell]) {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).expect("create csv"));
    writeln!(
        f,
        "workflow,algorithm,budget_mult,makespan_mean,makespan_std,cost_mean,cost_std,\
         vms_mean,vms_std,valid_pct,sched_time_mean,sched_time_std"
    )
    .unwrap();
    for c in cells {
        writeln!(
            f,
            "{},{},{},{:.4},{:.4},{:.6},{:.6},{:.2},{:.2},{:.1},{:.6},{:.6}",
            c.workflow,
            c.algorithm,
            c.budget,
            c.makespan.mean,
            c.makespan.std,
            c.cost.mean,
            c.cost.std,
            c.vms.mean,
            c.vms.std,
            c.valid_pct,
            c.sched_time.mean,
            c.sched_time.std
        )
        .unwrap();
    }
}

/// Render cells as a markdown table grouped by workflow type.
pub fn to_markdown(title: &str, cells: &[Cell]) -> String {
    let mut out = String::new();
    writeln!(out, "## {title}\n").unwrap();
    writeln!(
        out,
        "| workflow | algorithm | budget (×min_cost) | makespan (s) | cost ($) | VMs | valid % |"
    )
    .unwrap();
    writeln!(out, "|---|---|---|---|---|---|---|").unwrap();
    for c in cells {
        writeln!(
            out,
            "| {} | {} | {:.2} | {:.0} ± {:.0} | {:.3} ± {:.3} | {:.1} | {:.0} |",
            c.workflow,
            c.algorithm,
            c.budget,
            c.makespan.mean,
            c.makespan.std,
            c.cost.mean,
            c.cost.std,
            c.vms.mean,
            c.valid_pct
        )
        .unwrap();
    }
    out
}

/// Write a text file, logging the path.
pub fn write_text(path: &Path, content: &str) {
    std::fs::write(path, content).expect("write results file");
    println!("wrote {}", path.display());
}
