//! The four figures of the paper's evaluation (§V-B/C/D), regenerated as
//! CSV + markdown sweeps.

use crate::common::{results_dir, sweep, to_markdown, write_csv, write_text, Scale};
use wfs_scheduler::Algorithm;
use wfs_workflow::gen::BenchmarkType;

/// Figure 1: makespan / cost / #VMs vs initial budget for the baselines and
/// the main budget-aware algorithms, 90-task workflows of all three types.
pub fn fig1(scale: Scale) {
    let cells = sweep(
        &BenchmarkType::ALL,
        90,
        &[Algorithm::MinMin, Algorithm::Heft, Algorithm::MinMinBudg, Algorithm::HeftBudg],
        scale,
    );
    let dir = results_dir();
    write_csv(&dir.join("fig1.csv"), &cells);
    write_text(
        &dir.join("fig1.md"),
        &to_markdown(
            "Figure 1 — MIN-MIN(BUDG) and HEFT(BUDG) vs initial budget (90 tasks)",
            &cells,
        ),
    );
    summarize_fig1(&cells);
}

fn summarize_fig1(cells: &[crate::common::Cell]) {
    // Paper claim: HEFT enrolls more VMs than MIN-MIN at unlimited budget.
    for wf in ["cybershake", "ligo", "montage"] {
        let at_max = |alg: &str| {
            cells
                .iter()
                .filter(|c| c.workflow == wf && c.algorithm == alg)
                .max_by(|a, b| a.budget.total_cmp(&b.budget))
                .map(|c| c.vms.mean)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{wf}: VMs at largest budget — HEFT {:.0}, MIN-MIN {:.0}",
            at_max("HEFT"),
            at_max("MIN-MIN")
        );
    }
}

/// Figure 2: the refined variants HEFTBUDG+ / HEFTBUDG+INV against HEFT and
/// HEFTBUDG. The refinements are two orders of magnitude slower to compute,
/// so this sweep uses 30-task workflows at full scale (the paper reports
/// 90; use `WFS_FIG2_TASKS=90` to match it exactly, at ~hours of CPU).
pub fn fig2(scale: Scale) {
    let tasks: usize = std::env::var("WFS_FIG2_TASKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let cells = sweep(
        &BenchmarkType::ALL,
        tasks,
        &[
            Algorithm::Heft,
            Algorithm::HeftBudg,
            Algorithm::HeftBudgPlus,
            Algorithm::HeftBudgPlusInv,
        ],
        scale,
    );
    let dir = results_dir();
    write_csv(&dir.join("fig2.csv"), &cells);
    write_text(
        &dir.join("fig2.md"),
        &to_markdown(
            &format!("Figure 2 — refined variants vs HEFT/HEFTBUDG ({tasks} tasks)"),
            &cells,
        ),
    );
}

/// Figure 3: makespan, % of valid (budget-respecting) runs and spent cost
/// for MIN-MINBUDG, HEFTBUDG and the competitors BDT and CG.
pub fn fig3(scale: Scale) {
    let cells = sweep(
        &BenchmarkType::ALL,
        90,
        &[Algorithm::MinMinBudg, Algorithm::HeftBudg, Algorithm::Bdt, Algorithm::Cg],
        scale,
    );
    let dir = results_dir();
    write_csv(&dir.join("fig3.csv"), &cells);
    write_text(
        &dir.join("fig3.md"),
        &to_markdown("Figure 3 — budget-aware algorithms vs BDT and CG (90 tasks)", &cells),
    );
    // Paper claim: BDT's validity collapses at small budgets (the minimal
    // feasible budget = 1.0 x min_cost).
    for wf in ["cybershake", "ligo", "montage"] {
        let at_floor = |alg: &str| {
            cells
                .iter()
                .filter(|c| c.workflow == wf && c.algorithm == alg)
                .min_by(|a, b| {
                    (a.budget - 1.0).abs().total_cmp(&(b.budget - 1.0).abs())
                })
                .map(|c| c.valid_pct)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{wf} at the minimal budget (1.0x floor): valid% HEFTBUDG {:.0} vs BDT {:.0} vs CG {:.0}",
            at_floor("HEFTBUDG"),
            at_floor("BDT"),
            at_floor("CG")
        );
    }
}

/// Figure 4: HEFTBUDG+ and HEFTBUDG+INV against CG+ (refined competitors).
/// Same size note as [`fig2`].
pub fn fig4(scale: Scale) {
    let tasks: usize = std::env::var("WFS_FIG4_TASKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let cells = sweep(
        &BenchmarkType::ALL,
        tasks,
        &[Algorithm::HeftBudgPlus, Algorithm::HeftBudgPlusInv, Algorithm::CgPlus],
        scale,
    );
    let dir = results_dir();
    write_csv(&dir.join("fig4.csv"), &cells);
    write_text(
        &dir.join("fig4.md"),
        &to_markdown(&format!("Figure 4 — refined variants vs CG+ ({tasks} tasks)"), &cells),
    );
}
