//! Extended-version experiments the paper references in §V-B: the impact
//! of the uncertainty level σ, and of the workflow size, on budget
//! compliance and the budget needed to match the baseline makespan.

use crate::common::{results_dir, stats_of, write_text};
use std::fmt::Write as _;
use wfs_platform::Platform;
use wfs_scheduler::{run_online, Algorithm, OnlineConfig};
use wfs_simulator::{simulate, SimConfig};
use wfs_workflow::gen::{layered_random, BenchmarkType, GenConfig, LayeredParams};

/// σ sweep: for σ ∈ {25, 50, 75, 100}% of the mean, measure HEFTBUDG's and
/// MIN-MINBUDG's budget-compliance rate and makespan at a fixed budget
/// multiplier. Also ablates the conservative `w̄+σ` margin: the same budget
/// with σ = 0 shows what certainty would buy.
pub fn sigma_sweep(instances: u64, reps: u64) {
    let platform = Platform::paper_default();
    let mut md = String::from("## Extended experiment — impact of the uncertainty level σ\n\n");
    md.push_str("| workflow | σ/mean | algorithm | valid % | makespan (s) | cost ($) |\n");
    md.push_str("|---|---|---|---|---|---|\n");
    for ty in BenchmarkType::ALL {
        for sigma in [0.25, 0.5, 0.75, 1.0] {
            for alg in [Algorithm::MinMinBudg, Algorithm::HeftBudg] {
                let mut mks = Vec::new();
                let mut costs = Vec::new();
                let mut valid = 0usize;
                let mut total = 0usize;
                for inst in 0..instances {
                    let wf = ty
                        .generate(GenConfig::new(90, inst).with_sigma_ratio(sigma));
                    let floor = crate::common::min_cost_floor(&wf, &platform);
                    let budget = floor * 2.0;
                    let sched = alg.run(&wf, &platform, budget);
                    for seed in 0..reps {
                        let r = simulate(&wf, &platform, &sched, &SimConfig::stochastic(seed))
                            .expect("valid schedule");
                        mks.push(r.makespan);
                        costs.push(r.total_cost);
                        total += 1;
                        if r.within_budget(budget) {
                            valid += 1;
                        }
                    }
                }
                let mk = stats_of(&mks);
                let c = stats_of(&costs);
                writeln!(
                    md,
                    "| {} | {:.0}% | {} | {:.0} | {:.0} ± {:.0} | {:.3} ± {:.3} |",
                    ty.name(),
                    sigma * 100.0,
                    alg.name(),
                    100.0 * valid as f64 / total as f64,
                    mk.mean,
                    mk.std,
                    c.mean,
                    c.std
                )
                .unwrap();
            }
        }
        println!("sigma sweep: {} done", ty.name());
    }
    write_text(&results_dir().join("ext_sigma.md"), &md);
}

/// Model-misspecification robustness: the algorithms plan assuming
/// Gaussian weights (`w̄ + σ` margin); what happens when reality is
/// heavy-tailed (log-normal with the same two moments)? Measures budget
/// compliance and makespan inflation per benchmark type.
pub fn robustness(instances: u64, reps: u64) {
    use wfs_simulator::WeightModel;
    let platform = Platform::paper_default();
    let mut md = String::from(
        "## Extended experiment — robustness to weight-model misspecification\n\n\
         HEFTBUDG plans with the Gaussian-motivated `w̄+σ` margin; executions are\n\
         replayed under Gaussian vs log-normal (same mean/σ) weights, budget = 2 x min_cost.\n\n\
         | workflow | weights | valid % | makespan (s) | cost ($) |\n|---|---|---|---|---|\n",
    );
    for ty in BenchmarkType::ALL {
        for (label, heavy) in [("gaussian", false), ("log-normal", true)] {
            let mut mks = Vec::new();
            let mut costs = Vec::new();
            let mut valid = 0usize;
            let mut total = 0usize;
            for inst in 0..instances {
                let wf = ty.generate(GenConfig::new(90, inst));
                let floor = crate::common::min_cost_floor(&wf, &platform);
                let budget = floor * 2.0;
                let (sched, _) = wfs_scheduler::heft_budg(&wf, &platform, budget);
                for seed in 0..reps {
                    let model = if heavy {
                        WeightModel::HeavyTail { seed }
                    } else {
                        WeightModel::Stochastic { seed }
                    };
                    let r = simulate(&wf, &platform, &sched, &SimConfig::new(model))
                        .expect("valid schedule");
                    mks.push(r.makespan);
                    costs.push(r.total_cost);
                    total += 1;
                    valid += r.within_budget(budget) as usize;
                }
            }
            let mk = stats_of(&mks);
            let c = stats_of(&costs);
            writeln!(
                md,
                "| {} | {} | {:.0} | {:.0} ± {:.0} | {:.3} ± {:.3} |",
                ty.name(),
                label,
                100.0 * valid as f64 / total as f64,
                mk.mean,
                mk.std,
                c.mean,
                c.std
            )
            .unwrap();
        }
        println!("robustness: {} done", ty.name());
    }
    write_text(&results_dir().join("ext_robustness.md"), &md);
}

/// Deadline/budget trade-off map — the paper's full objective (Eq. 3):
/// for each benchmark type, the minimal budget (multiple of min_cost)
/// HEFTBUDG needs to meet deadlines expressed as multiples of the
/// unconstrained HEFT makespan.
pub fn deadline_map() {
    use wfs_scheduler::min_budget_for_deadline;
    let platform = Platform::paper_default();
    let mut md = String::from(
        "## Extended experiment — budget needed per deadline (Eq. 3)\n\n\
         Minimal budget (× min_cost) for HEFTBUDG to meet a deadline of k × the\n\
         unconstrained HEFT makespan, under conservative planning (90 tasks).\n\n\
         | workflow | 1.0× | 1.2× | 1.5× | 2× | 4× | 8× |\n|---|---|---|---|---|---|---|\n",
    );
    for ty in BenchmarkType::ALL {
        let wf = ty.generate(GenConfig::new(90, 1));
        let floor = crate::common::min_cost_floor(&wf, &platform);
        let base_sched = Algorithm::Heft.run(&wf, &platform, f64::INFINITY);
        let base = simulate(&wf, &platform, &base_sched, &SimConfig::planning())
            .expect("valid")
            .makespan;
        write!(md, "| {} |", ty.name()).unwrap();
        for k in [1.0, 1.2, 1.5, 2.0, 4.0, 8.0] {
            match min_budget_for_deadline(&wf, &platform, base * k) {
                Some((b, _)) => write!(md, " {:.2}× |", b / floor).unwrap(),
                None => write!(md, " — |").unwrap(),
            }
        }
        md.push('\n');
        println!("deadline map: {} done", ty.name());
    }
    write_text(&results_dir().join("ext_deadline.md"), &md);
}

/// Extension heuristics sweep: MAX-MIN(BUDG) and SUFFERAGE(BUDG) against
/// the paper's MIN-MINBUDG/HEFTBUDG on the three benchmarks — testing
/// whether the budget machinery (Alg. 1–2) composes with other list
/// schedulers as §IV claims.
pub fn extras_sweep(scale: crate::common::Scale) {
    let cells = crate::common::sweep(
        &BenchmarkType::ALL,
        90,
        &[
            Algorithm::MinMinBudg,
            Algorithm::HeftBudg,
            Algorithm::MaxMinBudg,
            Algorithm::SufferageBudg,
        ],
        scale,
    );
    let dir = results_dir();
    crate::common::write_csv(&dir.join("ext_heuristics.csv"), &cells);
    write_text(
        &dir.join("ext_heuristics.md"),
        &crate::common::to_markdown(
            "Extension — budget-aware MAX-MIN and SUFFERAGE vs the paper's algorithms (90 tasks)",
            &cells,
        ),
    );
}

/// Online re-scheduling study (paper §VI future work): static HEFTBUDG vs
/// watchdog-driven interruption/migration, across weight distributions
/// (Gaussian vs heavy-tailed) and watchdog thresholds, on a wide-speed
/// platform with a tight budget — the regime where migration is possible.
pub fn online_study(reps: u64) {
    let platform = Platform::wide_ladder();
    let wf = layered_random(
        LayeredParams { layers: 4, width: 5, edge_prob: 0.3, work: 6000.0, data: 20e6 },
        GenConfig { tasks: 0, seed: 1, sigma_ratio: 1.0 },
    );
    let floor = crate::common::min_cost_floor(&wf, &platform);
    let budget = floor * 1.2;

    let mut md = String::from(
        "## Extended experiment — online re-scheduling (§VI future work)\n\n\
         Wide-speed platform (5/20/80 Gflop/s), 22 long tasks, budget = 1.2 x min_cost.\n\n\
         | weights | watchdog k | makespan (s) | cost ($) | in budget % | migrations/run |\n\
         |---|---|---|---|---|---|\n",
    );
    for heavy in [false, true] {
        for k in [None, Some(0.5), Some(1.0), Some(2.0)] {
            let mut mks = Vec::new();
            let mut costs = Vec::new();
            let mut ok = 0usize;
            let mut migs = 0usize;
            for seed in 0..reps {
                let mut cfg = match k {
                    Some(k) => OnlineConfig::with_watchdog(seed, budget, k),
                    None => OnlineConfig::static_run(seed, budget),
                };
                if heavy {
                    cfg = cfg.with_heavy_tail();
                }
                let out = run_online(&wf, &platform, budget, cfg);
                mks.push(out.makespan);
                costs.push(out.total_cost);
                ok += out.within_budget as usize;
                migs += out.migrations;
            }
            let mk = stats_of(&mks);
            let c = stats_of(&costs);
            writeln!(
                md,
                "| {} | {} | {:.0} ± {:.0} | {:.3} ± {:.3} | {:.0} | {:.1} |",
                if heavy { "heavy-tail" } else { "gaussian" },
                k.map_or("static".into(), |k| format!("{k:.1}σ")),
                mk.mean,
                mk.std,
                c.mean,
                c.std,
                100.0 * ok as f64 / reps as f64,
                migs as f64 / reps as f64
            )
            .unwrap();
        }
    }
    write_text(&results_dir().join("ext_online.md"), &md);
    println!("online study done");
}

/// Size sweep: minimal budget multiplier HEFTBUDG and MIN-MINBUDG need to
/// match the HEFT baseline's makespan (within 10 %), per workflow size —
/// the extended-version analysis behind the paper's observation that the
/// gap between HEFTBUDG and MIN-MINBUDG shrinks for CYBERSHAKE/LIGO as
/// they grow more bag-of-tasks-like, but persists for MONTAGE.
pub fn size_sweep() {
    let platform = Platform::paper_default();
    let cfg = SimConfig::planning();
    let mut md = String::from(
        "## Extended experiment — budget needed to match the baseline makespan\n\n\
         Minimal budget (as a multiple of min_cost) at which each algorithm's planned\n\
         makespan comes within 10% of the HEFT baseline.\n\n",
    );
    md.push_str("| workflow | tasks | MIN-MINBUDG | HEFTBUDG |\n|---|---|---|---|\n");
    for ty in BenchmarkType::ALL {
        for n in [30usize, 60, 90] {
            let wf = ty.generate(GenConfig::new(n, 1));
            let floor = crate::common::min_cost_floor(&wf, &platform);
            let heft_sched = Algorithm::Heft.run(&wf, &platform, f64::INFINITY);
            let target = simulate(&wf, &platform, &heft_sched, &cfg).unwrap().makespan * 1.1;
            let find = |alg: Algorithm| -> Option<f64> {
                for mult in [1.0, 1.5, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0, 40.0] {
                    let s = alg.run(&wf, &platform, floor * mult);
                    let mk = simulate(&wf, &platform, &s, &cfg).unwrap().makespan;
                    if mk <= target {
                        return Some(mult);
                    }
                }
                None
            };
            let fmt = |m: Option<f64>| m.map_or("—".into(), |m| format!("{m:.1}×"));
            writeln!(
                md,
                "| {} | {} | {} | {} |",
                ty.name(),
                n,
                fmt(find(Algorithm::MinMinBudg)),
                fmt(find(Algorithm::HeftBudg))
            )
            .unwrap();
        }
        println!("size sweep: {} done", ty.name());
    }
    write_text(&results_dir().join("ext_sizes.md"), &md);
}

/// Planner-work counter tables: per algorithm, the decision-event stream's
/// structural counters (candidate evaluations, sweeps, cache hits, refine
/// trials) plus a traced execution's simulator counters — the observability
/// layer's answer to "where does each heuristic spend its work?".
pub fn counters_study() {
    use wfs_observe::{Counters, RecordingSink};
    use wfs_simulator::simulate_observed;
    let platform = Platform::paper_default();
    let mut md = String::from(
        "## Extended experiment — planner work counters per algorithm\n\n\
         One 90-task instance per benchmark, budget = 2 x min_cost; counters are\n\
         derived from the recorded decision-event stream of a single traced\n\
         plan + stochastic execution (seed 1).\n\n\
         | workflow | algorithm | cand evals | sweeps | cache hit/miss | placed | new VMs | refine trials | moves | VM boots | transfers |\n\
         |---|---|---|---|---|---|---|---|---|---|---|\n",
    );
    for ty in BenchmarkType::ALL {
        let wf = ty.generate(GenConfig::new(90, 1));
        let floor = crate::common::min_cost_floor(&wf, &platform);
        let budget = floor * 2.0;
        for alg in [
            Algorithm::MinMin,
            Algorithm::Heft,
            Algorithm::MinMinBudg,
            Algorithm::HeftBudg,
            Algorithm::HeftBudgPlus,
            Algorithm::HeftBudgPlusInv,
        ] {
            let mut rec = RecordingSink::new();
            let sched = alg.run_observed(&wf, &platform, budget, &mut rec);
            let _ = simulate_observed(&wf, &platform, &sched, &SimConfig::stochastic(1), &mut rec)
                .expect("valid schedule");
            let c = Counters::from_events(&rec.events);
            writeln!(
                md,
                "| {} | {} | {} | {} | {}/{} | {} | {} | {} | {} | {} | {} |",
                ty.name(),
                alg.name(),
                c.get("plan_candidate_evals"),
                c.get("plan_sweeps"),
                c.get("best_host_cache_hits"),
                c.get("best_host_cache_misses"),
                c.get("tasks_placed"),
                c.get("vms_provisioned"),
                c.get("refine_trials"),
                c.get("refine_moves"),
                c.get("sim_vm_boots"),
                c.get("sim_transfers"),
            )
            .unwrap();
        }
        println!("counters study: {} done", ty.name());
    }
    write_text(&results_dir().join("ext_counters.md"), &md);
}

/// Fault-injection study: success rate, cost and waste as the VM failure
/// rate and the budget vary, per recovery policy. Crash MTBFs span "rare"
/// to "stormy"; budgets are multiples of each instance's min_cost floor.
/// The FAILSTOP rows quantify what recovery buys: everything it leaves on
/// the table, RETRY and RESCHEDULE pick up — the latter while still
/// honoring Eq. 3 on the residual budget.
pub fn fault_study(instances: u64, reps: u64) {
    use wfs_scheduler::{run_with_recovery, RecoveryConfig, RecoveryPolicy};
    use wfs_simulator::{BootFaultModel, CrashModel, FaultConfig};
    let platform = Platform::paper_default();
    let mut md = String::from(
        "## Extended experiment — fault injection and budget-aware recovery\n\n\
         Seeded crash faults (exponential MTBF) plus 10% transient boot failures;\n\
         each run loops plan → inject → recover until durable completion or budget\n\
         exhaustion (HEFTBUDG plans epoch 0; budget = multiple of min_cost).\n\n\
         | workflow | MTBF (s) | budget | policy | success % | in budget % | cost ($) | re-plans | wasted (s) |\n\
         |---|---|---|---|---|---|---|---|---|\n",
    );
    for ty in [BenchmarkType::Montage, BenchmarkType::Ligo] {
        for mtbf in [3600.0, 1200.0, 600.0] {
            // Faulted completions land at ~10–20× the fault-free floor
            // (deadlocked-but-billed VMs dominate), so the interesting
            // budget band sits well above the Fig. 1 multipliers.
            for mult in [8.0, 20.0, 50.0] {
                for policy in RecoveryPolicy::ALL {
                    let mut costs = Vec::new();
                    let mut wasted = Vec::new();
                    let mut replans = Vec::new();
                    let mut done = 0usize;
                    let mut in_budget = 0usize;
                    let mut total = 0usize;
                    for inst in 0..instances {
                        let wf = ty.generate(GenConfig::new(60, inst));
                        let budget =
                            crate::common::min_cost_floor(&wf, &platform) * mult;
                        for seed in 0..reps {
                            let faults = FaultConfig::new(seed)
                                .with_crash(CrashModel::exponential(mtbf))
                                .with_boot(BootFaultModel::new(0.1, 3));
                            let cfg = RecoveryConfig::new(
                                Algorithm::HeftBudg,
                                policy,
                                budget,
                                faults,
                            )
                            .with_max_epochs(24);
                            let out = run_with_recovery(&wf, &platform, &cfg)
                                .expect("recovery never hits a hard SimError");
                            costs.push(out.total_cost);
                            wasted.push(out.stats.wasted_billed_seconds);
                            replans.push(out.replans as f64);
                            done += out.completed as usize;
                            in_budget += out.within_budget() as usize;
                            total += 1;
                        }
                    }
                    let c = stats_of(&costs);
                    let w = stats_of(&wasted);
                    let r = stats_of(&replans);
                    writeln!(
                        md,
                        "| {} | {:.0} | {:.0}× | {} | {:.0} | {:.0} | {:.3} ± {:.3} | {:.1} | {:.0} |",
                        ty.name(),
                        mtbf,
                        mult,
                        policy.name(),
                        100.0 * done as f64 / total as f64,
                        100.0 * in_budget as f64 / total as f64,
                        c.mean,
                        c.std,
                        r.mean,
                        w.mean
                    )
                    .unwrap();
                }
            }
            println!("fault study: {} mtbf {mtbf} done", ty.name());
        }
    }
    write_text(&results_dir().join("ext_faults.md"), &md);
}
