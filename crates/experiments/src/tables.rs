//! Table II (platform) and Table III (schedule-computation CPU times).

use crate::common::{results_dir, stats_of, write_text, Stats};
use std::fmt::Write as _;
use wfs_platform::Platform;
use wfs_scheduler::Algorithm;
use wfs_simulator::{simulate, SimConfig};
use wfs_workflow::gen::{montage, GenConfig};
use wfs_workflow::Workflow;

/// Print the Table II instantiation (see DESIGN.md §3 for calibration).
pub fn platform_table() {
    let p = Platform::paper_default();
    println!("Table II — platform instantiation");
    println!("{:<10} {:>12} {:>10} {:>10} {:>8}", "category", "speed Gf/s", "$/hour", "init $", "boot s");
    for c in p.categories() {
        println!(
            "{:<10} {:>12.0} {:>10.2} {:>10.3} {:>8.0}",
            c.name, c.speed, c.cost_per_hour, c.init_cost, c.boot_time
        );
    }
    let dc = &p.datacenter;
    println!(
        "datacenter: bandwidth {:.0} MB/s, usage ${:.3}/h, boundary transfers ${:.3}/GB",
        dc.bandwidth / 1e6,
        dc.cost_per_hour,
        dc.io_cost_per_byte * 1e9
    );
    println!("billing: per second (paper §V-A)");
}

/// The three characteristic budget levels of Table III: "low" = minimum
/// feasible, "medium" = halfway to "high", "high" = unconstrained.
fn characteristic_budgets(wf: &Workflow, platform: &Platform) -> [(&'static str, f64); 3] {
    let low = crate::common::min_cost_floor(wf, platform);
    // "High": enough to never constrain a choice — cost of the HEFT
    // baseline schedule with margin.
    let heft_sched = Algorithm::Heft.run(wf, platform, f64::INFINITY);
    let high = simulate(wf, platform, &heft_sched, &SimConfig::planning())
        .expect("valid")
        .total_cost
        * 2.0;
    let medium = (low + high) / 2.0;
    [("low", low), ("medium", medium), ("high", high)]
}

fn time_algorithm(
    alg: Algorithm,
    wf: &Workflow,
    platform: &Platform,
    budget: f64,
    reps: u32,
) -> Stats {
    let mut samples = Vec::with_capacity(reps as usize);
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        let s = alg.run(wf, platform, budget);
        samples.push(t0.elapsed().as_secs_f64());
        std::hint::black_box(&s);
    }
    stats_of(&samples)
}

/// Table III(a): time to compute a schedule for MONTAGE-90 under the three
/// characteristic budgets. `include_refined` adds HEFTBUDG+/+INV and CG+
/// (orders of magnitude slower — Table III's very point).
pub fn table3a(reps: u32, include_refined: bool) {
    let platform = Platform::paper_default();
    let wf = montage(GenConfig::new(90, 1));
    let budgets = characteristic_budgets(&wf, &platform);
    let mut algos = vec![
        Algorithm::MinMin,
        Algorithm::Heft,
        Algorithm::MinMinBudg,
        Algorithm::HeftBudg,
        Algorithm::Bdt,
        Algorithm::Cg,
    ];
    if include_refined {
        algos.extend([Algorithm::HeftBudgPlus, Algorithm::HeftBudgPlusInv, Algorithm::CgPlus]);
    }

    let mut md = String::from(
        "## Table III(a) — schedule computation time, MONTAGE-90, seconds (mean ± std)\n\n",
    );
    write!(md, "| budget |").unwrap();
    for a in &algos {
        write!(md, " {} |", a.name()).unwrap();
    }
    md.push('\n');
    md.push_str("|---|");
    for _ in &algos {
        md.push_str("---|");
    }
    md.push('\n');
    for (name, b) in budgets {
        write!(md, "| {name} (${b:.2}) |").unwrap();
        for &a in &algos {
            let st = time_algorithm(a, &wf, &platform, b, reps);
            write!(md, " {:.3} ± {:.3} |", st.mean, st.std).unwrap();
        }
        md.push('\n');
        println!("table3a: {name} budget done");
    }
    write_text(&results_dir().join("table3a.md"), &md);
    print!("{md}");
}

/// Table III(b): schedule computation time vs task count (30/60/90/400,
/// MONTAGE, high budget). Refined algorithms are timed only up to 90 tasks
/// (at 400 they take hours, as the paper's own Table III shows).
pub fn table3b(reps: u32, include_refined: bool) {
    let platform = Platform::paper_default();
    let sizes = [30usize, 60, 90, 400];
    let mut algos = vec![
        Algorithm::MinMin,
        Algorithm::Heft,
        Algorithm::MinMinBudg,
        Algorithm::HeftBudg,
        Algorithm::Bdt,
        Algorithm::Cg,
    ];
    if include_refined {
        algos.extend([Algorithm::HeftBudgPlus, Algorithm::HeftBudgPlusInv]);
    }

    let mut md = String::from(
        "## Table III(b) — schedule computation time vs task count, MONTAGE, high budget, seconds\n\n",
    );
    write!(md, "| tasks |").unwrap();
    for a in &algos {
        write!(md, " {} |", a.name()).unwrap();
    }
    md.push('\n');
    md.push_str("|---|");
    for _ in &algos {
        md.push_str("---|");
    }
    md.push('\n');
    for n in sizes {
        let wf = montage(GenConfig::new(n, 1));
        let [_, _, (_, high)] = characteristic_budgets(&wf, &platform);
        write!(md, "| {n} |").unwrap();
        for &a in &algos {
            if a.is_refined() && n > 90 {
                write!(md, " — |").unwrap();
                continue;
            }
            let st = time_algorithm(a, &wf, &platform, high, reps);
            write!(md, " {:.3} ± {:.3} |", st.mean, st.std).unwrap();
        }
        md.push('\n');
        println!("table3b: n={n} done");
    }
    write_text(&results_dir().join("table3b.md"), &md);
    print!("{md}");
}
