//! Semantic plan-lint coverage over the full algorithm × generator grid.
//!
//! Every schedule produced by each of the 13 algorithms, on each of the
//! five equivalence-suite workloads, across three budget regimes, must
//! execute to a report the plan linter accepts. This is the tier above the
//! per-invariant mutation tests in `wfs_simulator::lint`: those prove each
//! check *fires* on corruption, this proves none of them *misfires* on a
//! genuine execution of any algorithm.

// Helper fns in integration-test files miss the tests-only exemption.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use wfs_analyze::plan_lint;
use wfs_platform::Platform;
use wfs_scheduler::{min_cost_schedule, Algorithm};
use wfs_simulator::{simulate, SimConfig};
use wfs_workflow::gen::{chain, cybershake, fork_join, ligo, montage, GenConfig};
use wfs_workflow::Workflow;

fn workloads() -> Vec<(&'static str, Workflow)> {
    vec![
        ("montage-50", montage(GenConfig::new(50, 7))),
        ("ligo-40", ligo(GenConfig::new(40, 11))),
        ("cybershake-45", cybershake(GenConfig::new(45, 13))),
        ("chain-24", chain(24, 800.0, 5e6)),
        ("fork_join-16", fork_join(16, 1200.0, 2e6)),
    ]
}

#[test]
fn all_algorithms_on_all_workloads_lint_clean() {
    let platform = Platform::paper_default();
    let cfg = SimConfig::planning();
    for (name, wf) in workloads() {
        // Budget floor: cheapest possible execution of this workload.
        let floor = simulate(&wf, &platform, &min_cost_schedule(&wf, &platform), &cfg)
            .unwrap()
            .total_cost;
        for mult in [1.05, 1.5, 3.0] {
            let budget = floor * mult;
            for alg in Algorithm::ALL {
                let schedule = alg.run(&wf, &platform, budget);
                let report = simulate(&wf, &platform, &schedule, &cfg)
                    .unwrap_or_else(|e| panic!("{name}/{alg}/x{mult}: {e}"));
                let violations = plan_lint(&wf, &platform, &schedule, &report, None);
                assert!(
                    violations.is_empty(),
                    "{name}/{alg}/x{mult}: {} violation(s): {:?}",
                    violations.len(),
                    violations
                );
            }
        }
    }
}

#[test]
fn stochastic_executions_lint_clean_as_well() {
    // The linter's invariants hold for any weight realization, not just
    // the deterministic planning model.
    let platform = Platform::paper_default();
    let wf = montage(GenConfig::new(50, 7));
    for alg in [Algorithm::HeftBudg, Algorithm::MinMinBudg, Algorithm::Cg] {
        let schedule = alg.run(&wf, &platform, 2.0);
        for seed in [1, 2, 3] {
            let report =
                simulate(&wf, &platform, &schedule, &SimConfig::stochastic(seed)).unwrap();
            let violations = plan_lint(&wf, &platform, &schedule, &report, None);
            assert!(violations.is_empty(), "{alg}/seed{seed}: {violations:?}");
        }
    }
}

#[test]
fn budget_clause_flags_overspending_algorithms() {
    // BDT is the paper's overspender (Fig. 3): on a tight budget its
    // planned cost exceeds B, which the linter's Eq. 3 clause must report
    // while the model invariants all stay satisfied.
    let platform = Platform::paper_default();
    let cfg = SimConfig::planning();
    let wf = cybershake(GenConfig::new(45, 13));
    let floor = simulate(&wf, &platform, &min_cost_schedule(&wf, &platform), &cfg)
        .unwrap()
        .total_cost;
    let budget = floor * 1.05;
    let schedule = Algorithm::Bdt.run(&wf, &platform, budget);
    let report = simulate(&wf, &platform, &schedule, &cfg).unwrap();
    let violations = plan_lint(&wf, &platform, &schedule, &report, Some(budget));
    if report.total_cost > budget {
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, wfs_analyze::PlanViolation::BudgetExceeded { .. })),
            "BDT overspent ({} > {budget}) but the linter did not flag it",
            report.total_cost
        );
    }
    // Whatever the budget outcome, the model invariants must hold.
    assert!(violations
        .iter()
        .all(|v| matches!(v, wfs_analyze::PlanViolation::BudgetExceeded { .. })));
}
