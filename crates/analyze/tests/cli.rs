//! End-to-end tests of the `wfs-analyze` binary: scanner and plan modes,
//! exit codes, allowlist reconciliation.

// Helper fns in integration-test files miss the tests-only exemption.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::process::{Command, Output};
use wfs_platform::Platform;
use wfs_scheduler::Algorithm;
use wfs_simulator::{simulate, SimConfig};
use wfs_workflow::gen::{montage, GenConfig};

fn analyze(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wfs-analyze"))
        .args(args)
        .output()
        .expect("wfs-analyze binary runs")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wfs-analyze-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn write(name: &str, content: &str) -> PathBuf {
    let p = tmp(name);
    std::fs::write(&p, content).unwrap();
    p
}

#[test]
fn seeded_banned_pattern_fails_the_scan() {
    let bad = write(
        "seeded.rs",
        "pub fn f(a: f64, b: f64) -> std::cmp::Ordering { a.partial_cmp(&b).unwrap() }\n\
         pub fn g(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let out = analyze(&["files", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stdout));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("partial-cmp-unwrap"), "{text}");
    assert!(text.contains("panic-site"), "{text}");
    assert!(text.contains("seeded.rs:1"), "{text}");
}

#[test]
fn clean_file_passes_the_scan() {
    let good = write(
        "clean.rs",
        "pub fn f(a: f64, b: f64) -> std::cmp::Ordering { a.total_cmp(&b) }\n",
    );
    let out = analyze(&["files", good.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn allowlist_suppresses_exact_count_and_flags_stale() {
    let bad = write("allowed.rs", "pub fn g(x: Option<u32>) -> u32 { x.unwrap() }\n");
    let file = bad.to_str().unwrap().to_string();
    // Exact pin: clean.
    let allow = write("allow-ok.txt", &format!("{file} panic-site 1\n"));
    let out = analyze(&["files", &file, "--allowlist", allow.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));
    // Overshooting pin: stale entry, non-zero.
    let allow = write("allow-stale.txt", &format!("{file} panic-site 3\n"));
    let out = analyze(&["files", &file, "--allowlist", allow.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("stale"), "stale entry must fail");
}

#[test]
fn workspace_mode_scans_a_synthetic_tree() {
    // A miniature workspace root: one library crate with a banned pattern.
    let root = tmp("ws-root");
    let src = root.join("crates/workflow/src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(src.join("lib.rs"), "pub fn f() { panic!(\"seeded\"); }\n").unwrap();
    let out = analyze(&["--workspace", "--root", root.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("panic-site"));
}

#[test]
fn bad_usage_exits_two() {
    let out = analyze(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
    let out = analyze(&["files"]);
    assert_eq!(out.status.code(), Some(2));
    let out = analyze(&["plan", "only-one-arg.json"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn plan_mode_accepts_genuine_schedule_and_rejects_corrupted() {
    let wf = montage(GenConfig::new(30, 4));
    let platform = Platform::paper_default();
    let schedule = Algorithm::HeftBudg.run(&wf, &platform, 2.0);

    let wf_path = write("m30.json", &wf.to_json());
    let sched_path = write("m30-sched.json", &serde_json::to_string(&schedule).unwrap());

    // Genuine schedule, simulated in-process: clean.
    let out = analyze(&[
        "plan",
        wf_path.to_str().unwrap(),
        "default",
        sched_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("plan clean"));

    // Corrupted schedule (one task never assigned): validation fails,
    // exit 1.
    let mut bad = wfs_simulator::Schedule::new(wf.task_count());
    let vm = bad.add_vm(platform.cheapest());
    for t in wf.task_ids().skip(1) {
        bad.assign(t, vm);
    }
    let bad_path = write("m30-bad-sched.json", &serde_json::to_string(&bad).unwrap());
    let out = analyze(&[
        "plan",
        wf_path.to_str().unwrap(),
        "default",
        bad_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("not executable"));

    // Corrupted *report* (doctored cost accounting): the linter catches it.
    let report = simulate(&wf, &platform, &schedule, &SimConfig::planning()).unwrap();
    let mut doctored = report.clone();
    doctored.total_cost *= 0.5; // books claim half the real cost
    let report_path = write("m30-report.json", &serde_json::to_string(&doctored).unwrap());
    let out = analyze(&[
        "plan",
        wf_path.to_str().unwrap(),
        "default",
        sched_path.to_str().unwrap(),
        "--report",
        report_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("total_cost"));

    // Budget clause: a budget below the genuine cost trips Eq. 3.
    let out = analyze(&[
        "plan",
        wf_path.to_str().unwrap(),
        "default",
        sched_path.to_str().unwrap(),
        "--budget",
        "0.000001",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("budget"));
}

#[test]
fn real_workspace_tip_is_clean() {
    // The repo's own sources must pass the scan with the checked-in
    // allowlist — the same invocation CI runs (scripts/ci.sh).
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = analyze(&["--workspace", "--root", root.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace tip not clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
