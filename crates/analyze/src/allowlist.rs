//! The explicit allowlist for the banned-pattern scanner.
//!
//! `analyze-allow.txt` pins, per `(file, rule)`, exactly how many matches
//! are accepted. Pinned counts make the list self-policing in both
//! directions: a *new* banned pattern overshoots its entry and fails CI,
//! and a *removed* one leaves the entry stale, which also fails CI so the
//! list can never rot.
//!
//! File format — one entry per line, `#` starts a comment:
//!
//! ```text
//! # path (relative, forward slashes)      rule            count
//! crates/scheduler/src/online.rs          panic-site      2
//! ```

use crate::rules::{Finding, ALL_RULES};
use std::collections::BTreeMap;

/// Parsed allowlist: `(file, rule) -> allowed count`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Allowlist {
    entries: BTreeMap<(String, String), usize>,
}

/// A malformed allowlist line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-indexed line in the allowlist file.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "allowlist line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl Allowlist {
    /// Parse the allowlist file content.
    pub fn parse(content: &str) -> Result<Self, ParseError> {
        let mut entries = BTreeMap::new();
        for (idx, raw) in content.lines().enumerate() {
            let line = idx + 1;
            let text = raw.split('#').next().unwrap_or("").trim();
            if text.is_empty() {
                continue;
            }
            let mut parts = text.split_whitespace();
            let (Some(file), Some(rule), Some(count)) =
                (parts.next(), parts.next(), parts.next())
            else {
                return Err(ParseError {
                    line,
                    message: format!("expected `<file> <rule> <count>`, got `{text}`"),
                });
            };
            if parts.next().is_some() {
                return Err(ParseError { line, message: format!("trailing fields in `{text}`") });
            }
            if !ALL_RULES.contains(&rule) {
                return Err(ParseError {
                    line,
                    message: format!("unknown rule `{rule}` (known: {})", ALL_RULES.join(", ")),
                });
            }
            let count: usize = count.parse().map_err(|_| ParseError {
                line,
                message: format!("count `{count}` is not a number"),
            })?;
            if count == 0 {
                return Err(ParseError {
                    line,
                    message: "count 0 is meaningless — delete the entry instead".to_string(),
                });
            }
            let key = (file.to_string(), rule.to_string());
            if entries.insert(key, count).is_some() {
                return Err(ParseError {
                    line,
                    message: format!("duplicate entry for `{file} {rule}`"),
                });
            }
        }
        Ok(Self { entries })
    }

    /// Reconcile scanner findings against the allowlist.
    ///
    /// Returns the findings that remain reportable plus one message per
    /// stale entry (an entry whose pinned count no longer matches reality:
    /// both over- and under-shoot are errors, so counts stay pinned).
    pub fn reconcile(&self, findings: &[Finding]) -> (Vec<Finding>, Vec<String>) {
        let mut by_key: BTreeMap<(String, String), Vec<&Finding>> = BTreeMap::new();
        for f in findings {
            by_key.entry((f.file.clone(), f.rule.to_string())).or_default().push(f);
        }
        let mut reported = Vec::new();
        let mut stale = Vec::new();
        for (key, group) in &by_key {
            match self.entries.get(key) {
                Some(&allowed) if allowed == group.len() => {}
                Some(&allowed) => {
                    stale.push(format!(
                        "{} {}: allowlist pins {} matches but the scanner found {} — \
                         update analyze-allow.txt to re-pin",
                        key.0,
                        key.1,
                        allowed,
                        group.len()
                    ));
                    reported.extend(group.iter().map(|f| (*f).clone()));
                }
                None => reported.extend(group.iter().map(|f| (*f).clone())),
            }
        }
        for (key, &allowed) in &self.entries {
            if !by_key.contains_key(key) {
                stale.push(format!(
                    "{} {}: allowlist pins {} matches but the scanner found none — \
                     delete the stale entry",
                    key.0, key.1, allowed
                ));
            }
        }
        (reported, stale)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the allowlist has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{RULE_NUMERIC_CAST, RULE_PANIC_SITE};

    fn finding(file: &str, rule: crate::rules::RuleId, line: usize) -> Finding {
        Finding { file: file.to_string(), line, rule, what: String::new() }
    }

    #[test]
    fn parses_comments_and_entries() {
        let a = Allowlist::parse(
            "# header\n\ncrates/a/src/x.rs panic-site 2  # two justified expects\n",
        )
        .unwrap();
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn rejects_unknown_rule_bad_count_and_duplicates() {
        assert!(Allowlist::parse("x.rs not-a-rule 1").is_err());
        assert!(Allowlist::parse("x.rs panic-site many").is_err());
        assert!(Allowlist::parse("x.rs panic-site 0").is_err());
        assert!(Allowlist::parse("x.rs panic-site 1\nx.rs panic-site 2").is_err());
        assert!(Allowlist::parse("x.rs panic-site 1 extra").is_err());
    }

    #[test]
    fn exact_match_suppresses() {
        let a = Allowlist::parse("x.rs panic-site 2").unwrap();
        let fs = vec![finding("x.rs", RULE_PANIC_SITE, 1), finding("x.rs", RULE_PANIC_SITE, 9)];
        let (reported, stale) = a.reconcile(&fs);
        assert!(reported.is_empty());
        assert!(stale.is_empty());
    }

    #[test]
    fn overshoot_reports_and_flags_stale() {
        let a = Allowlist::parse("x.rs panic-site 1").unwrap();
        let fs = vec![finding("x.rs", RULE_PANIC_SITE, 1), finding("x.rs", RULE_PANIC_SITE, 9)];
        let (reported, stale) = a.reconcile(&fs);
        assert_eq!(reported.len(), 2);
        assert_eq!(stale.len(), 1);
    }

    #[test]
    fn undershoot_is_stale_too() {
        let a = Allowlist::parse("x.rs panic-site 2\ny.rs numeric-cast 1").unwrap();
        let fs = vec![finding("x.rs", RULE_PANIC_SITE, 1), finding("x.rs", RULE_PANIC_SITE, 2)];
        let (reported, stale) = a.reconcile(&fs);
        assert!(reported.is_empty(), "{reported:?}");
        assert_eq!(stale.len(), 1, "{stale:?}");
        assert!(stale[0].contains("y.rs"), "{stale:?}");
    }

    #[test]
    fn unlisted_findings_always_report() {
        let a = Allowlist::default();
        let fs = vec![finding("z.rs", RULE_NUMERIC_CAST, 3)];
        let (reported, stale) = a.reconcile(&fs);
        assert_eq!(reported.len(), 1);
        assert!(stale.is_empty());
        assert!(a.is_empty());
    }
}
