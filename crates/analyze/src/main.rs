//! `wfs-analyze` — the workspace's static-analysis gate.
//!
//! ```text
//! wfs-analyze --workspace [--root DIR] [--allowlist FILE]
//!     Run the banned-pattern scanner over the library crates and
//!     reconcile against the pinned allowlist (default analyze-allow.txt).
//!
//! wfs-analyze files <FILE.rs>... [--allowlist FILE]
//!     Scan explicit files (no allowlist unless given).
//!
//! wfs-analyze plan <workflow.json> <platform.json|default> <schedule.json>
//!             [--report FILE] [--budget B]
//!     Load a schedule, execute it under the planning model (or take a
//!     pre-existing report) and run the semantic plan linter.
//! ```
//!
//! Exit codes: 0 clean, 1 findings/violations, 2 usage or I/O error.

use std::path::{Path, PathBuf};
use wfs_analyze::{plan_lint, scan_source, Allowlist, Finding};
use wfs_platform::Platform;
use wfs_simulator::{simulate, Schedule, SimConfig, SimulationReport};
use wfs_workflow::Workflow;

const USAGE: &str = "usage:
  wfs-analyze --workspace [--root DIR] [--allowlist FILE]
  wfs-analyze files <FILE.rs>... [--allowlist FILE]
  wfs-analyze plan <workflow.json> <platform.json|default> <schedule.json> [--report FILE] [--budget B]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("wfs-analyze: {msg}");
            eprintln!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

fn run(args: &[String]) -> Result<i32, String> {
    match args.first().map(String::as_str) {
        Some("--workspace") => cmd_workspace(&args[1..]),
        Some("files") => cmd_files(&args[1..]),
        Some("plan") => cmd_plan(&args[1..]),
        _ => Err("missing or unknown command".to_string()),
    }
}

/// Pull the value of `--flag VALUE` out of `args`, if present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

fn load_allowlist(path: &Path) -> Result<Allowlist, String> {
    let content = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read allowlist {}: {e}", path.display()))?;
    Allowlist::parse(&content).map_err(|e| e.to_string())
}

/// Report scanner findings and stale-allowlist messages; returns exit code.
fn report_scan(findings: &[Finding], allowlist: Option<&Allowlist>) -> i32 {
    let default_allow = Allowlist::default();
    let allow = allowlist.unwrap_or(&default_allow);
    let (reported, stale) = allow.reconcile(findings);
    for f in &reported {
        println!("{f}");
    }
    for s in &stale {
        println!("stale: {s}");
    }
    if reported.is_empty() && stale.is_empty() {
        println!(
            "wfs-analyze: clean ({} findings allowlisted across {} entries)",
            findings.len(),
            allow.len()
        );
        0
    } else {
        println!(
            "wfs-analyze: {} finding(s), {} stale allowlist entr(ies)",
            reported.len(),
            stale.len()
        );
        1
    }
}

fn cmd_workspace(args: &[String]) -> Result<i32, String> {
    let mut args = args.to_vec();
    let root = PathBuf::from(take_flag(&mut args, "--root")?.unwrap_or_else(|| ".".to_string()));
    let allow_path = take_flag(&mut args, "--allowlist")?
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("analyze-allow.txt"));
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument `{extra}`"));
    }
    let allowlist = if allow_path.exists() { Some(load_allowlist(&allow_path)?) } else { None };
    let findings = wfs_analyze::scan_workspace(&root)
        .map_err(|e| format!("scanning {}: {e}", root.display()))?;
    Ok(report_scan(&findings, allowlist.as_ref()))
}

fn cmd_files(args: &[String]) -> Result<i32, String> {
    let mut args = args.to_vec();
    let allowlist = match take_flag(&mut args, "--allowlist")? {
        Some(p) => Some(load_allowlist(Path::new(&p))?),
        None => None,
    };
    if args.is_empty() {
        return Err("files: no files given".to_string());
    }
    let mut findings = Vec::new();
    for file in &args {
        let src = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
        findings.extend(scan_source(file, &src));
    }
    Ok(report_scan(&findings, allowlist.as_ref()))
}

fn cmd_plan(args: &[String]) -> Result<i32, String> {
    let mut args = args.to_vec();
    let report_path = take_flag(&mut args, "--report")?;
    let budget = match take_flag(&mut args, "--budget")? {
        Some(b) => Some(b.parse::<f64>().map_err(|_| format!("bad budget `{b}`"))?),
        None => None,
    };
    let [wf_path, platform_path, sched_path] = args.as_slice() else {
        return Err("plan: expected <workflow> <platform|default> <schedule>".to_string());
    };

    let wf_src = std::fs::read_to_string(wf_path)
        .map_err(|e| format!("cannot read workflow {wf_path}: {e}"))?;
    let wf = Workflow::from_json(&wf_src).map_err(|e| format!("bad workflow {wf_path}: {e}"))?;
    let platform = if platform_path == "default" {
        Platform::paper_default()
    } else {
        let src = std::fs::read_to_string(platform_path)
            .map_err(|e| format!("cannot read platform {platform_path}: {e}"))?;
        serde_json::from_str(&src).map_err(|e| format!("bad platform {platform_path}: {e}"))?
    };
    let sched_src = std::fs::read_to_string(sched_path)
        .map_err(|e| format!("cannot read schedule {sched_path}: {e}"))?;
    let schedule: Schedule =
        serde_json::from_str(&sched_src).map_err(|e| format!("bad schedule {sched_path}: {e}"))?;

    // A schedule that cannot even execute is reported as a violation of
    // the plan, not a usage error: exit 1, like any other finding.
    if let Err(e) = schedule.validate(&wf) {
        println!("plan: schedule is not executable: {e}");
        return Ok(1);
    }
    let report: SimulationReport = match report_path {
        Some(p) => {
            let src =
                std::fs::read_to_string(&p).map_err(|e| format!("cannot read report {p}: {e}"))?;
            serde_json::from_str(&src).map_err(|e| format!("bad report {p}: {e}"))?
        }
        None => simulate(&wf, &platform, &schedule, &SimConfig::planning())
            .map_err(|e| format!("simulation failed: {e}"))?,
    };
    let violations = plan_lint(&wf, &platform, &schedule, &report, budget);
    for v in &violations {
        println!("plan: {v}");
    }
    if violations.is_empty() {
        println!(
            "wfs-analyze: plan clean (makespan {:.3}s, total cost ${:.6})",
            report.makespan, report.total_cost
        );
        Ok(0)
    } else {
        println!("wfs-analyze: {} plan violation(s)", violations.len());
        Ok(1)
    }
}
