//! Banned-pattern rules over the token stream of one source file.
//!
//! Each rule matches a shallow token pattern and yields [`Finding`]s with
//! `file:line` positions. Rules are heuristics by design — the semantic
//! versions live in the clippy lint wall (`[workspace.lints.clippy]`) and
//! in the plan linter; this pass exists so the policy is enforced by the
//! repo's own tooling with a pinned, reviewable allowlist
//! (`analyze-allow.txt`).

use crate::lexer::{test_code_mask, tokenize, Token, TokenKind};

/// Identifier of a rule, as used in diagnostics and the allowlist file.
pub type RuleId = &'static str;

/// Panicking float comparisons: `partial_cmp(..).unwrap()` / `.expect(..)`.
pub const RULE_PARTIAL_CMP_UNWRAP: RuleId = "partial-cmp-unwrap";
/// Panic sites in library code: `.unwrap()`, `.expect(..)`, `panic!`,
/// `unreachable!`, `todo!`, `unimplemented!`.
pub const RULE_PANIC_SITE: RuleId = "panic-site";
/// Bare `==` / `!=` against a float literal.
pub const RULE_FLOAT_EQ: RuleId = "float-eq";
/// Narrowing `as` casts between numeric types.
pub const RULE_NUMERIC_CAST: RuleId = "numeric-cast";
/// Allocation-prone constructs in the scheduler hot path
/// (`plan.rs` / `best_host.rs`), the per-event fault machinery
/// (`faults.rs` / `recovery.rs`), and the observability emission layer
/// (`observe`'s `event.rs` / `sink.rs`, which sit inside those loops).
pub const RULE_HOT_PATH_ALLOC: RuleId = "hot-path-alloc";

/// All rules, in reporting order.
pub const ALL_RULES: &[RuleId] = &[
    RULE_PARTIAL_CMP_UNWRAP,
    RULE_PANIC_SITE,
    RULE_FLOAT_EQ,
    RULE_NUMERIC_CAST,
    RULE_HOT_PATH_ALLOC,
];

/// One banned-pattern occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path of the offending file, as given to [`scan_source`].
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// The violated rule.
    pub rule: RuleId,
    /// Short description of the matched pattern.
    pub what: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.what)
    }
}

/// Cast targets considered narrowing. `usize` and `f64` are the workspace's
/// canonical index/value types and every in-repo cast *to* them widens, so
/// they are exempt; everything else can silently truncate or lose
/// precision and must be justified in the allowlist.
const NARROWING_CASTS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
];

/// Macros whose invocation is a panic site.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Allocating constructs banned from the hot-path files: `recv.method(` …
const ALLOC_METHODS: &[&str] = &["collect", "clone", "to_vec", "to_string", "to_owned"];
/// … `Type::new` constructors …
const ALLOC_CTORS: &[&str] = &["Vec", "String", "Box"];
/// … and allocating macros.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// True if `file` is one of the allocation-audited hot-path files: the
/// planner sweep (`plan.rs` / `best_host.rs`, allocation-free — see
/// `crates/scheduler/tests/alloc_free.rs`), the fault layer
/// (`faults.rs` runs per simulator event; `recovery.rs` re-plans per
/// epoch — their allocations are pinned, not banned), and the
/// observability core (`observe`'s `event.rs` / `sink.rs` are on every
/// emission site inside those loops and must stay allocation-free so the
/// `NoopSink` path compiles away).
pub fn is_hot_path_file(file: &str) -> bool {
    file.ends_with("plan.rs")
        || file.ends_with("best_host.rs")
        || file.ends_with("faults.rs")
        || file.ends_with("recovery.rs")
        || file.ends_with("observe/src/event.rs")
        || file.ends_with("observe/src/sink.rs")
}

/// Scan one file's source text; `file` is used verbatim in findings.
pub fn scan_source(file: &str, src: &str) -> Vec<Finding> {
    let tokens = tokenize(src);
    let mask = test_code_mask(&tokens);
    let mut claimed = vec![false; tokens.len()];
    let mut findings = Vec::new();

    partial_cmp_unwrap(file, &tokens, &mask, &mut claimed, &mut findings);
    panic_sites(file, &tokens, &mask, &claimed, &mut findings);
    float_eq(file, &tokens, &mask, &mut findings);
    numeric_casts(file, &tokens, &mask, &mut findings);
    if is_hot_path_file(file) {
        hot_path_allocs(file, &tokens, &mask, &mut findings);
    }
    findings.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    findings
}

/// Index of the token matching the `(` at `open`, or `None` if unbalanced.
fn matching_paren(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_op("(") {
            depth += 1;
        } else if t.is_op(")") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// `partial_cmp(..).unwrap()` / `.expect(..)`: claims the trailing
/// `.unwrap` tokens so the panic-site rule does not double-report.
fn partial_cmp_unwrap(
    file: &str,
    tokens: &[Token],
    mask: &[bool],
    claimed: &mut [bool],
    out: &mut Vec<Finding>,
) {
    for i in 0..tokens.len() {
        if mask[i] || !tokens[i].is_ident("partial_cmp") {
            continue;
        }
        let Some(open) = tokens.get(i + 1).filter(|t| t.is_op("(")).map(|_| i + 1) else {
            continue;
        };
        let Some(close) = matching_paren(tokens, open) else { continue };
        let (dot, method) = (close + 1, close + 2);
        if tokens.get(dot).is_some_and(|t| t.is_op("."))
            && tokens
                .get(method)
                .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
        {
            claimed[dot] = true;
            claimed[method] = true;
            out.push(Finding {
                file: file.to_string(),
                line: tokens[i].line,
                rule: RULE_PARTIAL_CMP_UNWRAP,
                what: format!(
                    "partial_cmp(..).{}() — use f64::total_cmp or OrdF64",
                    tokens[method].text
                ),
            });
        }
    }
}

/// `.unwrap()` / `.expect(` / `panic!` / `unreachable!` / `todo!` /
/// `unimplemented!` outside test code.
fn panic_sites(
    file: &str,
    tokens: &[Token],
    mask: &[bool],
    claimed: &[bool],
    out: &mut Vec<Finding>,
) {
    for i in 0..tokens.len() {
        if mask[i] || claimed[i] {
            continue;
        }
        let t = &tokens[i];
        let method_call = t.kind == TokenKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && tokens[i - 1].is_op(".")
            && !claimed[i - 1]
            && tokens.get(i + 1).is_some_and(|n| n.is_op("("));
        let macro_call = t.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && tokens.get(i + 1).is_some_and(|n| n.is_op("!"));
        if method_call || macro_call {
            out.push(Finding {
                file: file.to_string(),
                line: t.line,
                rule: RULE_PANIC_SITE,
                what: format!(
                    "{}{} in library code — return a typed error or justify in the allowlist",
                    t.text,
                    if macro_call { "!" } else { "()" }
                ),
            });
        }
    }
}

/// `==` / `!=` with a float literal on either side. The semantic variant
/// (comparing two float *expressions*) is covered by `clippy::float_cmp`,
/// which the workspace denies; this token-level rule catches the literal
/// form even where clippy is off.
fn float_eq(file: &str, tokens: &[Token], mask: &[bool], out: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        if mask[i] || !(tokens[i].is_op("==") || tokens[i].is_op("!=")) {
            continue;
        }
        let prev_float = i > 0 && tokens[i - 1].kind == TokenKind::Float;
        let next_float = tokens.get(i + 1).map(|t| t.kind) == Some(TokenKind::Float);
        if prev_float || next_float {
            out.push(Finding {
                file: file.to_string(),
                line: tokens[i].line,
                rule: RULE_FLOAT_EQ,
                what: format!(
                    "bare `{}` against a float literal — compare with a tolerance or total_cmp",
                    tokens[i].text
                ),
            });
        }
    }
}

/// `expr as T` where `T` is a narrowing numeric type.
fn numeric_casts(file: &str, tokens: &[Token], mask: &[bool], out: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        if mask[i] || !tokens[i].is_ident("as") {
            continue;
        }
        let Some(target) = tokens.get(i + 1) else { continue };
        if target.kind == TokenKind::Ident && NARROWING_CASTS.contains(&target.text.as_str()) {
            out.push(Finding {
                file: file.to_string(),
                line: tokens[i].line,
                rule: RULE_NUMERIC_CAST,
                what: format!(
                    "`as {}` can truncate — use TryFrom or justify in the allowlist",
                    target.text
                ),
            });
        }
    }
}

/// Allocation-prone constructs inside the hot-path files.
fn hot_path_allocs(file: &str, tokens: &[Token], mask: &[bool], out: &mut Vec<Finding>) {
    let mut push = |line: usize, what: String| {
        out.push(Finding { file: file.to_string(), line, rule: RULE_HOT_PATH_ALLOC, what });
    };
    for i in 0..tokens.len() {
        if mask[i] || tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let t = &tokens[i];
        // `Vec::new(` / `String::new(` / `Box::new(` / `Vec::with_capacity(`.
        if ALLOC_CTORS.contains(&t.text.as_str())
            && tokens.get(i + 1).is_some_and(|n| n.is_op("::"))
            && tokens.get(i + 2).is_some_and(|n| n.kind == TokenKind::Ident)
        {
            push(t.line, format!("{}::{} allocates in the hot path", t.text, tokens[i + 2].text));
            continue;
        }
        // `vec![` / `format!(`.
        if ALLOC_MACROS.contains(&t.text.as_str())
            && tokens.get(i + 1).is_some_and(|n| n.is_op("!"))
        {
            push(t.line, format!("{}! allocates in the hot path", t.text));
            continue;
        }
        // `.collect(` / `.clone(` / `.to_vec(` / `.to_string(` / `.to_owned(`.
        if ALLOC_METHODS.contains(&t.text.as_str())
            && i > 0
            && tokens[i - 1].is_op(".")
            && tokens.get(i + 1).is_some_and(|n| n.is_op("("))
        {
            push(t.line, format!(".{}() allocates in the hot path", t.text));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(file: &str, src: &str) -> Vec<RuleId> {
        scan_source(file, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn partial_cmp_unwrap_detected_once() {
        let src = "fn f(a: f64, b: f64) { a.partial_cmp(&b).unwrap(); }";
        let rules = rules_of("x.rs", src);
        // Claimed by the dedicated rule — not double-reported as panic-site.
        assert_eq!(rules, vec![RULE_PARTIAL_CMP_UNWRAP]);
    }

    #[test]
    fn partial_cmp_with_nested_parens_and_expect() {
        let src = "fn f() { x.partial_cmp(&g(h(1), 2)).expect(\"cmp\"); }";
        assert_eq!(rules_of("x.rs", src), vec![RULE_PARTIAL_CMP_UNWRAP]);
    }

    #[test]
    fn panic_sites_detected() {
        let src = "fn f() { a.unwrap(); b.expect(\"msg\"); panic!(\"boom\"); unreachable!(); }";
        assert_eq!(rules_of("x.rs", src), vec![RULE_PANIC_SITE; 4]);
    }

    #[test]
    fn asserts_and_unwrap_or_are_fine() {
        let src = "fn f() { assert!(x); debug_assert!(y); a.unwrap_or(0); b.unwrap_or_else(f); }";
        assert!(rules_of("x.rs", src).is_empty());
    }

    #[test]
    fn float_eq_on_literals_only() {
        let src = "fn f(x: f64, n: i32) -> bool { x == 0.0 || 1.5 != x || n == 3 }";
        assert_eq!(rules_of("x.rs", src), vec![RULE_FLOAT_EQ, RULE_FLOAT_EQ]);
    }

    #[test]
    fn narrowing_casts_flagged_widening_exempt() {
        let src = "fn f(x: usize, y: f64) { let _ = x as u32; let _ = y as f32; let _ = x as f64; let _ = y as usize; }";
        assert_eq!(rules_of("x.rs", src), vec![RULE_NUMERIC_CAST, RULE_NUMERIC_CAST]);
    }

    #[test]
    fn hot_path_allocs_only_in_hot_files() {
        let src = "fn f() { let v = Vec::new(); let w = vec![0; 3]; let s = x.clone(); }";
        assert!(rules_of("other.rs", src).is_empty());
        let rules = rules_of("crates/scheduler/src/plan.rs", src);
        assert_eq!(rules, vec![RULE_HOT_PATH_ALLOC; 3]);
        // The fault layer and the observability core are audited too.
        for hot in [
            "crates/simulator/src/faults.rs",
            "crates/scheduler/src/recovery.rs",
            "crates/observe/src/event.rs",
            "crates/observe/src/sink.rs",
        ] {
            assert_eq!(rules_of(hot, src), vec![RULE_HOT_PATH_ALLOC; 3], "{hot}");
        }
        // Only observe's own event.rs/sink.rs are hot — a stray
        // `event.rs` elsewhere is not pulled in.
        assert!(rules_of("crates/other/src/event.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { x.unwrap(); panic!(); let _ = 1.0 == y; }\n}";
        assert!(rules_of("x.rs", src).is_empty());
    }

    #[test]
    fn findings_carry_file_and_line() {
        let src = "fn a() {}\nfn b() { x.unwrap(); }";
        let fs = scan_source("crates/foo/src/b.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].file, "crates/foo/src/b.rs");
        assert_eq!(fs[0].line, 2);
        let shown = fs[0].to_string();
        assert!(shown.contains("crates/foo/src/b.rs:2"), "{shown}");
        assert!(shown.contains("panic-site"), "{shown}");
    }
}
