//! A handwritten token scanner for Rust source.
//!
//! Deliberately small: it understands exactly enough Rust lexical structure
//! to let the banned-pattern rules ([`crate::rules`]) operate on *code*
//! tokens only — comments (line, nested block), string/char literals
//! (including raw strings) and lifetimes never produce false positives.
//! It is not a parser; rules match shallow token patterns.

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `as`, `mod`, …).
    Ident,
    /// Integer literal (`42`, `0xff`).
    Int,
    /// Float literal (`1.0`, `5e8`, `1e-9`, `2.5f64`).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Operator or punctuation; two-character operators such as `==`, `!=`,
    /// `::` and `->` are joined into one token.
    Op,
}

/// One token with its 1-indexed source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Verbatim text (operators joined; literals include their quotes).
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: usize,
}

impl Token {
    /// True if this token is the operator `op`.
    pub fn is_op(&self, op: &str) -> bool {
        self.kind == TokenKind::Op && self.text == op
    }

    /// True if this token is the identifier `ident`.
    pub fn is_ident(&self, ident: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == ident
    }
}

/// Two-character operators joined into single tokens (longest match first).
const JOINED_OPS: &[&str] = &[
    "==", "!=", "<=", ">=", "::", "->", "=>", "&&", "||", "+=", "-=", "*=", "/=", "..",
];

/// Tokenize `src`, dropping comments and whitespace.
///
/// The scanner never fails: unterminated literals simply consume the rest
/// of the file, which is the pragmatic choice for a lint pass that runs on
/// code `rustc` already accepted.
pub fn tokenize(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    // Advance over `chars[i]`, maintaining the line counter.
    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // Line comment (`//`, `///`, `//!`).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Block comment, nested.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            bump!();
            bump!();
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    bump!();
                    bump!();
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    bump!();
                    bump!();
                } else {
                    bump!();
                }
            }
            continue;
        }
        // Identifier / keyword — with raw-string lookahead for r"", r#""#,
        // br"" and b'…' prefixes.
        if c.is_alphabetic() || c == '_' {
            let start_line = line;
            let mut text = String::new();
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                text.push(chars[i]);
                i += 1;
            }
            if (text == "r" || text == "br") && matches!(chars.get(i), Some('"') | Some('#')) {
                // Raw string: r"…", r#"…"#, …; no escapes inside.
                let mut hashes = 0usize;
                while chars.get(i) == Some(&'#') {
                    hashes += 1;
                    i += 1;
                }
                if chars.get(i) == Some(&'"') {
                    bump!();
                    'raw: while i < chars.len() {
                        if chars[i] == '"' {
                            let mut ok = true;
                            for k in 0..hashes {
                                if chars.get(i + 1 + k) != Some(&'#') {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        bump!();
                    }
                    tokens.push(Token {
                        kind: TokenKind::Str,
                        text: String::from("r\"…\""),
                        line: start_line,
                    });
                    continue;
                }
                // `r#ident` raw identifier: fall through, `#` re-lexes.
            }
            if text == "b" && chars.get(i) == Some(&'\'') {
                // Byte literal b'…': lex the char part below by not
                // emitting the ident; rewind is unnecessary since the `'`
                // branch below handles it on the next loop turn with the
                // prefix already consumed.
                tokens.push(Token { kind: TokenKind::Ident, text, line: start_line });
                continue;
            }
            tokens.push(Token { kind: TokenKind::Ident, text, line: start_line });
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start_line = line;
            let mut text = String::new();
            let mut is_float = false;
            if c == '0' && matches!(chars.get(i + 1), Some('x') | Some('b') | Some('o')) {
                // Radix literal: consume prefix + alphanumerics.
                text.push(chars[i]);
                text.push(chars[i + 1]);
                i += 2;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    text.push(chars[i]);
                    i += 1;
                }
            } else {
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    text.push(chars[i]);
                    i += 1;
                }
                // Fractional part: `.` followed by a digit (so `1.max(2)`
                // and `0..n` stay integer + punctuation).
                if chars.get(i) == Some(&'.')
                    && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    is_float = true;
                    text.push('.');
                    i += 1;
                    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        text.push(chars[i]);
                        i += 1;
                    }
                }
                // Exponent: `e`/`E` [+/-] digits.
                if matches!(chars.get(i), Some('e') | Some('E')) {
                    let mut j = i + 1;
                    if matches!(chars.get(j), Some('+') | Some('-')) {
                        j += 1;
                    }
                    if chars.get(j).is_some_and(|d| d.is_ascii_digit()) {
                        is_float = true;
                        while i < j {
                            text.push(chars[i]);
                            i += 1;
                        }
                        while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                            text.push(chars[i]);
                            i += 1;
                        }
                    }
                }
                // Type suffix: f32/f64 forces float; u8/i64/… stays int.
                let rest: String = chars[i..].iter().take(5).collect();
                for suffix in ["f32", "f64"] {
                    if rest.starts_with(suffix) {
                        is_float = true;
                        text.push_str(suffix);
                        i += suffix.len();
                        break;
                    }
                }
            }
            tokens.push(Token {
                kind: if is_float { TokenKind::Float } else { TokenKind::Int },
                text,
                line: start_line,
            });
            continue;
        }
        // String literal with escapes.
        if c == '"' {
            let start_line = line;
            bump!();
            while i < chars.len() {
                if chars[i] == '\\' && i + 1 < chars.len() {
                    bump!();
                    bump!();
                } else if chars[i] == '"' {
                    i += 1;
                    break;
                } else {
                    bump!();
                }
            }
            tokens.push(Token { kind: TokenKind::Str, text: String::from("\"…\""), line: start_line });
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            let start_line = line;
            // `'x'` / `'\n'` are char literals; `'a` / `'static` lifetimes.
            let is_char = match chars.get(i + 1) {
                Some('\\') => true,
                Some(&n) => chars.get(i + 2) == Some(&'\'') && n != '\'',
                None => false,
            };
            if is_char {
                bump!(); // opening quote
                if chars[i] == '\\' {
                    bump!();
                    bump!();
                    // Multi-char escapes (\u{…}, \x41): consume to quote.
                    while i < chars.len() && chars[i] != '\'' {
                        bump!();
                    }
                } else {
                    bump!();
                }
                if i < chars.len() && chars[i] == '\'' {
                    i += 1;
                }
                tokens.push(Token { kind: TokenKind::Char, text: String::from("'…'"), line: start_line });
            } else {
                bump!();
                let mut text = String::from("'");
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    text.push(chars[i]);
                    i += 1;
                }
                tokens.push(Token { kind: TokenKind::Lifetime, text, line: start_line });
            }
            continue;
        }
        // Operators and punctuation (two-char joins first).
        let start_line = line;
        let pair: String = chars[i..chars.len().min(i + 2)].iter().collect();
        if JOINED_OPS.contains(&pair.as_str()) {
            i += 2;
            tokens.push(Token { kind: TokenKind::Op, text: pair, line: start_line });
        } else {
            let mut text = String::new();
            text.push(c);
            bump!();
            tokens.push(Token { kind: TokenKind::Op, text, line: start_line });
        }
    }
    tokens
}

/// Indices of tokens inside `#[cfg(test)]`-gated items (usually `mod tests`
/// blocks): rules skip these, matching the workspace policy that test code
/// may panic freely.
pub fn test_code_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // Mask from the attribute through the end of the gated item.
            let attr_end = i + 7; // "# [ cfg ( test ) ]" spans 7 tokens
            let mut j = attr_end;
            // Skip any further attributes stacked on the item.
            while j < tokens.len() && tokens[j].is_op("#") {
                let mut depth = 0usize;
                j += 1; // past '#'
                while j < tokens.len() {
                    if tokens[j].is_op("[") {
                        depth += 1;
                    } else if tokens[j].is_op("]") {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            // The item body: everything up to the matching close brace of
            // its first block, or a terminating `;` (e.g. `mod tests;`).
            let mut depth = 0usize;
            while j < tokens.len() {
                if tokens[j].is_op("{") {
                    depth += 1;
                } else if tokens[j].is_op("}") {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                } else if tokens[j].is_op(";") && depth == 0 {
                    j += 1;
                    break;
                }
                j += 1;
            }
            for m in mask.iter_mut().take(j).skip(i) {
                *m = true;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    mask
}

/// True if the tokens at `i` spell `#[cfg(test)]`.
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    tokens.len() > i + 6
        && tokens[i].is_op("#")
        && tokens[i + 1].is_op("[")
        && tokens[i + 2].is_ident("cfg")
        && tokens[i + 3].is_op("(")
        && tokens[i + 4].is_ident("test")
        && tokens[i + 5].is_op(")")
        && tokens[i + 6].is_op("]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_produce_no_code_tokens() {
        let toks = tokenize(
            "// unwrap() in a comment\n/* panic! /* nested */ */\nlet s = \"x.unwrap()\";",
        );
        assert!(!toks.iter().any(|t| t.is_ident("unwrap") || t.is_ident("panic")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 1);
    }

    #[test]
    fn floats_ints_and_ranges_distinguished() {
        let toks = tokenize("let a = 1.0; let b = 5e8; let c = 1e-9; let d = 42; for i in 0..n {}");
        let floats: Vec<_> =
            toks.iter().filter(|t| t.kind == TokenKind::Float).map(|t| t.text.as_str()).collect();
        assert_eq!(floats, ["1.0", "5e8", "1e-9"]);
        assert!(toks.iter().any(|t| t.kind == TokenKind::Int && t.text == "42"));
        assert!(toks.iter().any(|t| t.is_op("..")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str, c: char) -> bool { c == 'x' }");
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 1);
    }

    #[test]
    fn raw_strings_are_skipped() {
        let toks = tokenize("let s = r#\"contains .unwrap() and panic!\"#; let t = r\"x\";");
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 2);
    }

    #[test]
    fn joined_operators_and_lines() {
        let toks = tokenize("a == b\n  && c != 1.5\nx::y");
        assert!(toks.iter().any(|t| t.is_op("==") && t.line == 1));
        assert!(toks.iter().any(|t| t.is_op("!=") && t.line == 2));
        assert!(toks.iter().any(|t| t.is_op("::") && t.line == 3));
    }

    #[test]
    fn cfg_test_mask_covers_test_mod_only() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn more() {}";
        let toks = tokenize(src);
        let mask = test_code_mask(&toks);
        for (t, &m) in toks.iter().zip(&mask) {
            if t.is_ident("unwrap") {
                assert!(m, "unwrap inside cfg(test) must be masked");
            }
            if t.is_ident("more") || t.is_ident("lib") {
                assert!(!m, "library code must stay unmasked");
            }
        }
    }
}
