//! Static analysis for the budget-sched workspace (`wfs-analyze`).
//!
//! Two passes (DESIGN.md §8):
//!
//! 1. **Banned-pattern scanner** ([`rules`]) — a handwritten token scanner
//!    ([`lexer`]) walks the library crates and rejects patterns the
//!    workspace policy forbids (panicking float comparisons, panic sites,
//!    bare float equality, narrowing casts, hot-path allocations), with an
//!    explicit pinned allowlist ([`allowlist`], `analyze-allow.txt`).
//! 2. **Semantic plan linter** ([`plan_lint`], re-exported from
//!    `wfs_simulator::lint`) — cross-checks a simulated schedule execution
//!    against the paper's platform model: precedence feasibility, per-VM
//!    timeline integrity, boot delays, transfer serialization, and budget
//!    reconciliation (Eqs. 1–3).
//!
//! The `wfs-analyze` binary wires both passes into CI (`scripts/ci.sh`).

#![warn(missing_docs)]

pub mod allowlist;
pub mod lexer;
pub mod rules;

pub use allowlist::Allowlist;
pub use rules::{scan_source, Finding};
pub use wfs_simulator::lint::{plan_lint, PlanViolation};

use std::path::{Path, PathBuf};

/// The library source roots the workspace scan covers, relative to the
/// repository root. Binaries, tests, benches and examples are exempt
/// (their panics are user-facing or test-only by design); the analyzer
/// scans itself.
pub const LIBRARY_ROOTS: &[&str] = &[
    "crates/workflow/src",
    "crates/platform/src",
    "crates/simulator/src",
    "crates/scheduler/src",
    "crates/analyze/src",
    "src/lib.rs",
];

/// Collect every `.rs` file under the workspace's library roots, sorted
/// for deterministic reports. Paths are returned relative to `root`.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for entry in LIBRARY_ROOTS {
        let path = root.join(entry);
        if path.is_file() {
            files.push(PathBuf::from(entry));
        } else if path.is_dir() {
            collect_rs(&path, &mut files)?;
        }
        // A missing root is not an error: the scan is defined over
        // whatever part of the workspace exists (useful in tests).
    }
    // Make collected paths root-relative with forward slashes.
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .map(|f| f.strip_prefix(root).map(Path::to_path_buf).unwrap_or(f))
        .collect();
    rel.sort();
    rel.dedup();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan all library sources under `root`; findings use root-relative
/// forward-slash paths so allowlist entries are platform-independent.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in workspace_sources(root)? {
        let display = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let src = std::fs::read_to_string(root.join(&rel))?;
        findings.extend(scan_source(&display, &src));
    }
    Ok(findings)
}
