//! Steady-state candidate sweeps must not touch the heap.
//!
//! This binary installs a counting global allocator (hence its own test
//! file: `#[global_allocator]` is per-binary) and checks that once the
//! scratch buffers have warmed up, repeated `get_best_host` sweeps perform
//! zero allocations — the core "allocation-free planner" guarantee.

// Helper fns in integration-test files miss the tests-only exemption.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use wfs_platform::Platform;
use wfs_scheduler::get_best_host;
use wfs_scheduler::PlanState;
use wfs_workflow::gen::{montage, GenConfig};

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_sweep_allocates_nothing() {
    let wf = montage(GenConfig::new(90, 3));
    let p = Platform::paper_default();
    let mut plan = PlanState::new(&wf, &p);

    // Schedule the first half of the workflow so several VMs are enrolled
    // and the remaining tasks have scheduled predecessors.
    let order: Vec<_> = wf.topological_order().to_vec();
    let half = order.len() / 2;
    for &t in &order[..half] {
        let best = get_best_host(&plan, t, f64::INFINITY);
        plan.commit(t, best.candidate);
    }

    let probe = order[half];
    // Warm-up: the scratch buffers may still grow on this first sweep.
    let warm = get_best_host(&plan, probe, f64::INFINITY);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut check = warm;
    for _ in 0..256 {
        check = get_best_host(&plan, probe, f64::INFINITY);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(check, warm, "sweeps on an unchanged plan are deterministic");
    assert_eq!(
        after - before,
        0,
        "steady-state candidate sweeps must not allocate"
    );
}
