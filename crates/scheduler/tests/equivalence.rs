//! Fast-path ⇔ naive-reference equivalence.
//!
//! The optimized candidate sweep ([`PlanState::with_candidate_evals`]) and
//! the incremental MIN-MIN/MAX-MIN selection caches are pure optimizations:
//! they must not change a single bit of any schedule. This suite checks
//! that claim three ways:
//!
//! 1. bitwise: every sweep produces `HostEval`s whose `eft`/`begin`/`cost`
//!    are bit-identical to the retained naive per-candidate evaluation;
//! 2. end-to-end: every algorithm, on every generator and budget, returns
//!    a schedule *equal* to the one produced in naive reference mode;
//! 3. regression: a hub-join workflow with very high fan-in (the worst
//!    case for the per-predecessor aggregate adjustment) stays exact.

// Helper fns in integration-test files miss the tests-only exemption.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use wfs_observe::{Counters, NoopSink, RecordingSink};
use wfs_platform::Platform;
use wfs_scheduler::{get_best_host, min_cost_schedule, reference, Algorithm, PlanState};
use wfs_simulator::{simulate, SimConfig};
use wfs_workflow::gen::{chain, cybershake, fork_join, ligo, montage, GenConfig};
use wfs_workflow::Workflow;

fn workloads() -> Vec<(&'static str, Workflow)> {
    vec![
        ("montage-50", montage(GenConfig::new(50, 7))),
        ("ligo-40", ligo(GenConfig::new(40, 11))),
        ("cybershake-45", cybershake(GenConfig::new(45, 13))),
        ("chain-24", chain(24, 800.0, 5e6)),
        ("fork_join-16", fork_join(16, 1200.0, 2e6)),
    ]
}

/// Drive a plan forward (committing each task to its best host under a
/// varying limit) and compare every sweep against `evaluate_all` bit for
/// bit along the way.
fn assert_sweeps_bitwise_identical(name: &str, wf: &Workflow, platform: &Platform) {
    let mut plan = PlanState::new(wf, platform);
    for (step, &t) in wf.topological_order().iter().enumerate() {
        let naive = plan.evaluate_all(t);
        plan.with_candidate_evals(t, |evals| {
            assert_eq!(evals.len(), naive.len(), "{name}: candidate count for {t:?}");
            for (fast, slow) in evals.iter().zip(&naive) {
                assert_eq!(fast.candidate, slow.candidate, "{name}: order for {t:?}");
                for (field, a, b) in [
                    ("eft", fast.eft, slow.eft),
                    ("begin", fast.begin, slow.begin),
                    ("cost", fast.cost, slow.cost),
                ] {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{name}: {field} of {t:?} on {:?} differs: {a} vs {b}",
                        fast.candidate
                    );
                }
            }
        });
        // Vary the budget pressure across steps so both the affordable and
        // the fall-back selection branches get exercised.
        let limit = match step % 3 {
            0 => f64::INFINITY,
            1 => 0.05,
            _ => 0.0,
        };
        let best = get_best_host(&plan, t, limit);
        plan.commit(t, best.candidate);
    }
}

#[test]
fn sweep_matches_naive_bitwise() {
    let p = Platform::paper_default();
    for (name, wf) in workloads() {
        assert_sweeps_bitwise_identical(name, &wf, &p);
    }
}

#[test]
fn all_algorithms_schedule_identical_to_naive() {
    let p = Platform::paper_default();
    for (name, wf) in workloads() {
        let floor = simulate(&wf, &p, &min_cost_schedule(&wf, &p), &SimConfig::planning())
            .expect("min-cost schedule simulates")
            .total_cost;
        for alg in Algorithm::ALL {
            for mult in [1.05, 1.5, 3.0] {
                let budget = floor * mult;
                let fast = alg.run(&wf, &p, budget);
                let naive = reference::with_naive(|| alg.run(&wf, &p, budget));
                assert_eq!(
                    fast,
                    naive,
                    "{} diverges from naive on {name} at budget x{mult}",
                    alg.name()
                );
            }
        }
    }
}

/// Observability must be a pure tap: with a `NoopSink` (the zero-cost
/// default every untraced entry point uses) and with a live
/// `RecordingSink`, `run_observed` must return the exact schedule `run`
/// does, for every algorithm — traced or fallback — and budget.
#[test]
fn observed_runs_are_bit_identical_to_plain_runs() {
    let p = Platform::paper_default();
    for (name, wf) in workloads() {
        let floor = simulate(&wf, &p, &min_cost_schedule(&wf, &p), &SimConfig::planning())
            .expect("min-cost schedule simulates")
            .total_cost;
        for alg in Algorithm::ALL {
            for mult in [1.05, 1.5, 3.0] {
                let budget = floor * mult;
                let plain = alg.run(&wf, &p, budget);
                let noop = alg.run_observed(&wf, &p, budget, &mut NoopSink);
                assert_eq!(plain, noop, "{}: NoopSink diverges on {name} x{mult}", alg.name());
                let mut rec = RecordingSink::new();
                let recorded = alg.run_observed(&wf, &p, budget, &mut rec);
                assert_eq!(
                    plain,
                    recorded,
                    "{}: RecordingSink diverges on {name} x{mult}",
                    alg.name()
                );
            }
        }
    }
}

/// The BENCH_sched_time.json HEFTBUDG+ cells occasionally show fast slower
/// than naive (e.g. montage-30 at 0.68x in one pin). The counters prove
/// that is timing noise, not a fast-path hot spot: in both modes the
/// refinement phase performs the *same* number of trials and acceptances
/// and the planner does the same number of sweeps and candidate
/// evaluations — HEFTBUDG+ time is dominated by whole-schedule
/// re-simulations inside `refine_schedule`, which are mode-independent, so
/// the planner fast path cannot regress it.
#[test]
fn refinement_work_is_identical_in_fast_and_naive_modes() {
    let p = Platform::paper_default();
    for (name, wf) in [
        ("montage-30", montage(GenConfig::new(30, 1))),
        ("ligo-30", ligo(GenConfig::new(30, 1))),
    ] {
        let floor = simulate(&wf, &p, &min_cost_schedule(&wf, &p), &SimConfig::planning())
            .expect("min-cost schedule simulates")
            .total_cost;
        let budget = floor * 2.0;
        let work = || {
            let mut rec = RecordingSink::new();
            let _ = Algorithm::HeftBudgPlus.run_observed(&wf, &p, budget, &mut rec);
            let c = Counters::from_events(&rec.events);
            (
                c.get("refine_trials"),
                c.get("refine_accepted"),
                c.get("plan_sweeps"),
                c.get("plan_candidate_evals"),
            )
        };
        let fast = work();
        let naive = reference::with_naive(work);
        assert!(fast.0 > 0, "{name}: refinement ran no trials");
        assert_eq!(fast, naive, "{name}: fast vs naive work counters diverge");
    }
}

/// Hub-join stress: many parallel branches all feeding one join task means
/// the join's sweep sees a predecessor on (almost) every used VM — the
/// worst case for the per-VM aggregate adjustment. Keep it exact both
/// bitwise and end-to-end.
#[test]
fn hub_join_high_fan_in_stays_exact() {
    let p = Platform::paper_default();
    let wf = fork_join(120, 300.0, 4e6);
    assert_sweeps_bitwise_identical("fork_join-120", &wf, &p);
    for alg in [Algorithm::MinMinBudg, Algorithm::HeftBudg, Algorithm::SufferageBudg] {
        for budget in [0.5, 5.0, 500.0] {
            let fast = alg.run(&wf, &p, budget);
            let naive = reference::with_naive(|| alg.run(&wf, &p, budget));
            assert_eq!(fast, naive, "{} on hub-join, budget {budget}", alg.name());
        }
    }
}
