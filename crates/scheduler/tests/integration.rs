//! Scheduler-crate integration tests: cross-algorithm behaviours on the
//! public API only.

// Helper fns in integration-test files miss the tests-only exemption.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use wfs_platform::{BillingPolicy, Datacenter, Platform, VmCategory};
use wfs_scheduler::{
    divide_budget, get_best_host, heft_budg, min_cost_schedule, priority_list, Algorithm,
    Candidate, PlanState,
};
use wfs_simulator::{simulate, SimConfig};
use wfs_workflow::gen::{cybershake, ligo, montage, GenConfig};
use wfs_workflow::Workflow;

fn paper() -> Platform {
    Platform::paper_default()
}

fn floor(wf: &Workflow, p: &Platform) -> f64 {
    simulate(wf, p, &min_cost_schedule(wf, p), &SimConfig::planning())
        .unwrap()
        .total_cost
}

#[test]
fn priority_list_stable_across_calls_and_budget_independent() {
    let wf = montage(GenConfig::new(60, 1));
    let p = paper();
    let a = priority_list(&wf, &p);
    let b = priority_list(&wf, &p);
    assert_eq!(a, b);
    // HEFTBUDG uses the same list regardless of the budget.
    let (_, l1) = heft_budg(&wf, &p, 0.1);
    let (_, l2) = heft_budg(&wf, &p, 100.0);
    assert_eq!(l1, l2);
    assert_eq!(l1, a);
}

#[test]
fn budget_shares_scale_linearly_above_reserves() {
    let wf = ligo(GenConfig::new(60, 1));
    let p = paper();
    let s1 = divide_budget(&wf, &p, 2.0);
    let s2 = divide_budget(&wf, &p, 4.0);
    // Reserves are budget-independent; B_calc grows by exactly the budget
    // difference.
    assert!((s2.reserved_datacenter - s1.reserved_datacenter).abs() < 1e-12);
    assert!((s2.reserved_init - s1.reserved_init).abs() < 1e-12);
    assert!((s2.b_calc - s1.b_calc - 2.0).abs() < 1e-9);
}

#[test]
fn get_best_host_degrades_gracefully_with_shrinking_limit() {
    // As the per-task limit shrinks, the chosen host's cost never grows
    // and the EFT never improves.
    let wf = cybershake(GenConfig::new(30, 1));
    let p = paper();
    let plan = PlanState::new(&wf, &p);
    let t = wf.entry_tasks().next().unwrap();
    let mut last_cost = f64::INFINITY;
    let mut last_eft = 0.0f64;
    for limit in [1.0, 0.01, 0.001, 0.0001, 0.0] {
        let e = get_best_host(&plan, t, limit);
        assert!(e.cost <= last_cost + 1e-12, "cost rose as limit shrank");
        assert!(e.eft >= last_eft - 1e-12, "eft improved as limit shrank");
        last_cost = e.cost;
        last_eft = e.eft;
    }
}

#[test]
fn single_category_platform_still_works() {
    // Degenerate platform: budget only controls VM count, not type.
    let p = Platform::new(
        vec![VmCategory::new("only", 15.0, 0.08, 0.0001, 50.0)],
        Datacenter::new(100e6, 0.02, 0.05e-9),
    );
    let wf = montage(GenConfig::new(30, 1));
    for alg in [Algorithm::MinMinBudg, Algorithm::HeftBudg, Algorithm::Bdt, Algorithm::Cg] {
        let s = alg.run(&wf, &p, 0.5);
        s.validate(&wf).unwrap();
        assert!(s.vm_ids().all(|v| s.vm_category(v).0 == 0));
    }
}

#[test]
fn speed_inverted_pricing_handled() {
    // The paper does not assume speed follows cost; a platform where the
    // pricey category is SLOW must not confuse the algorithms.
    let p = Platform::new(
        vec![
            VmCategory::new("fast-cheap", 40.0, 0.05, 0.0001, 50.0),
            VmCategory::new("slow-pricey", 10.0, 0.30, 0.0001, 50.0),
        ],
        Datacenter::new(125e6, 0.022, 0.055e-9),
    )
    .with_billing(BillingPolicy::PerSecond);
    let wf = montage(GenConfig::new(30, 1));
    let b = floor(&wf, &p) * 3.0;
    for alg in [Algorithm::MinMinBudg, Algorithm::HeftBudg] {
        let s = alg.run(&wf, &p, b);
        s.validate(&wf).unwrap();
        // Nothing should ever pick the dominated slow-pricey category:
        // it is worse on both axes.
        assert!(
            s.vm_ids().all(|v| p.category(s.vm_category(v)).name == "fast-cheap"),
            "{alg} picked a dominated category"
        );
    }
}

#[test]
fn candidate_evaluation_matches_commit_effects() {
    // The EFT promised by evaluate() equals the finish time recorded by
    // commit() for the same candidate.
    let wf = montage(GenConfig::new(30, 2));
    let p = paper();
    let mut plan = PlanState::new(&wf, &p);
    for &t in wf.topological_order() {
        let eval = plan
            .evaluate_all(t)
            .into_iter()
            .min_by(|a, b| a.eft.total_cmp(&b.eft))
            .unwrap();
        let vm = plan.commit(t, eval.candidate);
        assert_eq!(plan.schedule().assignment(t), Some(vm));
        assert!((plan.finish_time(t) - eval.eft).abs() < 1e-9);
    }
}

#[test]
fn planned_cost_tracks_simulated_cost_for_heftbudg() {
    // The planner's conservative model and the event simulator agree
    // within a reasonable factor (the planner ignores upload queuing; the
    // engine ignores nothing).
    let p = paper();
    for ty_seed in 1..=3u64 {
        let wf = montage(GenConfig::new(60, ty_seed));
        let b = floor(&wf, &p) * 2.0;
        let (s, _) = heft_budg(&wf, &p, b);
        let r = simulate(&wf, &p, &s, &SimConfig::planning()).unwrap();
        assert!(r.total_cost <= b * 1.05, "seed {ty_seed}: {} > {b}", r.total_cost);
        assert!(r.total_cost >= b * 0.05, "suspiciously cheap: {}", r.total_cost);
    }
}

#[test]
fn single_task_workflow_all_algorithms() {
    use wfs_workflow::gen::chain;
    let wf = chain(1, 500.0, 1e6);
    let p = paper();
    for alg in Algorithm::ALL {
        let s = alg.run(&wf, &p, 0.1);
        s.validate(&wf).unwrap_or_else(|e| panic!("{alg}: {e}"));
        assert_eq!(s.used_vm_count(), 1, "{alg}");
        let r = simulate(&wf, &p, &s, &SimConfig::planning()).unwrap();
        assert!(r.makespan > 0.0, "{alg}");
    }
}

#[test]
fn two_level_fork_join_all_algorithms() {
    use wfs_workflow::gen::fork_join;
    let wf = fork_join(12, 3000.0, 5e6);
    let p = paper();
    let b = floor(&wf, &p) * 3.0;
    for alg in Algorithm::ALL {
        let s = alg.run(&wf, &p, b);
        s.validate(&wf).unwrap_or_else(|e| panic!("{alg}: {e}"));
    }
}

#[test]
fn zero_budget_degenerates_to_min_cost_like_schedules() {
    // With no budget at all, the budget-aware algorithms should collapse
    // to (nearly) serial cheap executions, never crash.
    let wf = montage(GenConfig::new(30, 1));
    let p = paper();
    for alg in [
        Algorithm::MinMinBudg,
        Algorithm::HeftBudg,
        Algorithm::MaxMinBudg,
        Algorithm::SufferageBudg,
        Algorithm::Cg,
    ] {
        let s = alg.run(&wf, &p, 0.0);
        s.validate(&wf).unwrap();
        assert!(
            s.vm_ids().all(|v| s.vm_category(v) == p.cheapest()),
            "{alg} used a non-cheapest category at zero budget"
        );
    }
}

#[test]
fn huge_budget_converges_across_eft_algorithms() {
    // With unconstrained budget, MIN-MINBUDG/HEFTBUDG/MAX-MINBUDG all
    // become pure EFT minimizers: their makespans land within a small
    // band of each other.
    let wf = cybershake(GenConfig::new(60, 1));
    let p = paper();
    let mks: Vec<f64> = [Algorithm::MinMinBudg, Algorithm::HeftBudg, Algorithm::MaxMinBudg]
        .iter()
        .map(|alg| {
            simulate(&wf, &p, &alg.run(&wf, &p, 1e6), &SimConfig::planning())
                .unwrap()
                .makespan
        })
        .collect();
    let max = mks.iter().cloned().fold(f64::MIN, f64::max);
    let min = mks.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max / min < 1.5, "makespans diverge too much: {mks:?}");
}

#[test]
fn new_vm_candidates_cover_every_category() {
    let wf = montage(GenConfig::new(30, 1));
    let p = paper();
    let plan = PlanState::new(&wf, &p);
    let cats: Vec<_> = plan
        .candidates()
        .into_iter()
        .filter_map(|c| match c {
            Candidate::New(cat) => Some(cat),
            Candidate::Used(_) => None,
        })
        .collect();
    assert_eq!(cats.len(), p.category_count());
}
