//! Naive reference mode for the planner fast path.
//!
//! The optimized candidate sweep ([`crate::PlanState::with_candidate_evals`])
//! and the incremental MIN-MIN/MAX-MIN selection caches are designed to be
//! *observationally identical* to the straightforward implementations they
//! replaced. This module provides the switch that turns those optimizations
//! off, so tests (and the quickbench baseline) can run any algorithm twice —
//! fast and naive — and assert the outputs match bit for bit.
//!
//! The flag is thread-local and sampled when a [`crate::PlanState`] is
//! constructed, so wrapping a whole algorithm run is enough:
//!
//! ```
//! use wfs_scheduler::{reference, Algorithm};
//! use wfs_platform::Platform;
//! use wfs_workflow::gen::chain;
//!
//! let wf = chain(4, 100.0, 1e6);
//! let p = Platform::paper_default();
//! let fast = Algorithm::MinMinBudg.run(&wf, &p, 10.0);
//! let naive = reference::with_naive(|| Algorithm::MinMinBudg.run(&wf, &p, 10.0));
//! assert_eq!(fast, naive);
//! ```

use std::cell::Cell;

thread_local! {
    static NAIVE: Cell<bool> = const { Cell::new(false) };
}

/// Run `f` with the naive reference mode enabled on this thread: every
/// `PlanState` created inside uses per-candidate evaluation and the
/// incremental selection caches are bypassed. Restores the previous mode
/// on exit (also on panic).
pub fn with_naive<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            NAIVE.with(|n| n.set(self.0));
        }
    }
    let _guard = Restore(NAIVE.with(|n| n.replace(true)));
    f()
}

/// Whether naive reference mode is active on this thread.
pub(crate) fn naive_enabled() -> bool {
    NAIVE.with(|n| n.get())
}
