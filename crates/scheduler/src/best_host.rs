//! `getBestHost` (paper Algorithm 2): smallest EFT among the candidates
//! whose cost respects the task's budget share plus the pot — plus the
//! incremental per-task cache that lets MIN-MIN/MAX-MIN avoid re-running
//! the full selection for every ready task on every round.

use crate::plan::{Candidate, HostEval, PlanState};
use wfs_observe::{Event as Obs, EventSink};
use wfs_simulator::VmId;
use wfs_workflow::{OrdF64, TaskId};

/// Tolerance on budget comparisons (absolute, dollars).
pub(crate) const COST_EPS: f64 = 1e-9;

/// Selection key for the affordable branch: smaller EFT, then cheaper
/// cost, then used VM before new, then lower id. A total order ([`OrdF64`]
/// makes the float components NaN-safe; the kind/id pair is unique, so the
/// order is strict over distinct candidates).
#[inline]
fn key(e: &HostEval) -> (OrdF64, OrdF64, u8, u32) {
    let (kind, id) = match e.candidate {
        Candidate::Used(vm) => (0u8, vm.0),
        Candidate::New(cat) => (1u8, cat.0),
    };
    (OrdF64(e.eft), OrdF64(e.cost), kind, id)
}

/// Fall-back key (nothing affordable): cheapest, then earliest EFT.
#[inline]
fn fallback_key(e: &HostEval) -> (OrdF64, OrdF64) {
    (OrdF64(e.cost), OrdF64(e.eft))
}

/// Outcome of one best-host selection, with the metadata the incremental
/// cache needs to decide whether the result can be reused later.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Selection {
    /// The chosen host evaluation.
    pub best: HostEval,
    /// True when `best` came from the affordable branch (cost within the
    /// limit); false when it is the fall-back cheapest candidate.
    pub affordable: bool,
    /// True when `best` is also the best candidate *ignoring* the budget:
    /// raising the limit then cannot change the winner.
    pub unconstrained_same: bool,
}

/// One-pass selection over a candidate sweep. Replicates the original
/// `get_best_host` semantics exactly:
///
/// - affordable branch: minimum of `key` (a strict total order, so the
///   historical "last minimal wins" `min_by` detail cannot matter);
/// - fall-back branch: minimum of `(cost, eft)` where ties CAN happen, and
///   `Iterator::min_by` keeps the *last* minimal element — hence `<=` in
///   the replacement test below.
pub(crate) fn select(evals: &[HostEval], limit: f64) -> Selection {
    debug_assert!(!evals.is_empty(), "a platform always offers new-VM candidates");
    let mut aff: Option<HostEval> = None;
    let mut unconstrained: Option<HostEval> = None;
    let mut cheapest: Option<HostEval> = None;
    for e in evals {
        if unconstrained.as_ref().is_none_or(|u| key(e) < key(u)) {
            unconstrained = Some(*e);
        }
        if e.cost <= limit + COST_EPS && aff.as_ref().is_none_or(|a| key(e) < key(a)) {
            aff = Some(*e);
        }
        if cheapest
            .as_ref()
            .is_none_or(|c| fallback_key(e) <= fallback_key(c))
        {
            cheapest = Some(*e);
        }
    }
    #[allow(clippy::expect_used)] // evals is non-empty, so all folds are Some
    match aff {
        Some(best) => Selection {
            best,
            affordable: true,
            unconstrained_same: best.candidate
                == unconstrained.expect("non-empty").candidate,
        },
        None => Selection {
            best: cheapest.expect("non-empty"),
            affordable: false,
            unconstrained_same: false,
        },
    }
}

/// Lean selection for callers that don't need cache metadata: one pass
/// tracking only the affordable minimum; the fall-back cheapest candidate
/// is computed in a second pass only when nothing was affordable (rare).
/// Result is identical to [`select`]`.best`.
pub(crate) fn select_best(evals: &[HostEval], limit: f64) -> HostEval {
    let mut aff: Option<&HostEval> = None;
    for e in evals {
        if e.cost <= limit + COST_EPS && aff.is_none_or(|a| key(e) < key(a)) {
            aff = Some(e);
        }
    }
    if let Some(best) = aff {
        return *best;
    }
    let mut cheapest: Option<&HostEval> = None;
    for e in evals {
        if cheapest.is_none_or(|c| fallback_key(e) <= fallback_key(c)) {
            cheapest = Some(e);
        }
    }
    #[allow(clippy::expect_used)] // evals is non-empty, so the fold is Some
    let best = cheapest.expect("a platform always offers new-VM candidates");
    *best
}

/// Pick the best host for `t` under the planning state `plan`:
///
/// - among candidates with `cost <= limit`, the one with the smallest EFT
///   (ties: cheaper cost, then used VM before new, then lower id);
/// - if *no* candidate is affordable, fall back to the globally cheapest
///   candidate (the schedule must still complete; the paper notes that
///   `getBestHost` then "will not return the host with the smallest EFT").
///
/// `limit = ∞` recovers the baseline MIN-MIN/HEFT behaviour.
pub fn get_best_host(plan: &PlanState<'_>, t: TaskId, limit: f64) -> HostEval {
    plan.with_candidate_evals(t, |evals| select_best(evals, limit))
}

/// [`get_best_host`] with an event sink: every candidate considered is
/// reported as an [`Obs::CandidateEvaluated`] (with its EFT, cost and
/// whether it fit the limit) before the selection is returned. With
/// `NoopSink` this is exactly [`get_best_host`].
pub fn get_best_host_observed<S: EventSink>(
    plan: &PlanState<'_>,
    t: TaskId,
    limit: f64,
    sink: &mut S,
) -> HostEval {
    plan.with_candidate_evals(t, |evals| {
        if S::ENABLED {
            for e in evals {
                let (used, host) = match e.candidate {
                    Candidate::Used(vm) => (true, vm.0),
                    Candidate::New(cat) => (false, cat.0),
                };
                sink.record(&Obs::CandidateEvaluated {
                    task: t.0,
                    used,
                    host,
                    eft: e.eft,
                    cost: e.cost,
                    affordable: e.cost <= limit + COST_EPS,
                });
            }
        }
        select_best(evals, limit)
    })
}

/// Full selection (with cache metadata) for `t`.
pub(crate) fn select_for(plan: &PlanState<'_>, t: TaskId, limit: f64) -> Selection {
    plan.with_candidate_evals(t, |evals| select(evals, limit))
}

/// Cached best-host result for one ready task.
#[derive(Debug, Clone, Copy)]
struct Entry {
    sel: Selection,
    /// Limit the selection was computed under.
    limit: f64,
    /// VM count at computation time (a new VM adds a candidate).
    vm_count: usize,
}

/// Incremental best-host cache for round-based list schedulers
/// (MIN-MIN, MAX-MIN, SUFFERAGE).
///
/// Between two rounds, exactly one `(task, vm)` pair is committed, and the
/// commit only moves the committed VM's availability — every other
/// candidate's evaluation for a still-ready task is unchanged (the
/// committed task cannot be a predecessor of a task that was already
/// ready). A cached winner therefore stays valid unless:
///
/// - a new VM was enrolled (new candidate; `vm_count` changed),
/// - the cached winner sits on the committed VM (its own eval moved),
/// - the task's limit moved in a way that can change the winner:
///   - affordable winner: limit dropped below its cost, or the limit rose
///     while a better-but-unaffordable candidate existed
///     (`!unconstrained_same`),
///   - fall-back winner (nothing affordable): the limit rose enough that
///     the cheapest candidate now fits (`cost <= limit + ε`),
/// - the committed VM's re-evaluation (one O(deg) `evaluate` call) shows it
///   could now interfere: beat an affordable winner, or — in the fall-back
///   case — become affordable or tie/beat the cheapest `(cost, eft)` (ties
///   matter because the naive fall-back keeps the *last* minimal).
///
/// Whenever reuse is not provably exact, the entry is recomputed with a
/// full sweep — the cache is an exactness-preserving memoization, and the
/// equivalence suite checks schedules stay bit-identical to naive runs.
#[derive(Debug)]
pub(crate) struct BestHostCache {
    entries: Vec<Option<Entry>>,
    /// Selections answered from a cached entry (patch check succeeded).
    hits: u64,
    /// Selections that needed a full recomputing sweep.
    misses: u64,
}

impl BestHostCache {
    /// Empty cache for a workflow of `n_tasks` tasks.
    pub(crate) fn new(n_tasks: usize) -> Self {
        Self { entries: vec![None; n_tasks], hits: 0, misses: 0 }
    }

    /// `(hits, misses)` accumulated so far — flushed as counter events by
    /// the observed schedulers.
    pub(crate) fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Drop the entry of a task (call after committing it).
    pub(crate) fn forget(&mut self, t: TaskId) {
        self.entries[t.index()] = None;
    }

    /// Can the cached selection be reused under the new `limit`?
    fn limit_still_valid(entry: &Entry, limit: f64) -> bool {
        if entry.sel.affordable {
            entry.sel.best.cost <= limit + COST_EPS
                && (limit <= entry.limit || entry.sel.unconstrained_same)
        } else {
            // The fall-back winner is the cheapest candidate: the affordable
            // set stays empty as long as even it does not fit.
            limit <= entry.limit || entry.sel.best.cost > limit + COST_EPS
        }
    }

    /// Best host for `t` under `limit`, reusing the cached result when the
    /// last commit (to `last_commit`) provably cannot have changed it.
    pub(crate) fn best(
        &mut self,
        plan: &PlanState<'_>,
        t: TaskId,
        limit: f64,
        last_commit: Option<VmId>,
    ) -> HostEval {
        if plan.is_naive() {
            return get_best_host(plan, t, limit);
        }
        let vm_count = plan.schedule().vm_count();
        if let (Some(entry), Some(w)) = (&mut self.entries[t.index()], last_commit) {
            if entry.vm_count == vm_count
                && entry.sel.best.candidate != Candidate::Used(w)
                && Self::limit_still_valid(entry, limit)
            {
                // Patch check: the committed VM is the only candidate whose
                // evaluation moved; one O(deg) re-evaluation decides
                // whether it can now interfere with the cached winner.
                let patched = plan.evaluate(t, Candidate::Used(w));
                let best = &entry.sel.best;
                if entry.sel.affordable {
                    let wins =
                        patched.cost <= limit + COST_EPS && key(&patched) < key(best);
                    if !wins {
                        entry.sel.unconstrained_same =
                            entry.sel.unconstrained_same && key(&patched) >= key(best);
                        entry.limit = limit;
                        self.hits += 1;
                        return entry.sel.best;
                    }
                } else {
                    let interferes = patched.cost <= limit + COST_EPS
                        || fallback_key(&patched) <= fallback_key(best);
                    if !interferes {
                        entry.limit = limit;
                        self.hits += 1;
                        return entry.sel.best;
                    }
                }
            }
        }
        self.misses += 1;
        let sel = select_for(plan, t, limit);
        self.entries[t.index()] = Some(Entry { sel, limit, vm_count });
        sel.best
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use crate::plan::PlanState;
    use wfs_platform::{BillingPolicy, CategoryId, Datacenter, Platform, VmCategory};
    use wfs_workflow::gen::chain;

    /// Two categories: slow/cheap and fast/expensive; trivial boot/init to
    /// keep numbers readable.
    fn p2() -> Platform {
        Platform::new(
            vec![
                VmCategory::new("slow", 1.0, 3.6, 0.0, 0.0),  // $0.001/s
                VmCategory::new("fast", 4.0, 36.0, 0.0, 0.0), // $0.01/s
            ],
            Datacenter::new(1e9, 0.0, 0.0),
        )
        .with_billing(BillingPolicy::Continuous)
    }

    #[test]
    fn infinite_budget_picks_fastest() {
        let wf = chain(1, 100.0, 0.0);
        let p = p2();
        let plan = PlanState::new(&wf, &p);
        let best = get_best_host(&plan, wfs_workflow::TaskId(0), f64::INFINITY);
        // fast: 25 s at $0.01 = $0.25; slow: 100 s at $0.001 = $0.10.
        assert_eq!(best.candidate, Candidate::New(CategoryId(1)));
        assert!((best.eft - 25.0).abs() < 1e-9);
    }

    #[test]
    fn tight_budget_forces_cheap_host() {
        let wf = chain(1, 100.0, 0.0);
        let p = p2();
        let plan = PlanState::new(&wf, &p);
        // $0.25 needed for fast; give only $0.15.
        let best = get_best_host(&plan, wfs_workflow::TaskId(0), 0.15);
        assert_eq!(best.candidate, Candidate::New(CategoryId(0)));
        assert!((best.cost - 0.10).abs() < 1e-9);
    }

    #[test]
    fn impossible_budget_falls_back_to_cheapest() {
        let wf = chain(1, 100.0, 0.0);
        let p = p2();
        let plan = PlanState::new(&wf, &p);
        let best = get_best_host(&plan, wfs_workflow::TaskId(0), 0.0);
        // Nothing is affordable; still returns the cheapest option.
        assert_eq!(best.candidate, Candidate::New(CategoryId(0)));
    }

    #[test]
    fn boundary_budget_is_affordable() {
        let wf = chain(1, 100.0, 0.0);
        let p = p2();
        let plan = PlanState::new(&wf, &p);
        let best = get_best_host(&plan, wfs_workflow::TaskId(0), 0.25);
        assert_eq!(best.candidate, Candidate::New(CategoryId(1)), "exact budget must qualify");
    }

    #[test]
    fn used_vm_preferred_on_eft_tie() {
        let wf = chain(2, 100.0, 0.0);
        let p = Platform::new(
            vec![VmCategory::new("u", 1.0, 3.6, 0.0, 0.0)],
            Datacenter::new(1e9, 0.0, 0.0),
        )
        .with_billing(BillingPolicy::Continuous);
        let mut plan = PlanState::new(&wf, &p);
        plan.commit(wfs_workflow::TaskId(0), Candidate::New(CategoryId(0)));
        // Chain: task 1 on the used VM starts at 100 (no transfer) vs a new
        // VM also possible; used wins on EFT (no data transfer + no boot).
        let best = get_best_host(&plan, wfs_workflow::TaskId(1), f64::INFINITY);
        assert!(matches!(best.candidate, Candidate::Used(_)));
    }

    #[test]
    fn selection_metadata_tracks_affordability() {
        let wf = chain(1, 100.0, 0.0);
        let p = p2();
        let plan = PlanState::new(&wf, &p);
        let t = wfs_workflow::TaskId(0);
        // Rich: fast is both the affordable and the unconstrained best.
        let rich = select_for(&plan, t, f64::INFINITY);
        assert!(rich.affordable && rich.unconstrained_same);
        // Tight: slow wins on budget while fast stays better on EFT.
        let tight = select_for(&plan, t, 0.15);
        assert!(tight.affordable && !tight.unconstrained_same);
        // Broke: nothing affordable, fall-back to cheapest.
        let broke = select_for(&plan, t, 0.0);
        assert!(!broke.affordable);
    }

    #[test]
    fn cache_matches_fresh_selection_across_commits() {
        // Drive a plan forward and, at every step, compare the cached
        // answer to a fresh full selection for a spread of limits.
        let wf = wfs_workflow::gen::fork_join(6, 200.0, 1e6);
        let p = p2();
        let mut plan = PlanState::new(&wf, &p);
        let mut cache = BestHostCache::new(wf.task_count());
        let mut last: Option<wfs_simulator::VmId> = None;
        for &t in wf.topological_order() {
            for limit in [0.0, 0.05, 0.2, 1.0, f64::INFINITY] {
                let cached = cache.best(&plan, t, limit, last);
                let fresh = get_best_host(&plan, t, limit);
                assert_eq!(cached, fresh, "task {t:?} limit {limit}");
            }
            let best = cache.best(&plan, t, 0.2, last);
            last = Some(plan.commit(t, best.candidate));
            cache.forget(t);
        }
    }
}
