//! `getBestHost` (paper Algorithm 2): smallest EFT among the candidates
//! whose cost respects the task's budget share plus the pot.

use crate::plan::{Candidate, HostEval, PlanState};
use wfs_workflow::TaskId;

/// Tolerance on budget comparisons (absolute, dollars).
const COST_EPS: f64 = 1e-9;

/// Pick the best host for `t` under the planning state `plan`:
///
/// - among candidates with `cost <= limit`, the one with the smallest EFT
///   (ties: cheaper cost, then used VM before new, then lower id);
/// - if *no* candidate is affordable, fall back to the globally cheapest
///   candidate (the schedule must still complete; the paper notes that
///   `getBestHost` then "will not return the host with the smallest EFT").
///
/// `limit = ∞` recovers the baseline MIN-MIN/HEFT behaviour.
pub fn get_best_host(plan: &PlanState<'_>, t: TaskId, limit: f64) -> HostEval {
    let evals = plan.evaluate_all(t);
    debug_assert!(!evals.is_empty(), "a platform always offers new-VM candidates");
    let key = |e: &HostEval| {
        // Used-before-New gives stable, reuse-friendly tie-breaking.
        let (kind, id) = match e.candidate {
            Candidate::Used(vm) => (0u8, vm.0),
            Candidate::New(cat) => (1u8, cat.0),
        };
        (e.eft, e.cost, kind, id)
    };
    let affordable = evals
        .iter()
        .filter(|e| e.cost <= limit + COST_EPS)
        .min_by(|a, b| key(a).partial_cmp(&key(b)).expect("finite planning values"));
    match affordable {
        Some(e) => *e,
        None => *evals
            .iter()
            .min_by(|a, b| {
                (a.cost, a.eft)
                    .partial_cmp(&(b.cost, b.eft))
                    .expect("finite planning values")
            })
            .expect("non-empty"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanState;
    use wfs_platform::{BillingPolicy, CategoryId, Datacenter, Platform, VmCategory};
    use wfs_workflow::gen::chain;

    /// Two categories: slow/cheap and fast/expensive; trivial boot/init to
    /// keep numbers readable.
    fn p2() -> Platform {
        Platform::new(
            vec![
                VmCategory::new("slow", 1.0, 3.6, 0.0, 0.0),  // $0.001/s
                VmCategory::new("fast", 4.0, 36.0, 0.0, 0.0), // $0.01/s
            ],
            Datacenter::new(1e9, 0.0, 0.0),
        )
        .with_billing(BillingPolicy::Continuous)
    }

    #[test]
    fn infinite_budget_picks_fastest() {
        let wf = chain(1, 100.0, 0.0);
        let p = p2();
        let plan = PlanState::new(&wf, &p);
        let best = get_best_host(&plan, wfs_workflow::TaskId(0), f64::INFINITY);
        // fast: 25 s at $0.01 = $0.25; slow: 100 s at $0.001 = $0.10.
        assert_eq!(best.candidate, Candidate::New(CategoryId(1)));
        assert!((best.eft - 25.0).abs() < 1e-9);
    }

    #[test]
    fn tight_budget_forces_cheap_host() {
        let wf = chain(1, 100.0, 0.0);
        let p = p2();
        let plan = PlanState::new(&wf, &p);
        // $0.25 needed for fast; give only $0.15.
        let best = get_best_host(&plan, wfs_workflow::TaskId(0), 0.15);
        assert_eq!(best.candidate, Candidate::New(CategoryId(0)));
        assert!((best.cost - 0.10).abs() < 1e-9);
    }

    #[test]
    fn impossible_budget_falls_back_to_cheapest() {
        let wf = chain(1, 100.0, 0.0);
        let p = p2();
        let plan = PlanState::new(&wf, &p);
        let best = get_best_host(&plan, wfs_workflow::TaskId(0), 0.0);
        // Nothing is affordable; still returns the cheapest option.
        assert_eq!(best.candidate, Candidate::New(CategoryId(0)));
    }

    #[test]
    fn boundary_budget_is_affordable() {
        let wf = chain(1, 100.0, 0.0);
        let p = p2();
        let plan = PlanState::new(&wf, &p);
        let best = get_best_host(&plan, wfs_workflow::TaskId(0), 0.25);
        assert_eq!(best.candidate, Candidate::New(CategoryId(1)), "exact budget must qualify");
    }

    #[test]
    fn used_vm_preferred_on_eft_tie() {
        let wf = chain(2, 100.0, 0.0);
        let p = Platform::new(
            vec![VmCategory::new("u", 1.0, 3.6, 0.0, 0.0)],
            Datacenter::new(1e9, 0.0, 0.0),
        )
        .with_billing(BillingPolicy::Continuous);
        let mut plan = PlanState::new(&wf, &p);
        plan.commit(wfs_workflow::TaskId(0), Candidate::New(CategoryId(0)));
        // Chain: task 1 on the used VM starts at 100 (no transfer) vs a new
        // VM also possible; used wins on EFT (no data transfer + no boot).
        let best = get_best_host(&plan, wfs_workflow::TaskId(1), f64::INFINITY);
        assert!(matches!(best.candidate, Candidate::Used(_)));
    }
}
