//! CG and CG+ — Critical Greedy (competitor from [25], extended to this
//! paper's platform model, §V-D2).
//!
//! CG partitions the budget with a global ratio
//! `gb = (B − c_min) / (c_max − c_min)` where `c_min`/`c_max` are the costs
//! of running the whole workflow on a single VM of the cheapest / most
//! expensive category. Each task `t` (taken in HEFT order — [25] leaves the
//! order unspecified) gets the target budget
//! `q_t = c_{t,min} + (c_{t,max} − c_{t,min})·gb` and is placed on the VM
//! *category* whose cost for `t` is closest to `q_t`; within that category
//! we pick the instance with the best EFT (our extension: [25] has no
//! communications).
//!
//! CG+ refines: while budget remains, re-assign the (task, VM) pair on the
//! critical path maximizing `ΔT/Δc` (time decrease per extra dollar). As
//! the paper points out, requiring `Δc > 0` makes CG+ blind to moves that
//! reduce both time and cost — we reproduce that behaviour faithfully.

use crate::heft::priority_list;
use crate::plan::{Candidate, PlanState};
use wfs_platform::{CategoryId, Platform};
use wfs_simulator::{simulate, Schedule, SimConfig, SimulationReport};
use wfs_workflow::{TaskId, Workflow};

/// Cost of the whole workflow executed sequentially on one VM of `cat`
/// (used for `c_min` / `c_max`).
fn whole_workflow_cost(wf: &Workflow, platform: &Platform, cat: CategoryId) -> f64 {
    let c = platform.category(cat);
    let external = wf.external_input_data() + wf.external_output_data();
    let duration = wf.total_conservative_work() / c.speed
        + external / platform.datacenter.bandwidth;
    platform.vm_cost(cat, duration) + platform.datacenter.cost(duration, external)
}

/// Per-task cost on a given category (conservative weight + predecessor
/// data transfers).
fn task_cost_on(wf: &Workflow, platform: &Platform, t: TaskId, cat: CategoryId) -> f64 {
    let c = platform.category(cat);
    let occupied = wf.task(t).weight.conservative() / c.speed
        + wf.pred_data_size(t) / platform.datacenter.bandwidth;
    occupied * c.cost_per_second()
}

/// Run CG: category per task via the global budget ratio, instance via EFT.
pub fn cg(wf: &Workflow, platform: &Platform, b_ini: f64) -> Schedule {
    // [25] assumes the most expensive category also costs the most for the
    // whole workflow; with cost linear in speed the *cheapest* category can
    // cost more overall (longer rental + longer datacenter span), so order
    // the two bounds before forming the ratio.
    let a = whole_workflow_cost(wf, platform, platform.cheapest());
    let b = whole_workflow_cost(wf, platform, platform.most_expensive());
    let (c_min, c_max) = (a.min(b), a.max(b));
    let gb = if c_max - c_min > 1e-12 {
        ((b_ini - c_min) / (c_max - c_min)).clamp(0.0, 1.0)
    } else if b_ini >= c_min {
        1.0
    } else {
        0.0
    };

    let mut plan = PlanState::new(wf, platform);
    for &t in &priority_list(wf, platform) {
        let t_min = task_cost_on(wf, platform, t, platform.cheapest());
        let t_max = task_cost_on(wf, platform, t, platform.most_expensive());
        let target = t_min + (t_max - t_min) * gb;
        // Category whose cost is closest to the task's predetermined share.
        // When costs tie (e.g. cost exactly linear in speed makes every
        // category cost the same for a communication-free task), break
        // toward the faster category if the global ratio leans rich, the
        // cheaper one otherwise — otherwise CG would degenerate to the
        // cheapest category on linear-price platforms.
        #[allow(clippy::expect_used)] // a platform has at least one category
        let cat = platform
            .category_ids()
            .min_by(|&a, &b| {
                let da = (task_cost_on(wf, platform, t, a) - target).abs();
                let db = (task_cost_on(wf, platform, t, b) - target).abs();
                let tie = if gb >= 0.5 {
                    platform
                        .category(b)
                        .speed
                        .total_cmp(&platform.category(a).speed)
                } else {
                    platform
                        .category(a)
                        .speed
                        .total_cmp(&platform.category(b).speed)
                };
                da.total_cmp(&db).then(tie).then(a.0.cmp(&b.0))
            })
            .expect("platform is non-empty");
        // Instance: best EFT among used VMs of that category + a fresh one.
        #[allow(clippy::expect_used)] // the fresh VM of `cat` is always a candidate
        let best = plan.with_candidate_evals(t, |evals| {
            evals
                .iter()
                .filter(|e| match e.candidate {
                    Candidate::Used(vm) => plan.schedule().vm_category(vm) == cat,
                    Candidate::New(c2) => c2 == cat,
                })
                .min_by(|a, b| a.eft.total_cmp(&b.eft).then(a.cost.total_cmp(&b.cost)))
                .copied()
                .expect("at least the fresh VM of `cat` is a candidate")
        });
        plan.commit(t, best.candidate);
    }
    plan.into_schedule()
}

/// Run CG, then the CG+ critical-path refinement.
pub fn cg_plus(wf: &Workflow, platform: &Platform, b_ini: f64) -> Schedule {
    let mut sched = cg(wf, platform, b_ini);
    let cfg = SimConfig::planning();
    // Rank positions keep per-VM orders executable after moves.
    let list = priority_list(wf, platform);
    let mut pos = vec![0usize; wf.task_count()];
    for (i, &t) in list.iter().enumerate() {
        pos[t.index()] = i;
    }

    #[allow(clippy::expect_used)] // CG emits a complete, validated schedule
    let mut report = simulate(wf, platform, &sched, &cfg).expect("CG emits a valid schedule");
    // Bounded loop: each accepted move strictly decreases the makespan;
    // n*vm_count is a generous cap against float-cycling.
    for _ in 0..wf.task_count() * 4 {
        let path = critical_path_tasks(wf, &report);
        let mut best: Option<(Schedule, SimulationReport, f64)> = None;
        for &t in &path {
            #[allow(clippy::expect_used)] // CG assigns every task
            let cur = sched.assignment(t).expect("complete schedule");
            let mut trials: Vec<Schedule> = Vec::new();
            for vm in sched.vm_ids().filter(|&v| v != cur) {
                let mut s = sched.clone();
                s.reassign(t, vm);
                s.sort_orders_by(|x| pos[x.index()]);
                trials.push(s);
            }
            for cat in platform.category_ids() {
                let mut s = sched.clone();
                let vm = s.add_vm(cat);
                s.reassign(t, vm);
                s.sort_orders_by(|x| pos[x.index()]);
                trials.push(s);
            }
            for s in trials {
                let Ok(r) = simulate(wf, platform, &s, &cfg) else { continue };
                let dt = report.makespan - r.makespan;
                let dc = r.total_cost - report.total_cost;
                // Faithful to [25]: only time-decreasing, cost-increasing
                // moves within budget qualify; the ratio ΔT/Δc is maximized.
                if dt > 1e-9 && dc > 1e-9 && r.total_cost <= b_ini {
                    let ratio = dt / dc;
                    if best.as_ref().is_none_or(|(_, _, b)| ratio > *b) {
                        best = Some((s, r, ratio));
                    }
                }
            }
        }
        match best {
            Some((s, r, _)) => {
                sched = s;
                report = r;
            }
            None => break,
        }
    }
    sched.prune_empty_vms();
    sched
}

/// Tasks on the critical path of a simulated execution: start from the task
/// finishing last and walk backwards through the dependency or same-VM
/// predecessor whose finish time matches the start time.
fn critical_path_tasks(wf: &Workflow, report: &SimulationReport) -> Vec<TaskId> {
    let mut path = Vec::new();
    let Some(mut cur) = report
        .tasks
        .iter()
        .max_by(|a, b| a.end.total_cmp(&b.end))
        .map(|r| r.task)
    else {
        return path;
    };
    loop {
        path.push(cur);
        let rec = report.task(cur);
        // Candidate blockers: DAG predecessors and the task right before
        // `cur` on the same VM. Pick the one finishing latest.
        let mut blocker: Option<(TaskId, f64)> = None;
        for p in wf.predecessors(cur) {
            let end = report.task(p).end;
            if blocker.is_none_or(|(_, e)| end > e) {
                blocker = Some((p, end));
            }
        }
        for r in &report.tasks {
            if r.vm == rec.vm && r.end <= rec.start + 1e-9 && r.task != cur
                && blocker.is_none_or(|(_, e)| r.end > e) {
                    blocker = Some((r.task, r.end));
                }
        }
        match blocker {
            Some((b, _)) if !path.contains(&b) => cur = b,
            _ => break,
        }
    }
    path
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use wfs_workflow::gen::{cybershake, ligo, montage, GenConfig};

    fn paper() -> Platform {
        Platform::paper_default()
    }

    #[test]
    fn cg_schedules_everything_valid() {
        for n in [30, 60] {
            let wf = montage(GenConfig::new(n, 1));
            let p = paper();
            cg(&wf, &p, 2.0).validate(&wf).unwrap();
        }
    }

    #[test]
    fn cg_low_budget_uses_cheapest_category() {
        let wf = ligo(GenConfig::new(30, 1));
        let p = paper();
        let s = cg(&wf, &p, 0.0);
        for vm in s.vm_ids() {
            assert_eq!(s.vm_category(vm), p.cheapest());
        }
    }

    #[test]
    fn cg_high_budget_uses_expensive_category() {
        let wf = ligo(GenConfig::new(30, 1));
        let p = paper();
        let s = cg(&wf, &p, 1e6);
        for vm in s.vm_ids() {
            assert_eq!(s.vm_category(vm), p.most_expensive());
        }
    }

    #[test]
    fn cg_category_mix_monotone_in_budget() {
        // CG's global ratio gb moves the whole category mix from
        // all-cheapest (low budget; the near-min-cost schedules of Fig. 3)
        // towards all-fastest as the budget grows, with no intermediate
        // dips — the per-task shares never recycle leftovers, which is why
        // CG's makespan lags HEFTBUDG's at equal budget.
        let wf = cybershake(GenConfig::new(60, 1));
        let p = paper();
        let floor = simulate(
            &wf,
            &p,
            &crate::min_cost_schedule(&wf, &p),
            &SimConfig::planning(),
        )
        .unwrap()
        .total_cost;
        let mean_cat = |b: f64| {
            let s = cg(&wf, &p, b);
            let total: u32 = s.vm_ids().map(|v| s.vm_category(v).0).sum();
            total as f64 / s.vm_count() as f64
        };
        let mut prev = -1.0;
        for mult in [0.5, 0.8, 1.0, 1.5, 3.0, 10.0] {
            let m = mean_cat(floor * mult);
            assert!(m >= prev - 1e-9, "category mix dipped at x{mult}: {m} < {prev}");
            prev = m;
        }
        assert_eq!(mean_cat(floor * 0.5), 0.0, "sub-floor budget => all cheapest");
        assert_eq!(mean_cat(floor * 10.0), 2.0, "rich budget => all fastest");
    }

    #[test]
    fn cg_plus_never_worse_and_respects_budget() {
        let wf = montage(GenConfig::new(30, 1));
        let p = paper();
        let cfg = SimConfig::planning();
        for budget in [1.0, 3.0] {
            let base = simulate(&wf, &p, &cg(&wf, &p, budget), &cfg).unwrap();
            let plus_sched = cg_plus(&wf, &p, budget);
            plus_sched.validate(&wf).unwrap();
            let plus = simulate(&wf, &p, &plus_sched, &cfg).unwrap();
            assert!(plus.makespan <= base.makespan + 1e-6);
            assert!(plus.total_cost <= budget + 1e-9, "cost {}", plus.total_cost);
        }
    }

    #[test]
    fn cg_plus_deterministic() {
        let wf = montage(GenConfig::new(30, 2));
        let p = paper();
        assert_eq!(cg_plus(&wf, &p, 2.0), cg_plus(&wf, &p, 2.0));
    }

    #[test]
    fn critical_path_walks_to_an_entryish_task() {
        let wf = montage(GenConfig::new(30, 1));
        let p = paper();
        let s = cg(&wf, &p, 2.0);
        let r = simulate(&wf, &p, &s, &SimConfig::planning()).unwrap();
        let path = critical_path_tasks(&wf, &r);
        assert!(!path.is_empty());
        // The path ends on the overall last-finishing task's chain start.
        let last = r.tasks.iter().max_by(|a, b| a.end.total_cmp(&b.end)).unwrap().task;
        assert_eq!(path[0], last);
    }
}
