//! HEFT and its budget-aware extension HEFTBUDG (paper Algorithm 4).
//!
//! HEFT ranks tasks by their *bottom level* (upward rank) and greedily maps
//! them, in rank order, to the host minimizing their EFT. HEFTBUDG keeps
//! the ordering but restricts each task's host choice to those respecting
//! its budget share plus the pot (Algorithm 2).

use crate::best_host::get_best_host_observed;
use crate::budget::{divide_budget, Pot};
use crate::plan::{Candidate, PlanState};
use wfs_observe::{Event as Obs, EventSink, NoopSink};
use wfs_platform::Platform;
use wfs_simulator::Schedule;
use wfs_workflow::analysis::{heft_order, WeightMode};
use wfs_workflow::{TaskId, Workflow};

/// The HEFT priority list for `wf` on `platform`: tasks by non-increasing
/// bottom level, computed with conservative weights at the mean speed
/// (`ListT` in the paper).
pub fn priority_list(wf: &Workflow, platform: &Platform) -> Vec<TaskId> {
    heft_order(wf, WeightMode::Conservative, platform.mean_speed(), platform.datacenter.bandwidth)
}

/// Run HEFT (unbounded budget) — the baseline of §V-B.
pub fn heft(wf: &Workflow, platform: &Platform) -> Schedule {
    heft_inner(wf, platform, None, Pot::new(), &mut NoopSink).0
}

/// [`heft`] with an event sink (no budget events: the baseline has no
/// shares, so limits are infinite and the pot stays empty).
pub fn heft_observed<S: EventSink>(wf: &Workflow, platform: &Platform, sink: &mut S) -> Schedule {
    heft_inner(wf, platform, None, Pot::new(), sink).0
}

/// Run HEFTBUDG with initial budget `b_ini` (Algorithm 4). Returns the
/// schedule and the priority list (the refinement algorithms reuse it).
pub fn heft_budg(wf: &Workflow, platform: &Platform, b_ini: f64) -> (Schedule, Vec<TaskId>) {
    heft_budg_observed(wf, platform, b_ini, &mut NoopSink)
}

/// [`heft_budg`] with an event sink: the budget division, every task's
/// rank, share, candidate evaluations and final placement (with pot
/// before/after) are reported to `sink`.
pub fn heft_budg_observed<S: EventSink>(
    wf: &Workflow,
    platform: &Platform,
    b_ini: f64,
    sink: &mut S,
) -> (Schedule, Vec<TaskId>) {
    let (s, list, _) = heft_inner(wf, platform, Some(b_ini), Pot::new(), sink);
    (s, list)
}

/// HEFTBUDG with an explicit pot configuration (ablation hook).
pub fn heft_budg_with_pot(
    wf: &Workflow,
    platform: &Platform,
    b_ini: f64,
    pot: Pot,
) -> (Schedule, Vec<TaskId>) {
    let (s, list, _) = heft_inner(wf, platform, Some(b_ini), pot, &mut NoopSink);
    (s, list)
}

/// HEFTBUDG that also returns the final [`Pot`], so a caller can carry the
/// unspent leftovers into a later planning round (the recovery layer
/// re-plans the residual DAG per epoch and threads the pot through).
pub fn heft_budg_carry(wf: &Workflow, platform: &Platform, b_ini: f64, pot: Pot) -> (Schedule, Pot) {
    heft_budg_carry_observed(wf, platform, b_ini, pot, &mut NoopSink)
}

/// [`heft_budg_carry`] with an event sink (the recovery layer's per-epoch
/// re-planning uses this so epoch plans are observable too).
pub fn heft_budg_carry_observed<S: EventSink>(
    wf: &Workflow,
    platform: &Platform,
    b_ini: f64,
    pot: Pot,
    sink: &mut S,
) -> (Schedule, Pot) {
    let (s, _, pot) = heft_inner(wf, platform, Some(b_ini), pot, sink);
    (s, pot)
}

fn heft_inner<S: EventSink>(
    wf: &Workflow,
    platform: &Platform,
    b_ini: Option<f64>,
    mut pot: Pot,
    sink: &mut S,
) -> (Schedule, Vec<TaskId>, Pot) {
    let split = b_ini.map(|b| divide_budget(wf, platform, b));
    if S::ENABLED {
        if let Some(s) = &split {
            sink.record(&Obs::BudgetReserved {
                initial: s.initial,
                reserved_datacenter: s.reserved_datacenter,
                reserved_init: s.reserved_init,
                b_calc: s.b_calc,
            });
        }
    }
    let list = priority_list(wf, platform);
    let mut plan = PlanState::new(wf, platform);
    for (pos, &t) in list.iter().enumerate() {
        let limit = match &split {
            Some(s) => s.share(t) + pot.available(),
            None => f64::INFINITY,
        };
        if S::ENABLED {
            sink.record(&Obs::TaskRanked { pos: u32::try_from(pos).unwrap_or(u32::MAX), task: t.0 });
            if let Some(s) = &split {
                sink.record(&Obs::TaskShare { task: t.0, share: s.share(t) });
            }
        }
        let eval = get_best_host_observed(&plan, t, limit, sink);
        let pot_before = pot.available();
        let vm = plan.commit(t, eval.candidate);
        if let Some(s) = &split {
            pot.settle(s.share(t), eval.cost);
        }
        if S::ENABLED {
            sink.record(&Obs::TaskPlaced {
                task: t.0,
                vm: vm.0,
                new_vm: matches!(eval.candidate, Candidate::New(_)),
                eft: eval.eft,
                cost: eval.cost,
                limit,
                pot_before,
                pot_after: pot.available(),
            });
        }
    }
    if S::ENABLED {
        let (sweeps, cand_evals) = plan.sweep_stats();
        sink.record(&Obs::Counter { name: "plan_sweeps", delta: sweeps });
        sink.record(&Obs::Counter { name: "plan_candidate_evals", delta: cand_evals });
    }
    debug_assert!(plan.is_complete());
    (plan.into_schedule(), list, pot)
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use wfs_simulator::{simulate, SimConfig};
    use wfs_workflow::gen::{cybershake, ligo, montage, GenConfig};

    fn paper() -> Platform {
        Platform::paper_default()
    }

    #[test]
    fn baseline_schedules_everything() {
        for n in [30, 60, 90] {
            let wf = montage(GenConfig::new(n, 1));
            let p = paper();
            let s = heft(&wf, &p);
            s.validate(&wf).unwrap();
        }
    }

    #[test]
    fn priority_list_is_topologically_valid() {
        let wf = cybershake(GenConfig::new(60, 1));
        let p = paper();
        let list = priority_list(&wf, &p);
        let mut pos = vec![0usize; wf.task_count()];
        for (i, t) in list.iter().enumerate() {
            pos[t.index()] = i;
        }
        for e in wf.edges() {
            assert!(pos[e.from.index()] < pos[e.to.index()]);
        }
    }

    #[test]
    fn infinite_budget_matches_baseline() {
        // Paper §V-B: with infinite budget HEFT == HEFTBUDG.
        let wf = ligo(GenConfig::new(60, 2));
        let p = paper();
        let base = heft(&wf, &p);
        let (budg, _) = heft_budg(&wf, &p, 1e9);
        assert_eq!(base, budg);
    }

    #[test]
    fn budget_caps_planned_cost() {
        let wf = montage(GenConfig::new(60, 1));
        let p = paper();
        for budget in [0.5, 1.0, 2.0, 5.0] {
            let (s, _) = heft_budg(&wf, &p, budget);
            s.validate(&wf).unwrap();
            let r = simulate(&wf, &p, &s, &SimConfig::planning()).unwrap();
            // Conservative planning keeps the planned cost within budget
            // whenever the budget is feasible at all (min-cost schedule of
            // this workflow is well below $0.5).
            assert!(
                r.total_cost <= budget * 1.05,
                "budget {budget}: planned cost {}",
                r.total_cost
            );
        }
    }

    #[test]
    fn larger_budget_never_hurts_makespan_much() {
        let wf = cybershake(GenConfig::new(60, 1));
        let p = paper();
        let cfg = SimConfig::planning();
        let mk = |b: f64| {
            let (s, _) = heft_budg(&wf, &p, b);
            simulate(&wf, &p, &s, &cfg).unwrap().makespan
        };
        let tight = mk(1.0);
        let rich = mk(50.0);
        assert!(rich <= tight * 1.1, "rich {rich} vs tight {tight}");
    }

    #[test]
    fn stochastic_runs_usually_respect_budget() {
        // Paper Fig. 1: "the budget constraint is respected in almost all
        // cases" despite stochastic weights (σ = 50 %).
        let wf = montage(GenConfig::new(30, 1));
        let p = paper();
        let budget = 1.5;
        let (s, _) = heft_budg(&wf, &p, budget);
        let ok = (0..25)
            .filter(|&seed| {
                simulate(&wf, &p, &s, &SimConfig::stochastic(seed))
                    .unwrap()
                    .within_budget(budget)
            })
            .count();
        assert!(ok >= 23, "only {ok}/25 runs within budget");
    }

    #[test]
    fn deterministic() {
        let wf = ligo(GenConfig::new(90, 4));
        let p = paper();
        assert_eq!(heft_budg(&wf, &p, 3.0), heft_budg(&wf, &p, 3.0));
    }
}
