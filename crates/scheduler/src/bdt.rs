//! BDT — Budget Distribution with Trickling (competitor from [3], extended
//! to this paper's platform model, §V-D1).
//!
//! Three steps:
//! 1. group tasks into *levels* of pairwise-independent tasks;
//! 2. distribute the budget with the *All-in* strategy: the first task of
//!    the current level is tentatively granted the whole remaining budget,
//!    whatever it leaves trickles to the next task;
//! 3. schedule level by level; inside a level tasks go by increasing
//!    Earliest Start Time, each picking the host maximizing the
//!    time/cost trade-off factor `TCTF = Time_factor / Cost_factor`.
//!
//! BDT is eager: it aims at a very low makespan at the risk of overspending
//! (the paper shows it often fails to enforce the budget; Fig. 3).

use crate::plan::{Candidate, HostEval, PlanState};
use wfs_platform::Platform;
use wfs_simulator::Schedule;
use wfs_workflow::analysis::levels;
use wfs_workflow::{TaskId, Workflow};

/// Guard against division by ~0 in the trade-off factors.
const DENOM_EPS: f64 = 1e-12;

/// Run BDT with the All-in trickling strategy.
pub fn bdt(wf: &Workflow, platform: &Platform, b_ini: f64) -> Schedule {
    let mut plan = PlanState::new(wf, platform);
    let mut remaining = b_ini;

    for level in levels(wf) {
        // Sort the level by increasing EST: estimated from the earliest
        // instant a task's inputs can be at the datacenter under the
        // current partial plan (predecessors of a level-l task all sit in
        // levels < l, hence are scheduled).
        let mut tasks = level;
        let est = |plan: &PlanState<'_>, t: TaskId| {
            wf.in_edges(t)
                .iter()
                .map(|&e| plan.finish_time(wf.edge(e).from))
                .fold(0.0f64, f64::max)
        };
        tasks.sort_by(|&a, &b| {
            est(&plan, a).total_cmp(&est(&plan, b)).then(a.0.cmp(&b.0))
        });

        for t in tasks {
            // All-in: this task may tentatively use everything left.
            let sub_budget = remaining.max(0.0);
            let chosen = plan.with_candidate_evals(t, |evals| pick_by_tctf(evals, sub_budget));
            remaining -= chosen.cost;
            plan.commit(t, chosen.candidate);
        }
    }
    plan.into_schedule()
}

/// Select the candidate maximizing `TCTF = Time_factor / Cost_factor`
/// among the affordable ones; fall back to the cheapest if none fits.
fn pick_by_tctf(evals: &[HostEval], sub_budget: f64) -> HostEval {
    let ct_min = evals.iter().map(|e| e.cost).fold(f64::INFINITY, f64::min);
    let ect_min = evals.iter().map(|e| e.eft).fold(f64::INFINITY, f64::min);
    let ect_max = evals.iter().map(|e| e.eft).fold(f64::NEG_INFINITY, f64::max);

    let tctf = |e: &HostEval| {
        // Time factor in [0,1]: 1 for the earliest completion.
        let time = if (ect_max - ect_min).abs() < DENOM_EPS {
            1.0
        } else {
            (ect_max - e.eft) / (ect_max - ect_min)
        };
        // Cost factor in [0,1]: 1 for the cheapest candidate, →0 as the
        // cost approaches the sub-budget. Eager: expensive-but-fast hosts
        // get a large ratio.
        let cost = if (sub_budget - ct_min).abs() < DENOM_EPS {
            1.0
        } else {
            (sub_budget - e.cost) / (sub_budget - ct_min)
        };
        time / cost.max(DENOM_EPS)
    };

    let affordable = evals
        .iter()
        .filter(|e| e.cost <= sub_budget)
        .max_by(|a, b| {
            // Ties: prefer the earlier EFT, then used VMs, then lower ids.
            tctf(a)
                .total_cmp(&tctf(b))
                .then(b.eft.total_cmp(&a.eft))
                .then(candidate_key(b).cmp(&candidate_key(a)))
        });
    match affordable {
        Some(e) => *e,
        None => {
            #[allow(clippy::expect_used)] // a platform always offers new-VM candidates
            let cheapest = evals
                .iter()
                .min_by(|a, b| a.cost.total_cmp(&b.cost).then(a.eft.total_cmp(&b.eft)))
                .expect("candidate set is never empty");
            *cheapest
        }
    }
}

fn candidate_key(e: &HostEval) -> (u8, u32) {
    match e.candidate {
        Candidate::Used(vm) => (0, vm.0),
        Candidate::New(cat) => (1, cat.0),
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use wfs_simulator::{simulate, SimConfig};
    use wfs_workflow::gen::{cybershake, montage, GenConfig};

    fn paper() -> Platform {
        Platform::paper_default()
    }

    #[test]
    fn schedules_everything_valid() {
        for n in [30, 60, 90] {
            let wf = montage(GenConfig::new(n, 1));
            let p = paper();
            let s = bdt(&wf, &p, 5.0);
            s.validate(&wf).unwrap();
        }
    }

    #[test]
    fn deterministic() {
        let wf = cybershake(GenConfig::new(60, 2));
        let p = paper();
        assert_eq!(bdt(&wf, &p, 3.0), bdt(&wf, &p, 3.0));
    }

    #[test]
    fn generous_budget_gives_fast_eager_schedule() {
        // With plenty of budget, BDT's eagerness picks fast hosts: its
        // planned makespan is competitive with HEFTBUDG's.
        let wf = montage(GenConfig::new(60, 1));
        let p = paper();
        let budget = 50.0;
        let cfg = SimConfig::planning();
        let b = simulate(&wf, &p, &bdt(&wf, &p, budget), &cfg).unwrap();
        let (hs, _) = crate::heft::heft_budg(&wf, &p, budget);
        let h = simulate(&wf, &p, &hs, &cfg).unwrap();
        assert!(b.makespan <= h.makespan * 1.5, "bdt {} vs heftbudg {}", b.makespan, h.makespan);
    }

    #[test]
    fn small_budget_often_overspends() {
        // The paper's headline observation (Fig. 3): BDT frequently fails
        // to enforce small budgets where HEFTBUDG succeeds.
        let wf = cybershake(GenConfig::new(60, 1));
        let p = paper();
        let cfg = SimConfig::planning();
        // Pick a budget HEFTBUDG can hold.
        let budget = {
            let (hs, _) = crate::heft::heft_budg(&wf, &p, 2.0);
            simulate(&wf, &p, &hs, &cfg).unwrap().total_cost.max(1.0) * 1.05
        };
        let b = simulate(&wf, &p, &bdt(&wf, &p, budget), &cfg).unwrap();
        let (hs, _) = crate::heft::heft_budg(&wf, &p, budget);
        let h = simulate(&wf, &p, &hs, &cfg).unwrap();
        assert!(h.total_cost <= budget * 1.05, "heftbudg holds the budget");
        // BDT spends at least as much; typically more.
        assert!(b.total_cost >= h.total_cost * 0.9, "bdt {} vs heft {}", b.total_cost, h.total_cost);
    }
}
