//! Budget reservation and division (paper Algorithm 1, `getBUDGCalC`).
//!
//! Before scheduling, the budget-aware algorithms:
//! 1. reserve a conservative estimate of the datacenter cost (assuming a
//!    sequential execution on a single cheap VM, boundary transfers only);
//! 2. reserve one VM init cost per task (`n × c_ini,1` — ready to pay the
//!    price of full parallelism);
//! 3. split the remaining `B_calc` across tasks proportionally to their
//!    estimated duration (Eq. 5–6).
//!
//! The *pot* collects whatever each assignment left unspent of its share and
//! makes it available to subsequent tasks (§IV-A).

use wfs_platform::Platform;
use wfs_workflow::{TaskId, Workflow};

/// Result of the budget reservation step.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetSplit {
    /// The initial budget `B_ini`.
    pub initial: f64,
    /// Amount reserved for the datacenter (usage span + boundary I/O).
    pub reserved_datacenter: f64,
    /// Amount reserved for VM init costs (`n × c_ini,1`).
    pub reserved_init: f64,
    /// Budget left for task execution, `B_calc` (clamped at 0 when the
    /// reservations already exceed `B_ini`).
    pub b_calc: f64,
    /// Per-task share `B_T` (Eq. 5), indexed by task id.
    pub shares: Vec<f64>,
}

impl BudgetSplit {
    /// The share allotted to `t`.
    #[inline]
    pub fn share(&self, t: TaskId) -> f64 {
        self.shares[t.index()]
    }
}

/// Estimated duration `t_calc,T` of one task: conservative weight at the
/// mean platform speed, plus its predecessor data over the bandwidth
/// (Eq. 5–6).
pub fn t_calc_task(wf: &Workflow, platform: &Platform, t: TaskId) -> f64 {
    let mean_speed = platform.mean_speed();
    let bw = platform.datacenter.bandwidth;
    wf.task(t).weight.conservative() / mean_speed + wf.pred_data_size(t) / bw
}

/// Estimated duration `t_calc,wf` of the whole workflow: total conservative
/// work at mean speed plus total intra-workflow data over the bandwidth.
pub fn t_calc_workflow(wf: &Workflow, platform: &Platform) -> f64 {
    wf.total_conservative_work() / platform.mean_speed()
        + wf.total_edge_data() / platform.datacenter.bandwidth
}

/// Conservative estimate of the datacenter reservation: a sequential
/// execution on a single VM of the cheapest category, paying boundary
/// transfers (`c_iof`) and the usage rate (`c_h,DC`) over that duration.
pub fn datacenter_reservation(wf: &Workflow, platform: &Platform) -> f64 {
    let cheapest = platform.category(platform.cheapest());
    let external = wf.external_input_data() + wf.external_output_data();
    let duration = wf.total_conservative_work() / cheapest.speed
        + external / platform.datacenter.bandwidth;
    platform.datacenter.cost(duration, external)
}

/// Run Algorithm 1: reserve, then share `B_calc` proportionally.
pub fn divide_budget(wf: &Workflow, platform: &Platform, b_ini: f64) -> BudgetSplit {
    assert!(b_ini >= 0.0 && b_ini.is_finite(), "budget must be non-negative and finite");
    let reserved_dc = datacenter_reservation(wf, platform);
    let reserved_init =
        wf.task_count() as f64 * platform.category(platform.cheapest()).init_cost;
    let b_calc = (b_ini - reserved_dc - reserved_init).max(0.0);
    let total = t_calc_workflow(wf, platform);
    let shares = wf
        .task_ids()
        .map(|t| {
            if total > 0.0 {
                t_calc_task(wf, platform, t) / total * b_calc
            } else {
                b_calc / wf.task_count() as f64
            }
        })
        .collect();
    BudgetSplit { initial: b_ini, reserved_datacenter: reserved_dc, reserved_init, b_calc, shares }
}

/// The leftover-budget pot: assignments cheaper than their share feed it,
/// later tasks may draw on it (§IV-A). The `enabled` switch exists for the
/// ablation benchmark (DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pot {
    amount: f64,
    enabled: bool,
}

impl Pot {
    /// An empty, active pot.
    pub fn new() -> Self {
        Self { amount: 0.0, enabled: true }
    }

    /// A pot that never accumulates (ablation: each task strictly limited
    /// to its own share).
    pub fn disabled() -> Self {
        Self { amount: 0.0, enabled: false }
    }

    /// Budget currently available on top of a task's own share.
    #[inline]
    pub fn available(&self) -> f64 {
        self.amount
    }

    /// Record an assignment: a task with share `share` was placed at cost
    /// `cost`. Leftover flows in; overdraw (cost above the share, covered
    /// by the pot) flows out. The pot never goes negative.
    pub fn settle(&mut self, share: f64, cost: f64) {
        if self.enabled {
            self.amount = (self.amount + share - cost).max(0.0);
        }
    }
}

impl Default for Pot {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use wfs_workflow::gen::{chain, montage, GenConfig};

    #[test]
    fn shares_sum_to_b_calc() {
        let wf = montage(GenConfig::new(30, 1));
        let p = Platform::paper_default();
        let split = divide_budget(&wf, &p, 50.0);
        let sum: f64 = split.shares.iter().sum();
        assert!((sum - split.b_calc).abs() < 1e-9 * split.b_calc.max(1.0));
        assert!(split.b_calc > 0.0);
        assert!(
            (split.initial - split.reserved_datacenter - split.reserved_init - split.b_calc).abs()
                < 1e-9
        );
    }

    #[test]
    fn shares_proportional_to_estimated_duration() {
        let wf = montage(GenConfig::new(30, 1));
        let p = Platform::paper_default();
        let split = divide_budget(&wf, &p, 50.0);
        let t0 = TaskId(0);
        let t1 = TaskId(1);
        let r_share = split.share(t0) / split.share(t1);
        let r_tcalc = t_calc_task(&wf, &p, t0) / t_calc_task(&wf, &p, t1);
        assert!((r_share - r_tcalc).abs() < 1e-9);
    }

    #[test]
    fn init_reservation_is_n_times_cheapest() {
        let wf = chain(10, 100.0, 0.0);
        let p = Platform::paper_default();
        let split = divide_budget(&wf, &p, 100.0);
        assert!((split.reserved_init - 10.0 * 0.0001).abs() < 1e-12);
    }

    #[test]
    fn tiny_budget_clamps_b_calc_to_zero() {
        let wf = montage(GenConfig::new(90, 1));
        let p = Platform::paper_default();
        let split = divide_budget(&wf, &p, 0.0);
        assert_eq!(split.b_calc, 0.0);
        assert!(split.shares.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn datacenter_reservation_grows_with_external_data() {
        let p = Platform::paper_default();
        let small = datacenter_reservation(&chain(5, 100.0, 1e6), &p);
        let large = datacenter_reservation(&chain(5, 100.0, 1e9), &p);
        assert!(large > small);
    }

    #[test]
    fn pot_accumulates_leftovers() {
        let mut pot = Pot::new();
        pot.settle(1.0, 0.4); // leftover 0.6
        assert!((pot.available() - 0.6).abs() < 1e-12);
        pot.settle(0.5, 0.9); // overdraw 0.4 covered by the pot
        assert!((pot.available() - 0.2).abs() < 1e-12);
        pot.settle(0.1, 5.0); // cannot go negative
        assert_eq!(pot.available(), 0.0);
    }

    #[test]
    fn disabled_pot_stays_empty() {
        let mut pot = Pot::disabled();
        pot.settle(10.0, 1.0);
        assert_eq!(pot.available(), 0.0);
    }

    #[test]
    fn bigger_budget_bigger_shares() {
        let wf = montage(GenConfig::new(30, 1));
        let p = Platform::paper_default();
        let a = divide_budget(&wf, &p, 10.0);
        let b = divide_budget(&wf, &p, 100.0);
        for t in wf.task_ids() {
            assert!(b.share(t) >= a.share(t));
        }
    }
}
