//! Workflow *ensembles* under one global budget — the setting of the
//! paper's closest related work ([19], Malawski et al.): several workflows
//! with priorities submitted together, the goal being to maximize the
//! total priority of the workflows that complete within the budget.
//!
//! The paper notes it "shares the approach of partitioning the initial
//! budget into chunks to be allotted to individual candidates (workflows in
//! [19], tasks in this paper)". This module composes the two levels:
//! workflows are admitted greedily by priority density, each admitted
//! workflow gets a budget chunk sized by its conservative cost estimate,
//! and is then scheduled internally with HEFTBUDG (Alg. 1–4).

use crate::heft::heft_budg;
use wfs_platform::Platform;
use wfs_simulator::{simulate, Schedule, SimConfig};
use wfs_workflow::Workflow;

/// One workflow of the ensemble, with its priority (higher = more
/// important, [19] maximizes cumulated priority of completed workflows).
#[derive(Debug, Clone)]
pub struct EnsembleMember {
    /// The workflow.
    pub workflow: Workflow,
    /// Its priority (> 0).
    pub priority: f64,
}

/// Result for one admitted workflow.
#[derive(Debug, Clone)]
pub struct AdmittedWorkflow {
    /// Index into the input ensemble.
    pub index: usize,
    /// Budget chunk allotted to it.
    pub budget: f64,
    /// The HEFTBUDG schedule built within that chunk.
    pub schedule: Schedule,
    /// Planned (conservative) cost of the schedule.
    pub planned_cost: f64,
    /// Planned makespan.
    pub planned_makespan: f64,
}

/// Outcome of ensemble admission + scheduling.
#[derive(Debug, Clone)]
pub struct EnsembleResult {
    /// Workflows admitted and scheduled, in admission order.
    pub admitted: Vec<AdmittedWorkflow>,
    /// Indices of rejected workflows.
    pub rejected: Vec<usize>,
    /// Total planned cost across admitted workflows.
    pub total_planned_cost: f64,
    /// Total priority value of admitted workflows.
    pub admitted_priority: f64,
}

/// Schedule an ensemble under a global budget.
///
/// Admission is greedy by *priority density* (priority per estimated
/// dollar): each candidate's cost is estimated as its conservative
/// min-cost execution with a 1.3× parallelism allowance; admitted
/// workflows receive that estimate as their chunk, and leftovers from
/// cheaper-than-estimated schedules trickle to the next candidate —
/// the same pot idea as Alg. 2, one level up.
pub fn schedule_ensemble(
    members: &[EnsembleMember],
    platform: &Platform,
    global_budget: f64,
) -> EnsembleResult {
    assert!(global_budget >= 0.0 && global_budget.is_finite());
    let cfg = SimConfig::planning();
    // Estimate each member's cost chunk.
    let mut order: Vec<(usize, f64)> = members
        .iter()
        .enumerate()
        .map(|(i, m)| {
            assert!(m.priority > 0.0, "priorities must be positive");
            #[allow(clippy::expect_used)] // min_cost_schedule is valid by construction
            let floor = simulate(
                &m.workflow,
                platform,
                &crate::min_cost_schedule(&m.workflow, platform),
                &cfg,
            )
            .expect("min-cost schedule is valid")
            .total_cost;
            (i, floor * 1.3)
        })
        .collect();
    // Greedy by priority density, ties by smaller index.
    order.sort_by(|a, b| {
        let da = members[a.0].priority / a.1.max(1e-12);
        let db = members[b.0].priority / b.1.max(1e-12);
        db.total_cmp(&da).then(a.0.cmp(&b.0))
    });

    let mut remaining = global_budget;
    let mut admitted = Vec::new();
    let mut rejected = Vec::new();
    let mut total_cost = 0.0;
    let mut total_priority = 0.0;
    for (idx, chunk) in order {
        if chunk > remaining {
            rejected.push(idx);
            continue;
        }
        let wf = &members[idx].workflow;
        let (schedule, _) = heft_budg(wf, platform, chunk);
        #[allow(clippy::expect_used)] // HEFTBUDG emits a complete, validated schedule
        let planned = simulate(wf, platform, &schedule, &cfg).expect("HEFTBUDG is valid");
        if planned.total_cost > remaining {
            // Conservative estimate was too low for this one: reject
            // rather than overdraw the global budget.
            rejected.push(idx);
            continue;
        }
        remaining -= planned.total_cost;
        total_cost += planned.total_cost;
        total_priority += members[idx].priority;
        admitted.push(AdmittedWorkflow {
            index: idx,
            budget: chunk,
            schedule,
            planned_cost: planned.total_cost,
            planned_makespan: planned.makespan,
        });
    }
    rejected.sort_unstable();
    EnsembleResult {
        admitted,
        rejected,
        total_planned_cost: total_cost,
        admitted_priority: total_priority,
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use wfs_workflow::gen::{cybershake, ligo, montage, GenConfig};

    fn paper() -> Platform {
        Platform::paper_default()
    }

    fn ensemble() -> Vec<EnsembleMember> {
        vec![
            EnsembleMember { workflow: montage(GenConfig::new(30, 1)), priority: 5.0 },
            EnsembleMember { workflow: ligo(GenConfig::new(30, 2)), priority: 3.0 },
            EnsembleMember { workflow: cybershake(GenConfig::new(30, 3)), priority: 8.0 },
        ]
    }

    #[test]
    fn generous_budget_admits_everything() {
        let p = paper();
        let r = schedule_ensemble(&ensemble(), &p, 100.0);
        assert_eq!(r.admitted.len(), 3);
        assert!(r.rejected.is_empty());
        assert!((r.admitted_priority - 16.0).abs() < 1e-12);
        assert!(r.total_planned_cost <= 100.0);
        for a in &r.admitted {
            assert!(a.planned_cost <= a.budget * 1.01);
            assert!(a.planned_makespan > 0.0);
        }
    }

    #[test]
    fn zero_budget_rejects_everything() {
        let p = paper();
        let r = schedule_ensemble(&ensemble(), &p, 0.0);
        assert!(r.admitted.is_empty());
        assert_eq!(r.rejected, vec![0, 1, 2]);
        assert_eq!(r.total_planned_cost, 0.0);
    }

    #[test]
    fn tight_budget_prefers_high_density_workflows() {
        let p = paper();
        let members = ensemble();
        // Find a budget that admits some but not all.
        let full = schedule_ensemble(&members, &p, 100.0).total_planned_cost;
        let r = schedule_ensemble(&members, &p, full * 0.5);
        assert!(!r.admitted.is_empty(), "some workflow fits half the budget");
        assert!(!r.rejected.is_empty(), "not everything fits half the budget");
        // Global budget never overdrawn.
        assert!(r.total_planned_cost <= full * 0.5 + 1e-9);
    }

    #[test]
    fn admitted_priority_monotone_in_budget() {
        let p = paper();
        let members = ensemble();
        let mut prev = -1.0;
        for budget in [0.05, 0.2, 0.5, 2.0, 20.0] {
            let r = schedule_ensemble(&members, &p, budget);
            assert!(
                r.admitted_priority >= prev - 1e-12,
                "priority dropped at budget {budget}"
            );
            prev = r.admitted_priority;
        }
    }

    #[test]
    fn deterministic() {
        let p = paper();
        let a = schedule_ensemble(&ensemble(), &p, 1.0);
        let b = schedule_ensemble(&ensemble(), &p, 1.0);
        assert_eq!(a.admitted.len(), b.admitted.len());
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.total_planned_cost, b.total_planned_cost);
    }
}
