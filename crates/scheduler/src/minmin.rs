//! MIN-MIN and its budget-aware extension MIN-MINBUDG (paper Algorithm 3).
//!
//! MIN-MIN repeatedly looks at all *ready* tasks (predecessors scheduled),
//! computes each task's best host, and commits the (task, host) pair with
//! the overall smallest EFT. MIN-MINBUDG runs the same loop but restricts
//! each task's host choice to those respecting its budget share plus the
//! accumulated pot.

use crate::best_host::BestHostCache;
use crate::budget::{divide_budget, Pot};
use crate::plan::{Candidate, PlanState};
use wfs_observe::{Event as Obs, EventSink, NoopSink};
use wfs_platform::Platform;
use wfs_simulator::{Schedule, VmId};
use wfs_workflow::{OrdF64, TaskId, Workflow};

/// Run MIN-MIN (unbounded budget) — the baseline of §V-B.
pub fn min_min(wf: &Workflow, platform: &Platform) -> Schedule {
    min_min_inner(wf, platform, None, Pot::new(), &mut NoopSink)
}

/// [`min_min`] with an event sink (no budget events: the baseline has no
/// shares, so limits are infinite and the pot stays empty).
pub fn min_min_observed<S: EventSink>(
    wf: &Workflow,
    platform: &Platform,
    sink: &mut S,
) -> Schedule {
    min_min_inner(wf, platform, None, Pot::new(), sink)
}

/// Run MIN-MINBUDG with initial budget `b_ini` (Algorithm 3).
pub fn min_min_budg(wf: &Workflow, platform: &Platform, b_ini: f64) -> Schedule {
    min_min_budg_with_pot(wf, platform, b_ini, Pot::new())
}

/// [`min_min_budg`] with an event sink: the budget division, each round's
/// winning placement (with pot before/after) and the selection-cache
/// hit/miss counters are reported to `sink`.
pub fn min_min_budg_observed<S: EventSink>(
    wf: &Workflow,
    platform: &Platform,
    b_ini: f64,
    sink: &mut S,
) -> Schedule {
    min_min_inner(wf, platform, Some(b_ini), Pot::new(), sink)
}

/// MIN-MINBUDG with an explicit pot configuration (ablation hook).
pub fn min_min_budg_with_pot(
    wf: &Workflow,
    platform: &Platform,
    b_ini: f64,
    pot: Pot,
) -> Schedule {
    min_min_inner(wf, platform, Some(b_ini), pot, &mut NoopSink)
}

fn min_min_inner<S: EventSink>(
    wf: &Workflow,
    platform: &Platform,
    b_ini: Option<f64>,
    mut pot: Pot,
    sink: &mut S,
) -> Schedule {
    let split = b_ini.map(|b| divide_budget(wf, platform, b));
    if S::ENABLED {
        if let Some(s) = &split {
            sink.record(&Obs::BudgetReserved {
                initial: s.initial,
                reserved_datacenter: s.reserved_datacenter,
                reserved_init: s.reserved_init,
                b_calc: s.b_calc,
            });
        }
    }
    let mut plan = PlanState::new(wf, platform);

    // Ready set maintained with remaining-predecessor counts.
    let mut missing: Vec<usize> = wf.task_ids().map(|t| wf.in_edges(t).len()).collect();
    let mut ready: Vec<TaskId> = wf.task_ids().filter(|&t| missing[t.index()] == 0).collect();

    // Incremental selection: each round commits one task to one VM, which
    // leaves every other ready task's best host unchanged unless the cache
    // can prove otherwise (see `BestHostCache`).
    let mut cache = BestHostCache::new(wf.task_count());
    let mut last_commit: Option<VmId> = None;
    let mut round: u32 = 0;

    while !ready.is_empty() {
        // MIN-MIN selection: the ready task whose best host yields the
        // minimal EFT over all ready tasks (ties: cheaper, then lower id).
        let mut best: Option<(usize, crate::plan::HostEval)> = None;
        for (i, &t) in ready.iter().enumerate() {
            let limit = match &split {
                Some(s) => s.share(t) + pot.available(),
                None => f64::INFINITY,
            };
            let eval = cache.best(&plan, t, limit, last_commit);
            let better = best.as_ref().is_none_or(|(bi, b)| {
                (OrdF64(eval.eft), OrdF64(eval.cost), t.0)
                    < (OrdF64(b.eft), OrdF64(b.cost), ready[*bi].0)
            });
            if better {
                best = Some((i, eval));
            }
        }
        #[allow(clippy::expect_used)] // loop guard: `ready` is non-empty
        let (idx, eval) = best.expect("ready set is non-empty");
        let t = ready.swap_remove(idx);
        let limit = match &split {
            Some(s) => s.share(t) + pot.available(),
            None => f64::INFINITY,
        };
        if S::ENABLED {
            sink.record(&Obs::TaskRanked { pos: round, task: t.0 });
            if let Some(s) = &split {
                sink.record(&Obs::TaskShare { task: t.0, share: s.share(t) });
            }
        }
        let pot_before = pot.available();
        let vm = plan.commit(t, eval.candidate);
        last_commit = Some(vm);
        cache.forget(t);
        if let Some(s) = &split {
            pot.settle(s.share(t), eval.cost);
        }
        if S::ENABLED {
            sink.record(&Obs::TaskPlaced {
                task: t.0,
                vm: vm.0,
                new_vm: matches!(eval.candidate, Candidate::New(_)),
                eft: eval.eft,
                cost: eval.cost,
                limit,
                pot_before,
                pot_after: pot.available(),
            });
        }
        round += 1;
        for succ in wf.successors(t) {
            missing[succ.index()] -= 1;
            if missing[succ.index()] == 0 {
                ready.push(succ);
            }
        }
    }
    if S::ENABLED {
        let (hits, misses) = cache.hit_miss();
        sink.record(&Obs::Counter { name: "best_host_cache_hits", delta: hits });
        sink.record(&Obs::Counter { name: "best_host_cache_misses", delta: misses });
        let (sweeps, cand_evals) = plan.sweep_stats();
        sink.record(&Obs::Counter { name: "plan_sweeps", delta: sweeps });
        sink.record(&Obs::Counter { name: "plan_candidate_evals", delta: cand_evals });
    }
    debug_assert!(plan.is_complete(), "all tasks scheduled (DAG is acyclic)");
    plan.into_schedule()
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use wfs_simulator::{simulate, SimConfig};
    use wfs_workflow::gen::{bag_of_tasks, montage, GenConfig};

    fn paper() -> Platform {
        Platform::paper_default()
    }

    #[test]
    fn baseline_schedules_everything() {
        let wf = montage(GenConfig::new(30, 1));
        let p = paper();
        let s = min_min(&wf, &p);
        s.validate(&wf).unwrap();
        assert!(s.used_vm_count() >= 1);
    }

    #[test]
    fn baseline_parallelizes_a_bag() {
        let wf = bag_of_tasks(8, 2000.0, 0.0);
        let p = paper();
        let s = min_min(&wf, &p);
        // EFT-greedy with free budget: every independent task gets its own
        // (fast) VM since sharing delays the EFT.
        assert!(s.used_vm_count() >= 7, "used {}", s.used_vm_count());
    }

    #[test]
    fn budget_constrains_vm_enrollment() {
        let wf = montage(GenConfig::new(60, 1));
        let p = paper();
        let rich = min_min_budg(&wf, &p, 1000.0);
        let poor = min_min_budg(&wf, &p, 0.2);
        rich.validate(&wf).unwrap();
        poor.validate(&wf).unwrap();
        assert!(poor.used_vm_count() <= rich.used_vm_count());
    }

    #[test]
    fn infinite_budget_matches_baseline_makespan() {
        // Paper §V-B: "when given an infinite initial budget, MIN-MIN
        // gives the same schedule as MIN-MINBUDG".
        let wf = montage(GenConfig::new(30, 2));
        let p = paper();
        let base = min_min(&wf, &p);
        let budg = min_min_budg(&wf, &p, 1e9);
        let cfg = SimConfig::planning();
        let rb = simulate(&wf, &p, &base, &cfg).unwrap();
        let rr = simulate(&wf, &p, &budg, &cfg).unwrap();
        assert!((rb.makespan - rr.makespan).abs() < 1e-6);
    }

    #[test]
    fn respects_budget_on_average() {
        let wf = montage(GenConfig::new(30, 1));
        let p = paper();
        let budget = 1.0;
        let s = min_min_budg(&wf, &p, budget);
        // Conservative planning: the planned execution fits the budget.
        let r = simulate(&wf, &p, &s, &SimConfig::planning()).unwrap();
        assert!(
            r.total_cost <= budget * 1.05,
            "planned cost {} for budget {budget}",
            r.total_cost
        );
    }

    #[test]
    fn deterministic() {
        let wf = montage(GenConfig::new(60, 3));
        let p = paper();
        assert_eq!(min_min_budg(&wf, &p, 5.0), min_min_budg(&wf, &p, 5.0));
    }
}
