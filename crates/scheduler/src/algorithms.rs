//! Uniform entry point over every scheduling algorithm in the paper —
//! used by the experiment harness, benches and examples.

use crate::bdt::bdt;
use crate::cg::{cg, cg_plus};
use crate::heft::{heft, heft_budg, heft_budg_observed, heft_observed};
use crate::minmin::{min_min, min_min_budg, min_min_budg_observed, min_min_observed};
use crate::refine::{heft_budg_plus, heft_budg_plus_observed, RefineOrder};
use wfs_observe::{Event as Obs, EventSink, NoopSink};
use wfs_platform::Platform;
use wfs_simulator::Schedule;
use wfs_workflow::Workflow;

/// Every algorithm evaluated in the paper (§V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Baseline MIN-MIN (budget-oblivious).
    MinMin,
    /// Baseline HEFT (budget-oblivious).
    Heft,
    /// MIN-MINBUDG (Algorithm 3).
    MinMinBudg,
    /// HEFTBUDG (Algorithm 4).
    HeftBudg,
    /// HEFTBUDG+ (Algorithm 5, forward order).
    HeftBudgPlus,
    /// HEFTBUDG+INV (Algorithm 5, reverse order).
    HeftBudgPlusInv,
    /// BDT, All-in trickling (competitor [3]).
    Bdt,
    /// CG (competitor [25]).
    Cg,
    /// CG+ (competitor [25], refined).
    CgPlus,
    /// MAX-MIN baseline (extension: classic list heuristic).
    MaxMin,
    /// Budget-aware MAX-MIN (extension).
    MaxMinBudg,
    /// SUFFERAGE baseline (extension: classic list heuristic).
    Sufferage,
    /// Budget-aware SUFFERAGE (extension).
    SufferageBudg,
}

impl Algorithm {
    /// All algorithms: first the paper's nine in presentation order, then
    /// the extension heuristics.
    pub const ALL: [Algorithm; 13] = [
        Algorithm::MinMin,
        Algorithm::Heft,
        Algorithm::MinMinBudg,
        Algorithm::HeftBudg,
        Algorithm::HeftBudgPlus,
        Algorithm::HeftBudgPlusInv,
        Algorithm::Bdt,
        Algorithm::Cg,
        Algorithm::CgPlus,
        Algorithm::MaxMin,
        Algorithm::MaxMinBudg,
        Algorithm::Sufferage,
        Algorithm::SufferageBudg,
    ];

    /// The nine algorithms evaluated in the paper (§V).
    pub const PAPER: [Algorithm; 9] = [
        Algorithm::MinMin,
        Algorithm::Heft,
        Algorithm::MinMinBudg,
        Algorithm::HeftBudg,
        Algorithm::HeftBudgPlus,
        Algorithm::HeftBudgPlusInv,
        Algorithm::Bdt,
        Algorithm::Cg,
        Algorithm::CgPlus,
    ];

    /// The paper's name for the algorithm.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::MinMin => "MIN-MIN",
            Algorithm::Heft => "HEFT",
            Algorithm::MinMinBudg => "MIN-MINBUDG",
            Algorithm::HeftBudg => "HEFTBUDG",
            Algorithm::HeftBudgPlus => "HEFTBUDG+",
            Algorithm::HeftBudgPlusInv => "HEFTBUDG+INV",
            Algorithm::Bdt => "BDT",
            Algorithm::Cg => "CG",
            Algorithm::CgPlus => "CG+",
            Algorithm::MaxMin => "MAX-MIN",
            Algorithm::MaxMinBudg => "MAX-MINBUDG",
            Algorithm::Sufferage => "SUFFERAGE",
            Algorithm::SufferageBudg => "SUFFERAGEBUDG",
        }
    }

    /// True for the budget-aware algorithms (the baselines ignore `budget`).
    pub fn is_budget_aware(self) -> bool {
        !matches!(
            self,
            Algorithm::MinMin | Algorithm::Heft | Algorithm::MaxMin | Algorithm::Sufferage
        )
    }

    /// True for the refinement variants with an order-of-magnitude higher
    /// scheduling cost (§IV-B, Table III).
    pub fn is_refined(self) -> bool {
        matches!(
            self,
            Algorithm::HeftBudgPlus | Algorithm::HeftBudgPlusInv | Algorithm::CgPlus
        )
    }

    /// Compute a schedule for `wf` on `platform` under `budget` (ignored by
    /// the baselines).
    ///
    /// Debug builds additionally execute the plan under the planning model
    /// and run [`wfs_simulator::plan_lint`] over the result, panicking on
    /// any violated platform-model invariant (see `DESIGN.md` §8). Release
    /// builds skip the check entirely.
    pub fn run(self, wf: &Workflow, platform: &Platform, budget: f64) -> Schedule {
        self.run_observed(wf, platform, budget, &mut NoopSink)
    }

    /// [`Self::run`] with an event sink. The core algorithms (MIN-MIN,
    /// HEFT, MIN-MINBUDG, HEFTBUDG, HEFTBUDG+, HEFTBUDG+INV) emit their
    /// full decision stream; the remaining competitors fall back to
    /// untraced scheduling after the `PlanStarted` header. Either way the
    /// schedule is identical to [`Self::run`]'s.
    pub fn run_observed<S: EventSink>(
        self,
        wf: &Workflow,
        platform: &Platform,
        budget: f64,
        sink: &mut S,
    ) -> Schedule {
        if S::ENABLED {
            sink.record(&Obs::PlanStarted {
                algorithm: self.name(),
                tasks: u32::try_from(wf.task_count()).unwrap_or(u32::MAX),
                budget,
            });
        }
        let schedule = match self {
            Algorithm::MinMin => min_min_observed(wf, platform, sink),
            Algorithm::Heft => heft_observed(wf, platform, sink),
            Algorithm::MinMinBudg => min_min_budg_observed(wf, platform, budget, sink),
            Algorithm::HeftBudg => heft_budg_observed(wf, platform, budget, sink).0,
            Algorithm::HeftBudgPlus => {
                heft_budg_plus_observed(wf, platform, budget, RefineOrder::Forward, sink)
            }
            Algorithm::HeftBudgPlusInv => {
                heft_budg_plus_observed(wf, platform, budget, RefineOrder::Reverse, sink)
            }
            other => other.run_unchecked(wf, platform, budget),
        };
        #[cfg(debug_assertions)]
        {
            // Budget is deliberately not enforced here: every algorithm has
            // a best-effort fallback branch that may legitimately overspend
            // (the paper evaluates exactly that failure mode, Fig. 3).
            if let Ok(report) =
                wfs_simulator::simulate(wf, platform, &schedule, &wfs_simulator::SimConfig::planning())
            {
                let violations = wfs_simulator::plan_lint(wf, platform, &schedule, &report, None);
                assert!(
                    violations.is_empty(),
                    "{self}: schedule violates platform-model invariants: {violations:?}"
                );
            }
        }
        schedule
    }

    fn run_unchecked(self, wf: &Workflow, platform: &Platform, budget: f64) -> Schedule {
        match self {
            Algorithm::MinMin => min_min(wf, platform),
            Algorithm::Heft => heft(wf, platform),
            Algorithm::MinMinBudg => min_min_budg(wf, platform, budget),
            Algorithm::HeftBudg => heft_budg(wf, platform, budget).0,
            Algorithm::HeftBudgPlus => {
                heft_budg_plus(wf, platform, budget, RefineOrder::Forward)
            }
            Algorithm::HeftBudgPlusInv => {
                heft_budg_plus(wf, platform, budget, RefineOrder::Reverse)
            }
            Algorithm::Bdt => bdt(wf, platform, budget),
            Algorithm::Cg => cg(wf, platform, budget),
            Algorithm::CgPlus => cg_plus(wf, platform, budget),
            Algorithm::MaxMin => crate::max_min(wf, platform),
            Algorithm::MaxMinBudg => crate::max_min_budg(wf, platform, budget),
            Algorithm::Sufferage => crate::sufferage(wf, platform),
            Algorithm::SufferageBudg => crate::sufferage_budg(wf, platform, budget),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm: String = s
            .to_ascii_lowercase()
            .chars()
            .filter(|c| c.is_ascii_alphanumeric() || *c == '+')
            .collect();
        match norm.as_str() {
            "minmin" => Ok(Algorithm::MinMin),
            "heft" => Ok(Algorithm::Heft),
            "minminbudg" => Ok(Algorithm::MinMinBudg),
            "heftbudg" => Ok(Algorithm::HeftBudg),
            "heftbudg+" | "heftbudgplus" => Ok(Algorithm::HeftBudgPlus),
            "heftbudg+inv" | "heftbudgplusinv" => Ok(Algorithm::HeftBudgPlusInv),
            "bdt" => Ok(Algorithm::Bdt),
            "cg" => Ok(Algorithm::Cg),
            "cg+" | "cgplus" => Ok(Algorithm::CgPlus),
            "maxmin" => Ok(Algorithm::MaxMin),
            "maxminbudg" => Ok(Algorithm::MaxMinBudg),
            "sufferage" => Ok(Algorithm::Sufferage),
            "sufferagebudg" => Ok(Algorithm::SufferageBudg),
            other => Err(format!("unknown algorithm `{other}`")),
        }
    }
}

/// The cheapest possible schedule: all tasks, in topological order, on one
/// VM of the cheapest category (the `min_cost` green dot of Fig. 1).
pub fn min_cost_schedule(wf: &Workflow, platform: &Platform) -> Schedule {
    let mut s = Schedule::new(wf.task_count());
    let vm = s.add_vm(platform.cheapest());
    for &t in wf.topological_order() {
        s.assign(t, vm);
    }
    s
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use wfs_simulator::{simulate, SimConfig};
    use wfs_workflow::gen::{montage, GenConfig};

    #[test]
    fn every_algorithm_produces_a_valid_schedule() {
        let wf = montage(GenConfig::new(30, 1));
        let p = Platform::paper_default();
        for alg in Algorithm::ALL {
            let s = alg.run(&wf, &p, 3.0);
            s.validate(&wf).unwrap_or_else(|e| panic!("{alg}: {e}"));
            let r = simulate(&wf, &p, &s, &SimConfig::planning()).unwrap();
            assert!(r.makespan > 0.0, "{alg}");
        }
    }

    #[test]
    fn names_roundtrip_through_fromstr() {
        for alg in Algorithm::ALL {
            let parsed: Algorithm = alg.name().parse().unwrap();
            assert_eq!(parsed, alg);
        }
        assert!("nope".parse::<Algorithm>().is_err());
    }

    #[test]
    fn classification_flags() {
        assert!(!Algorithm::Heft.is_budget_aware());
        assert!(Algorithm::HeftBudg.is_budget_aware());
        assert!(Algorithm::HeftBudgPlus.is_refined());
        assert!(!Algorithm::HeftBudg.is_refined());
        assert!(Algorithm::CgPlus.is_refined());
    }

    #[test]
    fn min_cost_schedule_is_single_cheapest_vm() {
        let wf = montage(GenConfig::new(30, 1));
        let p = Platform::paper_default();
        let s = min_cost_schedule(&wf, &p);
        assert_eq!(s.vm_count(), 1);
        assert_eq!(s.vm_category(wfs_simulator::VmId(0)), p.cheapest());
        s.validate(&wf).unwrap();
        // It is cheaper than any multi-VM schedule the algorithms produce.
        let cfg = SimConfig::planning();
        let min_cost = simulate(&wf, &p, &s, &cfg).unwrap().total_cost;
        let heft_cost =
            simulate(&wf, &p, &Algorithm::Heft.run(&wf, &p, 0.0), &cfg).unwrap().total_cost;
        assert!(min_cost <= heft_cost);
    }
}
