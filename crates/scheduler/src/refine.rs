//! HEFTBUDG+ and HEFTBUDG+INV (paper Algorithm 5): spend the leftover
//! budget by re-mapping tasks onto better hosts.
//!
//! Starting from the HEFTBUDG schedule, each task (in priority order for
//! HEFTBUDG+, reverse order for HEFTBUDG+INV) is tentatively moved to every
//! other used VM and to a fresh VM of each category; each tentative schedule
//! is fully re-evaluated with a deterministic conservative simulation, and
//! the move with the shortest makespan that still respects the budget is
//! kept. This is an order of magnitude more CPU-demanding than HEFTBUDG
//! (§IV-B) — the trade-off the paper quantifies in Table III.

use crate::heft::{heft_budg, heft_budg_observed};
use wfs_observe::{Event as Obs, EventSink, NoopSink};
use wfs_platform::Platform;
use wfs_simulator::{simulate, Schedule, SimConfig};
use wfs_workflow::{TaskId, Workflow};

/// Processing order of the refinement pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefineOrder {
    /// Task order of `ListT` (HEFTBUDG+): highest HEFT priority first.
    Forward,
    /// Reverse order (HEFTBUDG+INV).
    Reverse,
}

/// Makespan must improve by more than this to accept a move (seconds).
const IMPROVE_EPS: f64 = 1e-9;

/// Run HEFTBUDG followed by the re-mapping refinement.
pub fn heft_budg_plus(
    wf: &Workflow,
    platform: &Platform,
    b_ini: f64,
    order: RefineOrder,
) -> Schedule {
    let (sched, list) = heft_budg(wf, platform, b_ini);
    refine_schedule(wf, platform, b_ini, sched, &list, order)
}

/// [`heft_budg_plus`] with an event sink: the HEFTBUDG planning events plus
/// one [`Event::RefineMove`](wfs_observe::Event::RefineMove) per accepted
/// re-mapping and trial/acceptance counters.
pub fn heft_budg_plus_observed<S: EventSink>(
    wf: &Workflow,
    platform: &Platform,
    b_ini: f64,
    order: RefineOrder,
    sink: &mut S,
) -> Schedule {
    let (sched, list) = heft_budg_observed(wf, platform, b_ini, sink);
    refine_schedule_observed(wf, platform, b_ini, sched, &list, order, sink)
}

/// MIN-MINBUDG followed by the same refinement pass — the variant the
/// paper points out "could be designed for MIN-MINBUDG" (§V-B closing
/// remark) but does not evaluate. The HEFT priority list orders the
/// re-examination and keeps per-VM orders executable.
pub fn min_min_budg_plus(
    wf: &Workflow,
    platform: &Platform,
    b_ini: f64,
    order: RefineOrder,
) -> Schedule {
    let sched = crate::min_min_budg(wf, platform, b_ini);
    let list = crate::priority_list(wf, platform);
    // MIN-MIN's per-VM orders follow its own commit sequence, which is a
    // valid linear extension but not necessarily rank-sorted; normalize to
    // rank order first so single-task moves stay executable.
    let mut pos = vec![0usize; wf.task_count()];
    for (i, &t) in list.iter().enumerate() {
        pos[t.index()] = i;
    }
    let mut sched = sched;
    sched.sort_orders_by(|x| pos[x.index()]);
    refine_schedule(wf, platform, b_ini, sched, &list, order)
}

/// The refinement pass alone, applicable to any valid schedule plus its
/// priority list (exposed for tests and ablations).
pub fn refine_schedule(
    wf: &Workflow,
    platform: &Platform,
    b_ini: f64,
    sched: Schedule,
    list: &[TaskId],
    order: RefineOrder,
) -> Schedule {
    refine_schedule_observed(wf, platform, b_ini, sched, list, order, &mut NoopSink)
}

/// [`refine_schedule`] with an event sink.
#[allow(clippy::too_many_arguments)]
pub fn refine_schedule_observed<S: EventSink>(
    wf: &Workflow,
    platform: &Platform,
    b_ini: f64,
    mut sched: Schedule,
    list: &[TaskId],
    order: RefineOrder,
    sink: &mut S,
) -> Schedule {
    let cfg = SimConfig::planning();
    // Rank position of each task: per-VM orders stay sorted by it, so any
    // single-task move keeps the schedule executable (rank order is a
    // linear extension of the DAG).
    let mut pos = vec![0usize; wf.task_count()];
    for (i, &t) in list.iter().enumerate() {
        pos[t.index()] = i;
    }
    #[allow(clippy::expect_used)] // HEFTBUDG emits a complete, validated schedule
    let mut best_time = simulate(wf, platform, &sched, &cfg)
        .expect("HEFTBUDG emits a valid schedule")
        .makespan;

    let tasks: Vec<TaskId> = match order {
        RefineOrder::Forward => list.to_vec(),
        RefineOrder::Reverse => list.iter().rev().copied().collect(),
    };
    let mut trials: u64 = 0;
    let mut accepted: u64 = 0;
    for &t in &tasks {
        #[allow(clippy::expect_used)] // HEFTBUDG assigns every task
        let cur_vm = sched.assignment(t).expect("complete schedule");
        let mut best_alt: Option<(Schedule, f64)> = None;
        // Every other used VM...
        let alt_vms: Vec<_> = sched.vm_ids().filter(|&v| v != cur_vm).collect();
        for vm in alt_vms {
            let mut trial = sched.clone();
            trial.reassign(t, vm);
            trial.sort_orders_by(|x| pos[x.index()]);
            trials += 1;
            consider(wf, platform, b_ini, &cfg, trial, best_time, &mut best_alt);
        }
        // ...and a fresh VM of each category.
        for cat in platform.category_ids() {
            let mut trial = sched.clone();
            let vm = trial.add_vm(cat);
            trial.reassign(t, vm);
            trial.sort_orders_by(|x| pos[x.index()]);
            trials += 1;
            consider(wf, platform, b_ini, &cfg, trial, best_time, &mut best_alt);
        }
        if let Some((s, time)) = best_alt {
            if S::ENABLED {
                sink.record(&Obs::RefineMove {
                    task: t.0,
                    makespan_before: best_time,
                    makespan_after: time,
                });
            }
            accepted += 1;
            sched = s;
            best_time = time;
        }
    }
    if S::ENABLED {
        sink.record(&Obs::Counter { name: "refine_trials", delta: trials });
        sink.record(&Obs::Counter { name: "refine_accepted", delta: accepted });
    }
    sched.prune_empty_vms();
    sched
}

/// Evaluate a tentative schedule; record it if it beats the incumbent and
/// respects the budget (Alg. 5 line 10).
fn consider(
    wf: &Workflow,
    platform: &Platform,
    b_ini: f64,
    cfg: &SimConfig,
    trial: Schedule,
    incumbent_time: f64,
    best_alt: &mut Option<(Schedule, f64)>,
) {
    let Ok(report) = simulate(wf, platform, &trial, cfg) else {
        return; // defensive: skip non-executable tentatives
    };
    if report.total_cost > b_ini {
        return;
    }
    let current_best = best_alt.as_ref().map_or(incumbent_time, |(_, t)| *t);
    if report.makespan < current_best - IMPROVE_EPS {
        *best_alt = Some((trial, report.makespan));
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use wfs_simulator::SimConfig;
    use wfs_workflow::gen::{cybershake, montage, GenConfig};

    fn paper() -> Platform {
        Platform::paper_default()
    }

    fn planned(wf: &Workflow, p: &Platform, s: &Schedule) -> (f64, f64) {
        let r = simulate(wf, p, s, &SimConfig::planning()).unwrap();
        (r.makespan, r.total_cost)
    }

    #[test]
    fn refined_never_worse_and_within_budget() {
        let wf = montage(GenConfig::new(30, 1));
        let p = paper();
        for budget in [1.0, 2.0, 4.0] {
            let (base, _) = heft_budg(&wf, &p, budget);
            let (t0, _) = planned(&wf, &p, &base);
            for order in [RefineOrder::Forward, RefineOrder::Reverse] {
                let refined = heft_budg_plus(&wf, &p, budget, order);
                refined.validate(&wf).unwrap();
                let (t1, c1) = planned(&wf, &p, &refined);
                assert!(t1 <= t0 + 1e-6, "refined {t1} worse than base {t0} ({order:?})");
                assert!(c1 <= budget * 1.0 + 1e-9, "cost {c1} busts budget {budget}");
            }
        }
    }

    #[test]
    fn refinement_improves_tight_budgets() {
        // Paper Fig. 2: refinement shortens the makespan (up to one third
        // for MONTAGE) at intermediate budgets. Improvement is not
        // guaranteed on every single instance, so assert it shows up
        // across a small sweep.
        let p = paper();
        let mut improved = 0;
        let mut cases = 0;
        for seed in 1..=2 {
            let wf = montage(GenConfig::new(30, seed));
            let floor = simulate(
                &wf,
                &p,
                &crate::min_cost_schedule(&wf, &p),
                &SimConfig::planning(),
            )
            .unwrap()
            .total_cost;
            for mult in [1.3, 1.8, 2.5] {
                let budget = floor * mult;
                let (base, _) = heft_budg(&wf, &p, budget);
                let (t0, _) = planned(&wf, &p, &base);
                let refined = heft_budg_plus(&wf, &p, budget, RefineOrder::Forward);
                let (t1, _) = planned(&wf, &p, &refined);
                cases += 1;
                if t1 < t0 - 1e-6 {
                    improved += 1;
                }
            }
        }
        assert!(improved * 2 >= cases, "improved only {improved}/{cases} cases");
    }

    #[test]
    fn refined_uses_no_more_vms_than_base_on_cybershake() {
        // Paper §V-C: "the refined algorithms manage to achieve a smaller
        // makespan using fewer VMs" (interdependent tasks co-located).
        let wf = cybershake(GenConfig::new(30, 1));
        let p = paper();
        let budget = 3.0;
        let (base, _) = heft_budg(&wf, &p, budget);
        let refined = heft_budg_plus(&wf, &p, budget, RefineOrder::Forward);
        assert!(
            refined.used_vm_count() <= base.used_vm_count(),
            "refined {} vs base {}",
            refined.used_vm_count(),
            base.used_vm_count()
        );
    }

    #[test]
    fn min_min_budg_plus_never_worse_and_within_budget() {
        let p = paper();
        for seed in 1..=2 {
            let wf = montage(GenConfig::new(30, seed));
            let floor = simulate(
                &wf,
                &p,
                &crate::min_cost_schedule(&wf, &p),
                &SimConfig::planning(),
            )
            .unwrap()
            .total_cost;
            let budget = floor * 1.5;
            let base = crate::min_min_budg(&wf, &p, budget);
            let (t0, _) = planned(&wf, &p, &base);
            let refined = min_min_budg_plus(&wf, &p, budget, RefineOrder::Forward);
            refined.validate(&wf).unwrap();
            let (t1, c1) = planned(&wf, &p, &refined);
            assert!(t1 <= t0 + 1e-6, "refined {t1} worse than base {t0}");
            assert!(c1 <= budget + 1e-9, "cost {c1} busts budget {budget}");
        }
    }

    #[test]
    fn forward_and_reverse_both_valid_and_deterministic() {
        let wf = montage(GenConfig::new(30, 3));
        let p = paper();
        for order in [RefineOrder::Forward, RefineOrder::Reverse] {
            let a = heft_budg_plus(&wf, &p, 2.0, order);
            let b = heft_budg_plus(&wf, &p, 2.0, order);
            assert_eq!(a, b);
            a.validate(&wf).unwrap();
        }
    }
}
