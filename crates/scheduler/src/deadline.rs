//! Deadline-and-budget planning — the paper's full objective (Eq. 3):
//! find a schedule with `makespan <= D` and `cost <= B`.
//!
//! The paper's algorithms take the budget as the input and minimize the
//! makespan; this module closes the loop for users who start from a
//! deadline instead: [`min_budget_for_deadline`] binary-searches the
//! smallest budget whose HEFTBUDG schedule meets the deadline under
//! conservative planning, and [`plan_bicriteria`] checks a given `(D, B)`
//! pair, reporting which constraint fails.

use crate::heft::heft_budg;
use wfs_platform::Platform;
use wfs_simulator::{simulate, Schedule, SimConfig, SimulationReport};
use wfs_workflow::Workflow;

/// Outcome of a bi-criteria `(deadline, budget)` feasibility check.
#[derive(Debug, Clone, PartialEq)]
pub enum Bicriteria {
    /// A schedule meeting both constraints (conservative planning).
    Feasible {
        /// The schedule.
        schedule: Schedule,
        /// Its planned execution.
        planned: SimulationReport,
    },
    /// The budget is enough for *some* schedule but the deadline is not met.
    DeadlineMiss {
        /// Planned makespan of the best schedule found.
        makespan: f64,
    },
    /// Even the cheapest schedule exceeds the budget.
    BudgetInfeasible {
        /// Cost of the cheapest schedule.
        min_cost: f64,
    },
}

/// Check one `(deadline, budget)` pair with HEFTBUDG + conservative replay.
pub fn plan_bicriteria(
    wf: &Workflow,
    platform: &Platform,
    deadline: f64,
    budget: f64,
) -> Bicriteria {
    let cfg = SimConfig::planning();
    #[allow(clippy::expect_used)] // min_cost_schedule is valid by construction
    let floor = simulate(wf, platform, &crate::min_cost_schedule(wf, platform), &cfg)
        .expect("min-cost schedule is valid")
        .total_cost;
    if budget < floor {
        return Bicriteria::BudgetInfeasible { min_cost: floor };
    }
    let (schedule, _) = heft_budg(wf, platform, budget);
    #[allow(clippy::expect_used)] // HEFTBUDG emits a complete, validated schedule
    let planned = simulate(wf, platform, &schedule, &cfg).expect("HEFTBUDG schedule is valid");
    if planned.makespan <= deadline && planned.total_cost <= budget {
        Bicriteria::Feasible { schedule, planned }
    } else {
        Bicriteria::DeadlineMiss { makespan: planned.makespan }
    }
}

/// Relative precision of the budget binary search.
const SEARCH_REL_EPS: f64 = 0.01;

/// Find (within 1 %) the smallest budget whose HEFTBUDG schedule meets
/// `deadline` under conservative planning. Returns the budget and the
/// schedule, or `None` if even an effectively unlimited budget cannot meet
/// the deadline (the workflow's critical path is too long).
///
/// Monotonicity caveat: HEFTBUDG's makespan is *not* perfectly monotone in
/// the budget (the paper's Fig. 1 shows plateaus and small bumps), so the
/// search brackets the answer and then verifies; the returned budget always
/// meets the deadline, minimality is approximate.
pub fn min_budget_for_deadline(
    wf: &Workflow,
    platform: &Platform,
    deadline: f64,
) -> Option<(f64, Schedule)> {
    let cfg = SimConfig::planning();
    #[allow(clippy::expect_used)] // HEFTBUDG emits a complete, validated schedule
    let makespan_at = |b: f64| -> (f64, Schedule) {
        let (s, _) = heft_budg(wf, platform, b);
        let r = simulate(wf, platform, &s, &cfg).expect("valid");
        (r.makespan, s)
    };
    #[allow(clippy::expect_used)] // min_cost_schedule is valid by construction
    let floor = simulate(wf, platform, &crate::min_cost_schedule(wf, platform), &cfg)
        .expect("valid")
        .total_cost;

    // Bracket: grow the budget geometrically until the deadline is met.
    let mut lo = floor;
    let mut hi = floor;
    let mut hi_sched = None;
    for _ in 0..24 {
        let (mk, s) = makespan_at(hi);
        if mk <= deadline {
            hi_sched = Some(s);
            break;
        }
        lo = hi;
        hi *= 2.0;
    }
    let mut best = hi_sched?;

    // Shrink the bracket.
    while hi - lo > SEARCH_REL_EPS * hi {
        let mid = (lo + hi) / 2.0;
        let (mk, s) = makespan_at(mid);
        if mk <= deadline {
            hi = mid;
            best = s;
        } else {
            lo = mid;
        }
    }
    Some((hi, best))
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use wfs_simulator::{simulate, SimConfig};
    use wfs_workflow::gen::{montage, GenConfig};

    fn paper() -> Platform {
        Platform::paper_default()
    }

    fn baseline_makespan(wf: &Workflow, p: &Platform) -> f64 {
        let (s, _) = heft_budg(wf, p, 1e9);
        simulate(wf, p, &s, &SimConfig::planning()).unwrap().makespan
    }

    #[test]
    fn loose_deadline_needs_little_budget() {
        let wf = montage(GenConfig::new(30, 1));
        let p = paper();
        // Sequential-on-cheap-VM takes ~900 s: a 2000 s deadline is free.
        let (b, s) = min_budget_for_deadline(&wf, &p, 2000.0).unwrap();
        s.validate(&wf).unwrap();
        let r = simulate(&wf, &p, &s, &SimConfig::planning()).unwrap();
        assert!(r.makespan <= 2000.0);
        // Within ~2 % of the absolute floor.
        let floor = simulate(
            &wf,
            &p,
            &crate::min_cost_schedule(&wf, &p),
            &SimConfig::planning(),
        )
        .unwrap()
        .total_cost;
        assert!(b <= floor * 1.1, "budget {b} vs floor {floor}");
    }

    #[test]
    fn tight_deadline_needs_more_budget() {
        let wf = montage(GenConfig::new(30, 1));
        let p = paper();
        let base = baseline_makespan(&wf, &p);
        let (b_loose, _) = min_budget_for_deadline(&wf, &p, base * 6.0).unwrap();
        let (b_tight, s) = min_budget_for_deadline(&wf, &p, base * 1.1).unwrap();
        assert!(b_tight > b_loose, "tight {b_tight} !> loose {b_loose}");
        let r = simulate(&wf, &p, &s, &SimConfig::planning()).unwrap();
        assert!(r.makespan <= base * 1.1);
    }

    #[test]
    fn impossible_deadline_returns_none() {
        let wf = montage(GenConfig::new(30, 1));
        let p = paper();
        // No budget makes a 90-stage-deep pipeline finish in one second.
        assert!(min_budget_for_deadline(&wf, &p, 1.0).is_none());
    }

    #[test]
    fn bicriteria_variants() {
        let wf = montage(GenConfig::new(30, 1));
        let p = paper();
        let base = baseline_makespan(&wf, &p);
        match plan_bicriteria(&wf, &p, base * 2.0, 5.0) {
            Bicriteria::Feasible { planned, .. } => {
                assert!(planned.satisfies(base * 2.0, 5.0));
            }
            other => panic!("expected feasible, got {other:?}"),
        }
        match plan_bicriteria(&wf, &p, 1.0, 5.0) {
            Bicriteria::DeadlineMiss { makespan } => assert!(makespan > 1.0),
            other => panic!("expected deadline miss, got {other:?}"),
        }
        match plan_bicriteria(&wf, &p, base * 2.0, 0.0) {
            Bicriteria::BudgetInfeasible { min_cost } => assert!(min_cost > 0.0),
            other => panic!("expected budget infeasible, got {other:?}"),
        }
    }
}
