//! # wfs-scheduler — budget-aware workflow scheduling algorithms
//!
//! The core contribution of the reproduced paper (Caniou, Caron, Kong Win
//! Chang, Robert — IPDPSW 2018): schedule a DAG of tasks with stochastic
//! weights onto heterogeneous IaaS VMs so that the makespan is small *and*
//! the monetary cost stays within an initial budget `B_ini`.
//!
//! Algorithms (paper §IV–V):
//! - [`min_min`] / [`heft`] — the classic budget-oblivious baselines;
//! - [`min_min_budg`] / [`heft_budg`] — budget-aware extensions: the budget
//!   is first split per task ([`divide_budget`], Alg. 1), then each task
//!   takes the fastest host it can afford ([`get_best_host`], Alg. 2),
//!   recycling leftovers through the [`Pot`];
//! - [`heft_budg_plus`] — HEFTBUDG+ / HEFTBUDG+INV refinements (Alg. 5)
//!   that re-map tasks using full schedule re-evaluations;
//! - [`bdt`] and [`cg`] / [`cg_plus`] — the two competitors the paper
//!   extends and compares against (§V-D).
//!
//! The [`Algorithm`] enum exposes all of them uniformly.
//!
//! ```
//! use wfs_scheduler::{heft_budg, Algorithm};
//! use wfs_platform::Platform;
//! use wfs_simulator::{simulate, SimConfig};
//! use wfs_workflow::gen::{montage, GenConfig};
//!
//! let wf = montage(GenConfig::new(30, 1));
//! let platform = Platform::paper_default();
//! let budget = 2.0; // dollars
//! let (schedule, _priority) = heft_budg(&wf, &platform, budget);
//! let planned = simulate(&wf, &platform, &schedule, &SimConfig::planning()).unwrap();
//! assert!(planned.total_cost <= budget * 1.05);
//! ```

#![warn(missing_docs)]

mod algorithms;
mod bdt;
mod best_host;
mod budget;
mod cg;
mod deadline;
mod ensemble;
mod heft;
mod maxmin;
mod minmin;
mod online;
mod plan;
pub mod recovery;
pub mod reference;
mod refine;

pub use algorithms::{min_cost_schedule, Algorithm};
pub use bdt::bdt;
pub use best_host::{get_best_host, get_best_host_observed};
pub use budget::{
    datacenter_reservation, divide_budget, t_calc_task, t_calc_workflow, BudgetSplit, Pot,
};
pub use cg::{cg, cg_plus};
pub use deadline::{min_budget_for_deadline, plan_bicriteria, Bicriteria};
pub use ensemble::{schedule_ensemble, AdmittedWorkflow, EnsembleMember, EnsembleResult};
pub use heft::{
    heft, heft_budg, heft_budg_carry, heft_budg_carry_observed, heft_budg_observed,
    heft_budg_with_pot, heft_observed, priority_list,
};
pub use maxmin::{max_min, max_min_budg, sufferage, sufferage_budg};
pub use minmin::{min_min, min_min_budg, min_min_budg_observed, min_min_budg_with_pot, min_min_observed};
pub use online::{run_online, OnlineConfig, OnlineOutcome};
pub use plan::{Candidate, HostEval, PlanState};
pub use recovery::{
    run_with_recovery, run_with_recovery_observed, EpochRecord, RecoveryConfig, RecoveryOutcome,
    RecoveryPolicy,
};
pub use refine::{
    heft_budg_plus, heft_budg_plus_observed, min_min_budg_plus, refine_schedule,
    refine_schedule_observed, RefineOrder,
};
