//! Incremental planning state shared by all list-scheduling algorithms.
//!
//! While building a schedule task by task, an algorithm needs to evaluate,
//! for the current task and every candidate host, the Earliest Finish Time
//! (EFT, paper Eq. 7) and the cost `ct_{T,host}` the assignment would incur.
//! [`PlanState`] tracks the planning-time view: per-VM availability, the
//! instant each produced datum reaches the datacenter, and the partially
//! built [`Schedule`].
//!
//! The planning model deliberately mirrors the paper's estimates rather than
//! the full event simulation: transfers of a task's inputs are serialized on
//! the host link (`size(d_in,T)/bw` summed), upload queuing on producers is
//! ignored, and weights are conservative (`w̄ + σ`). The actual execution is
//! replayed afterwards by `wfs-simulator`.

use std::cell::RefCell;

use wfs_platform::{CategoryId, Platform};
use wfs_simulator::{Schedule, VmId};
use wfs_workflow::{TaskId, Workflow};

use crate::reference;

/// A candidate host for the task being scheduled: an already-enrolled VM or
/// a fresh VM of some category (the paper's `Used_VM ∪ New_VM`, §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Candidate {
    /// An already used VM.
    Used(VmId),
    /// A new VM of the given category (its startup delay and init cost
    /// apply, `δ_new = 1` in Eq. 7).
    New(CategoryId),
}

/// Planning-time evaluation of one (task, candidate) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostEval {
    /// The candidate evaluated.
    pub candidate: Candidate,
    /// Earliest Finish Time (seconds).
    pub eft: f64,
    /// Instant the host starts working for the task (transfers included,
    /// boot included for new VMs).
    pub begin: f64,
    /// Estimated cost `ct_{T,host}`: occupied time × hourly rate, plus the
    /// init cost for a new VM.
    pub cost: f64,
}

/// Reusable buffers for the allocation-free candidate sweep. Owned by
/// [`PlanState`] behind a `RefCell` so sweeps work through `&PlanState`.
///
/// The per-VM arrays are *stamped*: instead of clearing them between
/// sweeps, each entry carries the stamp of the sweep that last wrote it,
/// and stale entries are simply ignored. The arrays only ever grow (when
/// VMs are enrolled), so steady-state sweeps perform no heap allocation.
#[derive(Debug, Clone, Default)]
struct Scratch {
    /// Evaluations of the current sweep, in candidate order (used VMs in
    /// enrollment order, then one `New` per category).
    evals: Vec<HostEval>,
    /// Per-VM sum of *local* edge bytes (edges whose producer sits on that
    /// VM), for VMs hosting ≥1 predecessor of the swept task.
    vm_bytes: Vec<f64>,
    /// Per-VM maximum data-at-DC instant of the same local edges.
    vm_dready: Vec<f64>,
    /// Sweep stamp guarding `vm_bytes`/`vm_dready` entries.
    vm_stamp: Vec<u64>,
    /// Current sweep stamp.
    stamp: u64,
    /// Distinct VMs hosting a predecessor of the swept task (≤ deg).
    pred_vms: Vec<VmId>,
    /// Per-category base occupied time (`total_bytes / bw + w / speed`) of
    /// the swept task — hoists the divisions out of the per-VM loop.
    cat_occupied: Vec<f64>,
    /// Per-category `cost_per_second()`.
    cat_rate: Vec<f64>,
    /// Total sweeps performed since creation (fast or naive path).
    sweeps: u64,
    /// Total candidate evaluations produced across those sweeps.
    cand_evals: u64,
}

/// Incremental planning state over a partially built schedule.
#[derive(Debug, Clone)]
pub struct PlanState<'a> {
    wf: &'a Workflow,
    platform: &'a Platform,
    /// Conservative execution weights (`w̄ + σ`), per task.
    weights: Vec<f64>,
    /// Planned availability instant of each enrolled VM.
    vm_ready: Vec<f64>,
    /// Planned finish time of each scheduled task (`NAN` = unscheduled).
    finish: Vec<f64>,
    /// Planned instant each edge's data reaches the datacenter
    /// (`INFINITY` until the producer is scheduled).
    edge_at_dc: Vec<f64>,
    schedule: Schedule,
    /// Scratch space for [`Self::with_candidate_evals`].
    scratch: RefCell<Scratch>,
    /// When true (set via [`crate::reference::with_naive`]), sweeps use the
    /// per-candidate naive evaluation instead of the aggregated fast path.
    naive: bool,
}

impl<'a> PlanState<'a> {
    /// Fresh planning state with no task scheduled.
    pub fn new(wf: &'a Workflow, platform: &'a Platform) -> Self {
        Self {
            wf,
            platform,
            weights: wf.tasks().iter().map(|t| t.weight.conservative()).collect(),
            vm_ready: Vec::new(),
            finish: vec![f64::NAN; wf.task_count()],
            edge_at_dc: vec![f64::INFINITY; wf.edge_count()],
            schedule: Schedule::new(wf.task_count()),
            scratch: RefCell::new(Scratch::default()),
            naive: reference::naive_enabled(),
        }
    }

    /// True when this state was created under [`reference::with_naive`]:
    /// sweeps take the per-candidate naive path and incremental selection
    /// caches are disabled, so results serve as the ground truth the fast
    /// path is tested against.
    #[inline]
    pub fn is_naive(&self) -> bool {
        self.naive
    }

    /// The workflow being planned.
    #[inline]
    pub fn workflow(&self) -> &'a Workflow {
        self.wf
    }

    /// The target platform.
    #[inline]
    pub fn platform(&self) -> &'a Platform {
        self.platform
    }

    /// The partially built schedule.
    #[inline]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Planned finish time of `t` (`NaN` if unscheduled).
    #[inline]
    pub fn finish_time(&self, t: TaskId) -> f64 {
        self.finish[t.index()]
    }

    /// True once every task has been assigned.
    pub fn is_complete(&self) -> bool {
        self.finish.iter().all(|f| !f.is_nan())
    }

    /// All candidate hosts for the next assignment: every used VM plus one
    /// fresh VM per category (paper §IV-A).
    pub fn candidates(&self) -> Vec<Candidate> {
        let mut out: Vec<Candidate> =
            self.schedule.vm_ids().map(Candidate::Used).collect();
        out.extend(self.platform.category_ids().map(Candidate::New));
        out
    }

    /// Earliest instant all of `t`'s remote inputs can be at the datacenter
    /// (0 for entry data; assumes every scheduled predecessor uploads).
    ///
    /// # Panics
    /// If a predecessor of `t` is unscheduled (list schedulers always
    /// schedule predecessors first).
    fn data_ready_at_dc(&self, t: TaskId, on: Option<VmId>) -> f64 {
        let mut ready: f64 = 0.0;
        for &e in self.wf.in_edges(t) {
            let edge = self.wf.edge(e);
            #[allow(clippy::expect_used)] // documented precondition (# Panics)
            let pred_vm = self
                .schedule
                .assignment(edge.from)
                .expect("predecessors are scheduled before their consumers");
            if Some(pred_vm) == on {
                // Local data: available when the producer finishes; the
                // host availability already covers it (producer runs
                // earlier on the same VM).
                continue;
            }
            ready = ready.max(self.edge_at_dc[e.index()]);
        }
        ready
    }

    /// Bytes `size(d_in,T)` that must be pulled from the datacenter if `t`
    /// runs on `on` (`None` = a new VM): cross-VM edges + external input.
    ///
    /// Computed as (external + all edges) − (edges local to `on`), both
    /// sums in edge order. This total-minus-local formulation is what lets
    /// the candidate sweep adjust the per-task aggregate for each
    /// predecessor-hosting VM in O(1) — the naive path uses the identical
    /// expression so the two stay bit-for-bit equal. For a new VM (or a VM
    /// hosting no predecessor) the local sum is 0.0 and the value equals
    /// the plain in-order sum of all inputs.
    pub fn input_bytes(&self, t: TaskId, on: Option<VmId>) -> f64 {
        let mut total = self.wf.task(t).external_input;
        let mut local = 0.0f64;
        for &e in self.wf.in_edges(t) {
            let edge = self.wf.edge(e);
            total += edge.size;
            if on.is_some() && self.schedule.assignment(edge.from) == on {
                local += edge.size;
            }
        }
        total - local
    }

    /// Evaluation of `t` on the used VM `vm`, given the task's remote input
    /// bytes and data-ready instant as seen from that VM. Shared by the
    /// naive per-candidate path and the aggregated sweep so both perform
    /// bit-identical arithmetic.
    #[inline]
    fn eval_used_with(&self, t: TaskId, vm: VmId, d_in: f64, data_ready: f64) -> HostEval {
        let bw = self.platform.datacenter.bandwidth;
        let w = self.weights[t.index()];
        let cat = self.platform.category(self.schedule.vm_category(vm));
        let begin = self.vm_ready[vm.index()].max(data_ready);
        // The idle gap this assignment creates on the VM is billed
        // too — the machine stays rented while waiting for the
        // task's inputs. Without this term, packing late tasks
        // onto early VMs looks free and the planned cost can
        // undershoot the real bill badly on hub-join topologies.
        let gap = begin - self.vm_ready[vm.index()];
        let occupied = d_in / bw + w / cat.speed;
        HostEval {
            candidate: Candidate::Used(vm),
            eft: begin + occupied,
            begin,
            cost: (gap + occupied) * cat.cost_per_second(),
        }
    }

    /// Evaluation of `t` on a fresh VM of `cat_id`; see [`Self::eval_used_with`].
    #[inline]
    fn eval_new_with(&self, t: TaskId, cat_id: CategoryId, d_in: f64, data_ready: f64) -> HostEval {
        let bw = self.platform.datacenter.bandwidth;
        let w = self.weights[t.index()];
        let cat = self.platform.category(cat_id);
        let occupied = d_in / bw + w / cat.speed;
        HostEval {
            candidate: Candidate::New(cat_id),
            eft: data_ready + cat.boot_time + occupied,
            begin: data_ready,
            cost: occupied * cat.cost_per_second() + cat.init_cost,
        }
    }

    /// Evaluate `t` on `candidate`: EFT per Eq. 7 and cost `ct_{T,host}`.
    ///
    /// This is the naive per-candidate path — it re-walks `t`'s in-edges on
    /// every call. Hot loops should sweep all candidates at once through
    /// [`Self::with_candidate_evals`] instead, which produces bit-identical
    /// results in O(V + K + deg) per sweep.
    pub fn evaluate(&self, t: TaskId, candidate: Candidate) -> HostEval {
        match candidate {
            Candidate::Used(vm) => self.eval_used_with(
                t,
                vm,
                self.input_bytes(t, Some(vm)),
                self.data_ready_at_dc(t, Some(vm)),
            ),
            Candidate::New(cat_id) => self.eval_new_with(
                t,
                cat_id,
                self.input_bytes(t, None),
                self.data_ready_at_dc(t, None),
            ),
        }
    }

    /// Evaluate `t` on every candidate, allocating a fresh vector.
    ///
    /// Retained as the naive reference implementation (the equivalence
    /// suite compares the fast sweep against it); schedulers should use
    /// [`Self::with_candidate_evals`].
    pub fn evaluate_all(&self, t: TaskId) -> Vec<HostEval> {
        self.candidates().into_iter().map(|c| self.evaluate(t, c)).collect()
    }

    /// Sweep all candidates for `t` into a reusable scratch buffer and hand
    /// the evaluations to `f`. Candidate order matches [`Self::candidates`]:
    /// used VMs in enrollment order, then one `New` per category.
    ///
    /// The sweep is O(V + K + deg): one pass over the in-edges computes the
    /// task's base aggregates (total remote bytes, latest data-at-DC
    /// instant) plus per-VM local sums/maxima for the ≤ deg VMs hosting a
    /// predecessor, which are then folded into O(1) per-VM adjustments
    /// (total-minus-local bytes, top-two exclusion for the data-ready
    /// maximum). Evaluations are bit-identical to [`Self::evaluate`]: byte
    /// sums run over the in-edges in the same order as [`Self::input_bytes`]
    /// and `f64::max` is grouping-insensitive for the finite, non-NaN
    /// values involved.
    ///
    /// No heap allocation occurs once the scratch buffers have grown to the
    /// current VM count. Do not call `with_candidate_evals` (or anything
    /// that mutates `self`) from inside `f`: the scratch buffer is borrowed
    /// for the duration of the closure.
    pub fn with_candidate_evals<R>(&self, t: TaskId, f: impl FnOnce(&[HostEval]) -> R) -> R {
        let mut scratch = self.scratch.borrow_mut();
        let scratch = &mut *scratch;
        scratch.evals.clear();
        if self.naive {
            for vm in self.schedule.vm_ids() {
                scratch.evals.push(self.evaluate(t, Candidate::Used(vm)));
            }
            for cat in self.platform.category_ids() {
                scratch.evals.push(self.evaluate(t, Candidate::New(cat)));
            }
            scratch.sweeps += 1;
            scratch.cand_evals += u64::try_from(scratch.evals.len()).unwrap_or(u64::MAX);
            return f(&scratch.evals);
        }

        let n_vms = self.vm_ready.len();
        if scratch.vm_stamp.len() < n_vms {
            scratch.vm_bytes.resize(n_vms, 0.0);
            scratch.vm_dready.resize(n_vms, 0.0);
            scratch.vm_stamp.resize(n_vms, 0);
        }
        scratch.stamp += 1;
        let stamp = scratch.stamp;

        // Pass 1 over in-edges: the base aggregates (valid for every new VM
        // and every used VM hosting no predecessor of `t`) plus, for each
        // VM hosting a predecessor, the *local* byte sum and the local
        // data-ready maximum. Byte totals are summed in edge order so they
        // match `input_bytes` bit for bit.
        let mut total_bytes = self.wf.task(t).external_input;
        let mut dready_all: f64 = 0.0;
        scratch.pred_vms.clear();
        for &e in self.wf.in_edges(t) {
            let edge = self.wf.edge(e);
            #[allow(clippy::expect_used)] // list schedulers commit predecessors first
            let pred_vm = self
                .schedule
                .assignment(edge.from)
                .expect("predecessors are scheduled before their consumers");
            total_bytes += edge.size;
            dready_all = dready_all.max(self.edge_at_dc[e.index()]);
            let i = pred_vm.index();
            if scratch.vm_stamp[i] != stamp {
                scratch.vm_stamp[i] = stamp;
                scratch.pred_vms.push(pred_vm);
                scratch.vm_bytes[i] = 0.0;
                scratch.vm_dready[i] = 0.0;
            }
            scratch.vm_bytes[i] += edge.size;
            scratch.vm_dready[i] = scratch.vm_dready[i].max(self.edge_at_dc[e.index()]);
        }

        // Pass 2, O(P): per-VM adjustments. Bytes follow `input_bytes`'
        // total-minus-local formulation directly. The data-ready instant of
        // a predecessor-hosting VM is the maximum over every *other* VM's
        // local maximum (each in-edge lives on exactly one VM), which a
        // top-two scan answers in O(1) per VM — exactly, because `f64::max`
        // over these finite non-negative values is grouping-insensitive.
        let mut top_vm = VmId(u32::MAX);
        let (mut top, mut second) = (0.0f64, 0.0f64);
        for &v in &scratch.pred_vms {
            let m = scratch.vm_dready[v.index()];
            if m > top {
                (top, second) = (m, top);
                top_vm = v;
            } else if m > second {
                second = m;
            }
        }

        // Hoist the per-category base occupied time and rate out of the
        // per-VM loop: `total_bytes / bw + w / speed` only depends on the
        // category, and the two divisions dominate the loop body. Computing
        // the identical expression once per category keeps the results bit
        // for bit equal to `eval_used_with`.
        let bw = self.platform.datacenter.bandwidth;
        let w = self.weights[t.index()];
        scratch.cat_occupied.clear();
        scratch.cat_rate.clear();
        for cat_id in self.platform.category_ids() {
            let cat = self.platform.category(cat_id);
            scratch.cat_occupied.push(total_bytes / bw + w / cat.speed);
            scratch.cat_rate.push(cat.cost_per_second());
        }

        // Base pass over all used VMs, branch-free: evals land at index
        // `vm.index()`, so the ≤ deg predecessor-hosting entries can be
        // patched in place afterwards.
        let cat_occupied = &scratch.cat_occupied[..];
        let cat_rate = &scratch.cat_rate[..];
        scratch.evals.extend(
            self.vm_ready
                .iter()
                .zip(self.schedule.vm_categories())
                .enumerate()
                .map(|(i, (&vm_ready, &cat))| {
                    let begin = vm_ready.max(dready_all);
                    let gap = begin - vm_ready;
                    let occupied = cat_occupied[cat.index()];
                    HostEval {
                        candidate: Candidate::Used(VmId(i as u32)),
                        eft: begin + occupied,
                        begin,
                        cost: (gap + occupied) * cat_rate[cat.index()],
                    }
                }),
        );
        for &vm in &scratch.pred_vms {
            let i = vm.index();
            let d_in = total_bytes - scratch.vm_bytes[i];
            let dready = if vm == top_vm { second } else { top };
            scratch.evals[i] = self.eval_used_with(t, vm, d_in, dready);
        }
        for cat in self.platform.category_ids() {
            scratch
                .evals
                .push(self.eval_new_with(t, cat, total_bytes, dready_all));
        }
        scratch.sweeps += 1;
        scratch.cand_evals += u64::try_from(scratch.evals.len()).unwrap_or(u64::MAX);
        f(&scratch.evals)
    }

    /// Commit the assignment of `t` to `candidate`, updating VM
    /// availability and data-at-datacenter times. Returns the concrete VM.
    pub fn commit(&mut self, t: TaskId, candidate: Candidate) -> VmId {
        let eval = self.evaluate(t, candidate);
        let vm = match candidate {
            Candidate::Used(vm) => vm,
            Candidate::New(cat) => {
                let vm = self.schedule.add_vm(cat);
                self.vm_ready.push(0.0);
                vm
            }
        };
        self.schedule.assign(t, vm);
        self.vm_ready[vm.index()] = eval.eft;
        self.finish[t.index()] = eval.eft;
        let bw = self.platform.datacenter.bandwidth;
        // Conservative: assume every output is uploaded (some will stay
        // local; the paper makes the same over-estimation, §IV-A).
        for &e in self.wf.out_edges(t) {
            self.edge_at_dc[e.index()] = eval.eft + self.wf.edge(e).size / bw;
        }
        vm
    }

    /// Work counters of the candidate sweep: `(sweeps, evaluations)`
    /// accumulated since this state was created. Cache-served selections
    /// (see `BestHostCache`) perform no sweep and are not counted here.
    pub fn sweep_stats(&self) -> (u64, u64) {
        let s = self.scratch.borrow();
        (s.sweeps, s.cand_evals)
    }

    /// Planned makespan so far: the largest committed EFT.
    pub fn planned_makespan(&self) -> f64 {
        self.finish.iter().copied().filter(|f| !f.is_nan()).fold(0.0, f64::max)
    }

    /// Consume the state, returning the built schedule.
    pub fn into_schedule(self) -> Schedule {
        self.schedule
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use wfs_platform::{BillingPolicy, Datacenter, VmCategory};
    use wfs_workflow::gen::{chain, fork_join};

    /// One category: speed 1, $0.01/s, init $0.5, boot 10 s; bw 10 B/s.
    fn p1() -> Platform {
        Platform::new(
            vec![VmCategory::new("u", 1.0, 36.0, 0.5, 10.0)],
            Datacenter::new(10.0, 0.0, 0.0),
        )
        .with_billing(BillingPolicy::Continuous)
    }

    #[test]
    fn candidates_grow_with_used_vms() {
        let wf = chain(2, 100.0, 50.0);
        let p = p1();
        let mut plan = PlanState::new(&wf, &p);
        assert_eq!(plan.candidates().len(), 1); // one new per category
        plan.commit(TaskId(0), Candidate::New(CategoryId(0)));
        assert_eq!(plan.candidates().len(), 2); // one used + one new
    }

    #[test]
    fn new_vm_eval_matches_eq7() {
        let wf = chain(2, 100.0, 50.0);
        let p = p1();
        let plan = PlanState::new(&wf, &p);
        let e = plan.evaluate(TaskId(0), Candidate::New(CategoryId(0)));
        // data ready 0 (external at DC), boot 10, dl 50/10=5, exec 100.
        assert!((e.eft - 115.0).abs() < 1e-9, "eft {}", e.eft);
        // cost = (5 + 100) * 0.01 + 0.5 init.
        assert!((e.cost - 1.55).abs() < 1e-9, "cost {}", e.cost);
    }

    #[test]
    fn used_vm_avoids_local_transfer() {
        let wf = chain(2, 100.0, 50.0);
        let p = p1();
        let mut plan = PlanState::new(&wf, &p);
        let vm = plan.commit(TaskId(0), Candidate::New(CategoryId(0)));
        let used = plan.evaluate(TaskId(1), Candidate::Used(vm));
        // Same VM: no transfer of the edge, begin = vm ready (115).
        assert!((used.begin - 115.0).abs() < 1e-9);
        assert!((used.eft - 215.0).abs() < 1e-9, "eft {}", used.eft);
        assert!((used.cost - 1.00).abs() < 1e-9, "cost {}", used.cost);

        let fresh = plan.evaluate(TaskId(1), Candidate::New(CategoryId(0)));
        // Data at DC at 115 + 5 = 120; boot 10; dl 5; exec 100 => 235.
        assert!((fresh.begin - 120.0).abs() < 1e-9, "begin {}", fresh.begin);
        assert!((fresh.eft - 235.0).abs() < 1e-9, "eft {}", fresh.eft);
        // Transfer back adds to the cost too: (5 + 100) * 0.01 + 0.5.
        assert!((fresh.cost - 1.55).abs() < 1e-9);
    }

    #[test]
    fn fork_join_parallelism_visible_in_plan() {
        let wf = fork_join(2, 100.0, 0.0);
        let p = p1();
        let mut plan = PlanState::new(&wf, &p);
        let v0 = plan.commit(TaskId(0), Candidate::New(CategoryId(0)));
        // Branch 1 on the same VM, branch 2 on a fresh VM: both finish
        // before a sequential plan would.
        plan.commit(TaskId(1), Candidate::Used(v0));
        plan.commit(TaskId(2), Candidate::New(CategoryId(0)));
        let f1 = plan.finish_time(TaskId(1));
        let f2 = plan.finish_time(TaskId(2));
        // v0: boot 10 + 100 + 100 = 210. fresh: data at 110, boot, exec.
        assert!((f1 - 210.0).abs() < 1e-9);
        assert!((f2 - 220.0).abs() < 1e-9, "f2 {f2}");
        assert!(!plan.is_complete());
        plan.commit(TaskId(3), Candidate::Used(v0));
        assert!(plan.is_complete());
        // Sink on v0 needs branch-2 data from DC: ready at max(210, 220+0)
        // = 220, no bytes (edge size 0) => eft 320.
        assert!((plan.finish_time(TaskId(3)) - 320.0).abs() < 1e-9);
        assert!((plan.planned_makespan() - 320.0).abs() < 1e-9);
    }

    #[test]
    fn conservative_weights_used_in_plan() {
        let wf = chain(1, 100.0, 0.0).with_sigma_ratio(0.5);
        let p = p1();
        let plan = PlanState::new(&wf, &p);
        let e = plan.evaluate(TaskId(0), Candidate::New(CategoryId(0)));
        // weight 150 conservative + boot 10.
        assert!((e.eft - 160.0).abs() < 1e-9, "eft {}", e.eft);
    }

    #[test]
    fn committed_schedule_is_valid() {
        let wf = fork_join(3, 50.0, 10.0);
        let p = p1();
        let mut plan = PlanState::new(&wf, &p);
        for &t in wf.topological_order() {
            let evals = plan.evaluate_all(t);
            let best = evals
                .iter()
                .min_by(|a, b| a.eft.total_cmp(&b.eft))
                .unwrap()
                .candidate;
            plan.commit(t, best);
        }
        let sched = plan.into_schedule();
        sched.validate(&wf).unwrap();
    }
}
