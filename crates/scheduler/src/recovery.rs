//! Budget-aware recovery from injected faults (DESIGN.md §9).
//!
//! The simulator's fault layer can leave a run *partial*: crashed VMs lose
//! their in-flight work, abandoned boots strand whole chains, and only
//! tasks whose outputs reached the datacenter are durable. This module
//! closes the loop — plan → inject → recover — until the workflow is
//! durably complete or the budget is exhausted:
//!
//! - [`RecoveryPolicy::FailStop`] aborts after the first faulted run and
//!   reports the partial cost (the paper's implicit baseline: a perfect
//!   cloud, or you eat the loss).
//! - [`RecoveryPolicy::RetrySameCategory`] re-runs the residual DAG on
//!   fresh VMs of the same categories the tasks were assigned to, keeping
//!   the per-VM orders (provisioning is repeated, planning is not).
//! - [`RecoveryPolicy::RescheduleBudgetAware`] re-runs the HEFTBUDG budget
//!   split (Alg. 1–2/4) over the residual DAG with the *remaining* budget
//!   and the leftover [`Pot`] carried across epochs, so recovery keeps
//!   respecting Eq. 3 instead of blowing through it; when what is left
//!   cannot even pay the cheapest-category floor it degrades gracefully to
//!   a single cheapest VM.
//!
//! Durable results are never recomputed: edges from durable producers are
//! re-staged from the datacenter as external inputs of the residual tasks
//! (the durability rule guarantees those bytes are there).

use crate::algorithms::{min_cost_schedule, Algorithm};
use crate::budget::{datacenter_reservation, Pot};
use crate::heft::heft_budg_carry_observed;
use serde::{Deserialize, Serialize};
use wfs_observe::{Event as Obs, EventSink, NoopSink};
use wfs_platform::{CategoryId, Platform};
use wfs_simulator::{
    plan_lint_faulted, simulate_with_faults_observed, stream_seed, FaultConfig, FaultStats,
    Schedule, SimConfig, SimError, VmId, WeightModel,
};
use wfs_workflow::{TaskId, Workflow, WorkflowBuilder};

/// Seed-stream tag separating per-epoch fault streams from the per-VM
/// streams inside one epoch.
const EPOCH_STREAM: u64 = 0xE70C;

/// How to react when a faulted run leaves the workflow incomplete.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// Abort after the first run; report the partial cost.
    FailStop,
    /// Re-run the residual DAG on fresh VMs of the same categories,
    /// keeping the previous per-VM orders.
    RetrySameCategory,
    /// Re-plan the residual DAG with HEFTBUDG over the remaining budget,
    /// carrying the pot; degrade to the cheapest category when the pot
    /// runs dry.
    RescheduleBudgetAware,
}

impl RecoveryPolicy {
    /// All policies, in reporting order.
    pub const ALL: [RecoveryPolicy; 3] = [
        RecoveryPolicy::FailStop,
        RecoveryPolicy::RetrySameCategory,
        RecoveryPolicy::RescheduleBudgetAware,
    ];

    /// Canonical display name.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryPolicy::FailStop => "FAILSTOP",
            RecoveryPolicy::RetrySameCategory => "RETRY",
            RecoveryPolicy::RescheduleBudgetAware => "RESCHEDULE",
        }
    }
}

impl std::fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for RecoveryPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().replace(['-', '_'], "").as_str() {
            "failstop" => Ok(RecoveryPolicy::FailStop),
            "retry" | "retrysamecategory" => Ok(RecoveryPolicy::RetrySameCategory),
            "reschedule" | "reschedulebudgetaware" => Ok(RecoveryPolicy::RescheduleBudgetAware),
            _ => Err(format!("unknown recovery policy '{s}' (failstop|retry|reschedule)")),
        }
    }
}

/// Configuration of a recovering execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Algorithm planning the *initial* schedule (epoch 0).
    pub algorithm: Algorithm,
    /// Reaction to incomplete runs.
    pub policy: RecoveryPolicy,
    /// Initial budget `B_ini` (Eq. 3) covering the whole recovering
    /// execution, not just the first attempt.
    pub budget: f64,
    /// Fault families to inject; the seed is re-derived per epoch so
    /// re-runs face fresh (but reproducible) faults.
    pub faults: FaultConfig,
    /// Weight realization; stochastic models are reseeded per epoch.
    pub weights: WeightModel,
    /// Hard cap on plan → inject → recover epochs.
    pub max_epochs: usize,
    /// Lint every epoch with [`plan_lint_faulted`] and collect violations
    /// into the outcome (used by tests and `wfs faults --lint`).
    pub lint: bool,
}

impl RecoveryConfig {
    /// A recovering execution with conservative weights, 16 epochs max,
    /// linting off.
    pub fn new(algorithm: Algorithm, policy: RecoveryPolicy, budget: f64, faults: FaultConfig) -> Self {
        Self {
            algorithm,
            policy,
            budget,
            faults,
            weights: WeightModel::Conservative,
            max_epochs: 16,
            lint: false,
        }
    }

    /// Set the weight realization model.
    pub fn with_weights(mut self, weights: WeightModel) -> Self {
        self.weights = weights;
        self
    }

    /// Set the epoch cap.
    pub fn with_max_epochs(mut self, max_epochs: usize) -> Self {
        assert!(max_epochs >= 1, "at least one epoch is needed");
        self.max_epochs = max_epochs;
        self
    }

    /// Enable per-epoch linting.
    pub fn with_lint(mut self) -> Self {
        self.lint = true;
        self
    }
}

/// One plan → inject epoch of a recovering execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch index (0 = the initial attempt).
    pub epoch: usize,
    /// Tasks scheduled this epoch (the residual DAG's size).
    pub scheduled: usize,
    /// Tasks that became durably complete this epoch.
    pub newly_durable: usize,
    /// Money spent this epoch (Eq. 1 + Eq. 2 of the partial run).
    pub cost: f64,
    /// Wall-clock span of this epoch's run.
    pub makespan: f64,
    /// Budget remaining *before* this epoch.
    pub budget_before: f64,
    /// Fault counters of this epoch.
    pub stats: FaultStats,
}

/// Outcome of a recovering execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryOutcome {
    /// Every task durably complete.
    pub completed: bool,
    /// Total money spent across all epochs.
    pub total_cost: f64,
    /// Total wall-clock time (epochs run back to back).
    pub wall_clock: f64,
    /// The initial budget `B_ini`.
    pub budget: f64,
    /// Re-planning rounds after the initial attempt.
    pub replans: usize,
    /// Whether the reschedule policy ever fell back to a single
    /// cheapest-category VM because the remaining budget ran dry.
    pub degraded_to_cheapest: bool,
    /// Aggregated fault counters.
    pub stats: FaultStats,
    /// Per-epoch lint findings (empty unless [`RecoveryConfig::lint`]).
    pub lint_violations: Vec<String>,
    /// Per-epoch breakdown.
    pub epochs: Vec<EpochRecord>,
}

impl RecoveryOutcome {
    /// Eq. 3 budget clause over the whole recovering execution.
    pub fn within_budget(&self) -> bool {
        self.total_cost <= self.budget
    }

    /// Dollars spent beyond the budget (0 when within it).
    pub fn budget_overrun(&self) -> f64 {
        (self.total_cost - self.budget).max(0.0)
    }
}

fn as_u64(x: usize) -> u64 {
    u64::try_from(x).unwrap_or(u64::MAX)
}

/// The epoch's fault configuration: epoch 0 uses the caller's config
/// verbatim; later epochs re-derive the master seed so re-runs face fresh
/// faults while staying deterministic.
fn epoch_faults(base: FaultConfig, epoch: usize) -> FaultConfig {
    if epoch == 0 {
        base
    } else {
        base.with_seed(stream_seed(base.seed, EPOCH_STREAM.wrapping_add(as_u64(epoch))))
    }
}

/// Stochastic weight models are reseeded per epoch (a re-run of a task is
/// a fresh sample, not a replay); deterministic models pass through.
fn epoch_weights(base: WeightModel, epoch: usize) -> WeightModel {
    if epoch == 0 {
        return base;
    }
    match base {
        WeightModel::Stochastic { seed } => {
            WeightModel::Stochastic { seed: stream_seed(seed, EPOCH_STREAM.wrapping_add(as_u64(epoch))) }
        }
        WeightModel::HeavyTail { seed } => {
            WeightModel::HeavyTail { seed: stream_seed(seed, EPOCH_STREAM.wrapping_add(as_u64(epoch))) }
        }
        other => other,
    }
}

/// Cheapest plausible cost of finishing `wf`: serial execution on one
/// cheapest-category VM plus the datacenter reservation. Below this the
/// reschedule policy stops pretending HEFTBUDG can stay within budget and
/// degrades to [`min_cost_schedule`].
fn cheapest_floor(wf: &Workflow, platform: &Platform) -> f64 {
    let cat = platform.category(platform.cheapest());
    let duration = wf.total_conservative_work() / cat.speed;
    datacenter_reservation(wf, platform) + platform.vm_cost(platform.cheapest(), duration)
}

/// The residual workflow over the non-durable tasks, plus the map from
/// residual task id (dense, in original id order) to original task id.
/// Edges from durable producers become external input of the consumer:
/// the durability rule guarantees those bytes are at the datacenter, and
/// re-staging them through the DC is exactly what a restarted consumer
/// must pay.
fn residual_workflow(wf: &Workflow, durable: &[bool]) -> (Workflow, Vec<TaskId>) {
    let mut b = WorkflowBuilder::new(format!("{}-residual", wf.name));
    let mut new_id: Vec<Option<TaskId>> = vec![None; wf.task_count()];
    let mut map: Vec<TaskId> = Vec::new();
    for t in wf.task_ids() {
        if durable[t.index()] {
            continue;
        }
        let task = wf.task(t);
        let id = b.add_task(task.name.clone(), task.weight);
        let mut ext_in = task.external_input;
        for &e in wf.in_edges(t) {
            if durable[wf.edge(e).from.index()] {
                ext_in += wf.edge(e).size;
            }
        }
        if ext_in > 0.0 {
            b.set_external_input(id, ext_in);
        }
        if task.external_output > 0.0 {
            b.set_external_output(id, task.external_output);
        }
        new_id[t.index()] = Some(id);
        map.push(t);
    }
    for e in wf.edges() {
        if let (Some(from), Some(to)) = (new_id[e.from.index()], new_id[e.to.index()]) {
            b.connect(from, to, e.size);
        }
    }
    (b.build_valid(), map)
}

/// Previous slot of each original task: (VM index, position in that VM's
/// order, category) — what the retry policy reprovisions.
type PrevSlot = (u32, u32, CategoryId);

/// Re-provision the residual DAG on fresh VMs of the same categories,
/// preserving the previous per-VM orders (restricted to residual tasks —
/// a subsequence of a feasible order stays feasible on the sub-DAG).
fn retry_schedule(sub: &Workflow, map: &[TaskId], prev: &[PrevSlot]) -> Schedule {
    let mut s = Schedule::new(sub.task_count());
    let mut by_slot: Vec<usize> = (0..map.len()).collect();
    by_slot.sort_by_key(|&ri| {
        let (vm, pos, _) = prev[map[ri].index()];
        (vm, pos)
    });
    let mut cur: Option<(u32, VmId)> = None;
    for ri in by_slot {
        let (pvm, _, cat) = prev[map[ri].index()];
        let vm = match cur {
            Some((p, vm)) if p == pvm => vm,
            _ => {
                let vm = s.add_vm(cat);
                cur = Some((pvm, vm));
                vm
            }
        };
        s.assign(TaskId(u32::try_from(ri).unwrap_or(u32::MAX)), vm);
    }
    s
}

/// Should this epoch's lint enforce the Eq. 3 budget clause? Only the
/// budget-aware reschedule path promises it; retry/failstop (and the
/// degraded cheapest fallback) are best-effort by design.
fn budget_clause(cfg: &RecoveryConfig, epoch: usize, remaining: f64, degraded: bool) -> Option<f64> {
    if degraded || !matches!(cfg.policy, RecoveryPolicy::RescheduleBudgetAware) {
        return None;
    }
    if epoch == 0 && !cfg.algorithm.is_budget_aware() {
        return None;
    }
    Some(remaining)
}

/// Run `wf` to durable completion under fault injection, recovering per
/// `cfg.policy`. Loops plan → inject → recover until every task is
/// durably complete, the budget is exhausted, or `max_epochs` is hit.
pub fn run_with_recovery(
    wf: &Workflow,
    platform: &Platform,
    cfg: &RecoveryConfig,
) -> Result<RecoveryOutcome, SimError> {
    run_with_recovery_observed(wf, platform, cfg, &mut NoopSink)
}

/// [`run_with_recovery`] with an event sink: each epoch is announced with
/// [`Event::EpochStarted`](wfs_observe::Event::EpochStarted) (carrying the
/// wall-clock offset of the epoch's run), planning decisions and simulator
/// execution stream through, and an
/// [`Event::RecoveryEpoch`](wfs_observe::Event::RecoveryEpoch) summary
/// closes each epoch.
pub fn run_with_recovery_observed<S: EventSink>(
    wf: &Workflow,
    platform: &Platform,
    cfg: &RecoveryConfig,
    sink: &mut S,
) -> Result<RecoveryOutcome, SimError> {
    assert!(cfg.budget >= 0.0 && cfg.budget.is_finite(), "budget must be non-negative and finite");
    assert!(cfg.max_epochs >= 1, "at least one epoch is needed");
    let n = wf.task_count();
    let mut durable_all = vec![false; n];
    let mut prev_slot: Vec<PrevSlot> = vec![(0, 0, platform.cheapest()); n];
    let mut pot = Pot::new();
    let mut spent = 0.0f64;
    let mut wall_clock = 0.0f64;
    let mut stats = FaultStats::default();
    let mut epochs: Vec<EpochRecord> = Vec::new();
    let mut lint_violations: Vec<String> = Vec::new();
    let mut degraded_to_cheapest = false;
    let mut completed = false;

    for epoch in 0..cfg.max_epochs {
        let remaining = (cfg.budget - spent).max(0.0);
        if epoch > 0 && remaining <= 0.0 {
            // Budget exhausted: stop recovering, report what we have.
            break;
        }
        let (sub, map) = if epoch == 0 {
            (None, wf.task_ids().collect::<Vec<_>>())
        } else {
            let (s, m) = residual_workflow(wf, &durable_all);
            (Some(s), m)
        };
        let sub_ref: &Workflow = sub.as_ref().unwrap_or(wf);

        if S::ENABLED {
            sink.record(&Obs::EpochStarted {
                epoch: u32::try_from(epoch).unwrap_or(u32::MAX),
                t_offset: wall_clock,
            });
        }
        let mut degraded_this = false;
        let schedule = if epoch == 0 {
            cfg.algorithm.run_observed(sub_ref, platform, cfg.budget, sink)
        } else {
            match cfg.policy {
                // FailStop never reaches a second epoch (breaks below).
                RecoveryPolicy::FailStop => break,
                RecoveryPolicy::RetrySameCategory => retry_schedule(sub_ref, &map, &prev_slot),
                RecoveryPolicy::RescheduleBudgetAware => {
                    if remaining + pot.available() < cheapest_floor(sub_ref, platform) {
                        degraded_this = true;
                        degraded_to_cheapest = true;
                        min_cost_schedule(sub_ref, platform)
                    } else {
                        let (s, carried) =
                            heft_budg_carry_observed(sub_ref, platform, remaining, pot, sink);
                        pot = carried;
                        s
                    }
                }
            }
        };
        // Remember each task's slot for the retry policy.
        for vm in schedule.vm_ids() {
            let cat = schedule.vm_category(vm);
            for (pos, &rt) in schedule.order(vm).iter().enumerate() {
                prev_slot[map[rt.index()].index()] =
                    (vm.0, u32::try_from(pos).unwrap_or(u32::MAX), cat);
            }
        }

        let faults = epoch_faults(cfg.faults, epoch);
        let sim_cfg = SimConfig::new(epoch_weights(cfg.weights, epoch));
        let run =
            simulate_with_faults_observed(sub_ref, platform, &schedule, &sim_cfg, &faults, sink)?;

        if cfg.lint {
            let clause = budget_clause(cfg, epoch, if epoch == 0 { cfg.budget } else { remaining }, degraded_this);
            let ctx = run.lint_context();
            for v in plan_lint_faulted(sub_ref, platform, &schedule, &run.report, clause, &ctx) {
                lint_violations.push(format!("epoch {epoch}: {v}"));
            }
        }

        spent += run.report.total_cost;
        wall_clock += run.report.makespan;
        stats.merge(&run.stats);
        let mut newly_durable = 0usize;
        for (ri, &orig) in map.iter().enumerate() {
            if run.durable[ri] && !durable_all[orig.index()] {
                durable_all[orig.index()] = true;
                newly_durable += 1;
            }
        }
        if S::ENABLED {
            sink.record(&Obs::RecoveryEpoch {
                epoch: u32::try_from(epoch).unwrap_or(u32::MAX),
                scheduled: u32::try_from(map.len()).unwrap_or(u32::MAX),
                newly_durable: u32::try_from(newly_durable).unwrap_or(u32::MAX),
                cost: run.report.total_cost,
                budget_before: remaining,
                makespan: run.report.makespan,
            });
        }
        epochs.push(EpochRecord {
            epoch,
            scheduled: map.len(),
            newly_durable,
            cost: run.report.total_cost,
            makespan: run.report.makespan,
            budget_before: remaining,
            stats: run.stats,
        });
        if durable_all.iter().all(|&d| d) {
            completed = true;
            break;
        }
        if matches!(cfg.policy, RecoveryPolicy::FailStop) {
            break;
        }
    }

    Ok(RecoveryOutcome {
        completed,
        total_cost: spent,
        wall_clock,
        budget: cfg.budget,
        replans: epochs.len().saturating_sub(1),
        degraded_to_cheapest,
        stats,
        lint_violations,
        epochs,
    })
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use wfs_simulator::{BootFaultModel, CrashModel, DegradationModel};
    use wfs_workflow::gen::{fork_join, montage, GenConfig};

    fn paper() -> Platform {
        Platform::paper_default()
    }

    fn stormy(seed: u64) -> FaultConfig {
        FaultConfig::new(seed)
            .with_crash(CrashModel::exponential(900.0))
            .with_boot(BootFaultModel::new(0.15, 3).with_backoff(1.5))
            .with_degradation(DegradationModel::new(0.25, 700.0, 90.0))
    }

    #[test]
    fn no_faults_completes_in_one_epoch() {
        let wf = montage(GenConfig::new(30, 1));
        let p = paper();
        let cfg = RecoveryConfig::new(
            Algorithm::HeftBudg,
            RecoveryPolicy::RescheduleBudgetAware,
            2.0,
            FaultConfig::none(),
        )
        .with_lint();
        let out = run_with_recovery(&wf, &p, &cfg).unwrap();
        assert!(out.completed);
        assert_eq!(out.epochs.len(), 1);
        assert_eq!(out.replans, 0);
        assert_eq!(out.stats, FaultStats::default());
        assert!(out.lint_violations.is_empty(), "{:?}", out.lint_violations);
        assert!(out.within_budget(), "cost {} budget {}", out.total_cost, out.budget);
    }

    #[test]
    fn failstop_never_replans() {
        let wf = montage(GenConfig::new(40, 2));
        let p = paper();
        let cfg =
            RecoveryConfig::new(Algorithm::HeftBudg, RecoveryPolicy::FailStop, 2.0, stormy(11));
        let out = run_with_recovery(&wf, &p, &cfg).unwrap();
        assert_eq!(out.epochs.len(), 1);
        assert_eq!(out.replans, 0);
        assert!(out.total_cost > 0.0);
        // A partial fail-stop run still reports its partial cost.
        if !out.completed {
            assert!(out.epochs[0].newly_durable < wf.task_count());
        }
    }

    #[test]
    fn recovery_is_deterministic() {
        let wf = montage(GenConfig::new(40, 3));
        let p = paper();
        for policy in [RecoveryPolicy::RetrySameCategory, RecoveryPolicy::RescheduleBudgetAware] {
            let cfg = RecoveryConfig::new(Algorithm::HeftBudg, policy, 3.0, stormy(7))
                .with_weights(WeightModel::Stochastic { seed: 5 });
            let a = run_with_recovery(&wf, &p, &cfg).unwrap();
            let b = run_with_recovery(&wf, &p, &cfg).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn reschedule_completes_within_generous_budget_lint_clean() {
        let wf = montage(GenConfig::new(40, 4));
        let p = paper();
        for seed in [1, 2, 3] {
            let cfg = RecoveryConfig::new(
                Algorithm::HeftBudg,
                RecoveryPolicy::RescheduleBudgetAware,
                6.0,
                stormy(seed),
            )
            .with_max_epochs(40)
            .with_lint();
            let out = run_with_recovery(&wf, &p, &cfg).unwrap();
            assert!(out.completed, "seed {seed}: incomplete after {} epochs", out.epochs.len());
            assert!(out.within_budget(), "seed {seed}: cost {} > 6.0", out.total_cost);
            assert!(out.lint_violations.is_empty(), "seed {seed}: {:?}", out.lint_violations);
        }
    }

    #[test]
    fn retry_eventually_completes_under_moderate_faults() {
        let wf = fork_join(8, 400.0, 1e6);
        let p = paper();
        let cfg = RecoveryConfig::new(
            Algorithm::Heft,
            RecoveryPolicy::RetrySameCategory,
            50.0,
            FaultConfig::new(3).with_crash(CrashModel::exponential(1200.0)),
        )
        .with_max_epochs(60);
        let out = run_with_recovery(&wf, &p, &cfg).unwrap();
        assert!(out.completed, "incomplete after {} epochs", out.epochs.len());
        // Epochs shrink: each retry schedules only the residual DAG.
        for w in out.epochs.windows(2) {
            assert!(w[1].scheduled <= w[0].scheduled, "{:?}", out.epochs);
        }
    }

    #[test]
    fn residual_workflow_restages_durable_inputs() {
        let wf = fork_join(3, 100.0, 1e6);
        // fork_join(3): source -> 3 workers -> sink. Mark the source and
        // the first worker durable.
        let mut durable = vec![false; wf.task_count()];
        durable[0] = true;
        durable[1] = true;
        let (sub, map) = residual_workflow(&wf, &durable);
        assert_eq!(sub.task_count(), wf.task_count() - 2);
        assert_eq!(map.len(), sub.task_count());
        assert!(map.iter().all(|t| !durable[t.index()]));
        // Residual workers lost their edge from the durable source: it
        // must reappear as external input.
        let first_resid = map[0];
        let edge_in: f64 = wf.in_edges(first_resid).iter().map(|&e| wf.edge(e).size).sum();
        assert!(edge_in > 0.0);
        assert!(sub.task(TaskId(0)).external_input >= edge_in);
        // Precedence structure survives on the residual tasks.
        assert!(sub.edge_count() > 0);
    }

    #[test]
    fn exhausted_budget_stops_recovery() {
        let wf = montage(GenConfig::new(40, 5));
        let p = paper();
        // Harsh faults + a budget barely above one epoch's spend: the
        // loop must stop early rather than spin to max_epochs.
        let faults = FaultConfig::new(1).with_crash(CrashModel::exponential(150.0));
        let cfg = RecoveryConfig::new(
            Algorithm::HeftBudg,
            RecoveryPolicy::RetrySameCategory,
            0.05,
            faults,
        )
        .with_max_epochs(50);
        let out = run_with_recovery(&wf, &p, &cfg).unwrap();
        assert!(out.epochs.len() < 50, "ran all {} epochs", out.epochs.len());
        if !out.completed {
            assert!(out.total_cost >= out.budget, "stopped but budget not exhausted");
        }
    }

    #[test]
    fn policy_parse_roundtrip() {
        for p in RecoveryPolicy::ALL {
            let parsed: RecoveryPolicy = p.name().parse().unwrap();
            assert_eq!(parsed, p);
        }
        assert_eq!("reschedule".parse::<RecoveryPolicy>().unwrap(), RecoveryPolicy::RescheduleBudgetAware);
        assert_eq!("fail-stop".parse::<RecoveryPolicy>().unwrap(), RecoveryPolicy::FailStop);
        assert!("nope".parse::<RecoveryPolicy>().is_err());
    }
}
