//! Online re-scheduling — the paper's future-work direction (§VI):
//!
//! > "if we monitor the execution of the tasks, we can detect unlikely
//! > events such as very long durations, and in such cases, it could be
//! > beneficial to interrupt some tasks and re-schedule them onto faster
//! > VMs."
//!
//! [`run_online`] executes a HEFTBUDG schedule under *revealed* stochastic
//! weights: each task's realized duration becomes known only when it
//! finishes. A watchdog interrupts any task whose elapsed time exceeds its
//! conservative estimate by a configurable factor, and re-dispatches it —
//! preferring faster VMs — if the remaining budget allows; otherwise the
//! task restarts in place and runs to completion.
//!
//! The timing model here is the paper's *planning* model (Eq. 7: serialized
//! input transfers, conservative upload of every output, uncharged boot),
//! with realized instead of estimated weights — the same model the
//! algorithms reason with, so static and online runs are directly
//! comparable. Interrupted work is lost and the occupied VM time stays
//! charged, exactly the risk the paper flags for dynamic decisions.

use crate::heft::heft_budg;
use wfs_platform::{CategoryId, Platform};
use wfs_simulator::{realize_weights, WeightModel};
use wfs_workflow::{TaskId, Workflow};

/// Configuration of an online run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// Seed for the realized task weights.
    pub seed: u64,
    /// Interrupt a task once its elapsed time exceeds
    /// `(w̄ + timeout_sigmas·σ) / speed`. The paper plans with one σ of
    /// margin; 2–3 σ make interruptions rare-but-useful. `None` disables
    /// the watchdog (the static baseline under the same timing model).
    pub timeout_sigmas: Option<f64>,
    /// When re-dispatching an interrupted task, only moves whose marginal
    /// cost fits the remaining budget are taken.
    pub budget: f64,
    /// Draw realized weights from the heavy-tailed log-normal instead of
    /// the paper's Gaussian. Interrupting stragglers only pays when long
    /// elapsed time signals *more* remaining work — true for heavy tails,
    /// false for Gaussians (whose conditional remainder shrinks), which is
    /// exactly the risk §VI warns about.
    pub heavy_tail: bool,
}

impl OnlineConfig {
    /// Watchdog at `k` sigmas within `budget`, Gaussian weights.
    pub fn with_watchdog(seed: u64, budget: f64, k: f64) -> Self {
        assert!(k >= 0.0 && k.is_finite());
        Self { seed, timeout_sigmas: Some(k), budget, heavy_tail: false }
    }

    /// Static execution (no interruptions) — the comparison baseline.
    pub fn static_run(seed: u64, budget: f64) -> Self {
        Self { seed, timeout_sigmas: None, budget, heavy_tail: false }
    }

    /// Switch to heavy-tailed (log-normal) realized weights.
    pub fn with_heavy_tail(mut self) -> Self {
        self.heavy_tail = true;
        self
    }
}

/// Outcome of an online execution.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineOutcome {
    /// Wall-clock span from first VM booking to last output at the DC.
    pub makespan: f64,
    /// Total cost (VMs + datacenter), Eq. 1–2 under the planning model.
    pub total_cost: f64,
    /// Number of watchdog interruptions.
    pub interruptions: usize,
    /// Interrupted tasks that moved to a *different* VM.
    pub migrations: usize,
    /// True if `total_cost <= budget`.
    pub within_budget: bool,
    /// Per-VM `(category index, charged seconds)` for booked VMs.
    pub vm_usage: Vec<(u32, f64)>,
}

/// Per-VM execution state.
struct OnlineVm {
    category: CategoryId,
    /// Instant the VM becomes free for the next task.
    avail: f64,
    /// First instant the VM was used (boot end); `None` until first task.
    charge_start: Option<f64>,
    /// Last instant the VM was active (task end or upload end).
    last_activity: f64,
}

/// Safety factor on a migration's estimated cost before it is considered
/// affordable: the realized duration of a heavy-tailed straggler can exceed
/// the `w̄ + σ` estimate severalfold, and the spend is irrevocable once the
/// task restarts. Migrate only with real headroom.
const TAIL_SAFETY: f64 = 3.0;

/// Execute `wf` online: HEFTBUDG plans, the watchdog adapts.
pub fn run_online(
    wf: &Workflow,
    platform: &Platform,
    b_ini: f64,
    cfg: OnlineConfig,
) -> OnlineOutcome {
    let model = if cfg.heavy_tail {
        WeightModel::HeavyTail { seed: cfg.seed }
    } else {
        WeightModel::Stochastic { seed: cfg.seed }
    };
    let realized = realize_weights(wf, model);
    let (schedule, _list) = heft_budg(wf, platform, b_ini);
    let bw = platform.datacenter.bandwidth;

    let mut vms: Vec<OnlineVm> = schedule
        .vm_ids()
        .map(|v| OnlineVm {
            category: schedule.vm_category(v),
            avail: 0.0,
            charge_start: None,
            last_activity: 0.0,
        })
        .collect();
    // Per-VM FIFO of queued tasks (the planned order).
    let mut queues: Vec<std::collections::VecDeque<TaskId>> =
        schedule.vm_ids().map(|v| schedule.order(v).iter().copied().collect()).collect();

    let n = wf.task_count();
    let mut done = vec![false; n];
    let mut finish = vec![f64::NAN; n];
    // Conservative data-at-DC time per edge (producers always upload).
    let mut at_dc = vec![f64::INFINITY; wf.edge_count()];
    // VM each task actually ran on (for input-locality of re-dispatches).
    let mut ran_on: Vec<Option<usize>> = vec![None; n];
    let mut interruptions = 0usize;
    let mut migrations = 0usize;
    let mut completed = 0usize;

    // A task at the head of its queue is startable once its predecessors
    // are done. Returns (start_time, duration_secs_of_transfers).
    let startable =
        |wf: &Workflow, vm_idx: usize, t: TaskId, vms: &[OnlineVm], at_dc: &[f64],
         ran_on: &[Option<usize>], done: &[bool]| -> Option<(f64, f64)> {
            let mut data_ready: f64 = 0.0;
            let mut in_bytes = wf.task(t).external_input;
            for &e in wf.in_edges(t) {
                let edge = wf.edge(e);
                if !done[edge.from.index()] {
                    return None;
                }
                if ran_on[edge.from.index()] == Some(vm_idx) {
                    continue; // local data
                }
                data_ready = data_ready.max(at_dc[e.index()]);
                in_bytes += edge.size;
            }
            let boot = if vms[vm_idx].charge_start.is_none() {
                platform.category(vms[vm_idx].category).boot_time
            } else {
                0.0
            };
            let begin = vms[vm_idx].avail.max(data_ready) + boot;
            Some((begin, in_bytes / bw))
        };

    // Projected total cost of the current state (per-VM usage so far plus
    // init costs and the datacenter estimate over the current span).
    let projected_cost = |vms: &[OnlineVm], span: f64| -> f64 {
        let mut c = 0.0;
        for vm in vms {
            if let Some(start) = vm.charge_start {
                c += platform.vm_cost(vm.category, (vm.last_activity - start).max(0.0));
            }
        }
        let external = wf.external_input_data() + wf.external_output_data();
        c + platform.datacenter.cost(span, external)
    };

    while completed < n {
        // Pick the queue head with the earliest possible start.
        let mut best: Option<(usize, TaskId, f64, f64)> = None;
        for (v, q) in queues.iter().enumerate() {
            let Some(&t) = q.front() else { continue };
            if let Some((begin, xfer)) = startable(wf, v, t, &vms, &at_dc, &ran_on, &done) {
                if best.is_none_or(|(_, _, b, _)| begin < b) {
                    best = Some((v, t, begin, xfer));
                }
            }
        }
        let Some((v, t, begin, xfer)) = best else {
            unreachable!("validated schedules cannot stall");
        };
        queues[v].pop_front();

        let cat = platform.category(vms[v].category);
        if vms[v].charge_start.is_none() {
            vms[v].charge_start = Some(begin); // boot already added, uncharged
        }
        let exec_start = begin + xfer;
        let real_dur = realized[t.index()] / cat.speed;
        let est = wf.task(t).weight;
        let timeout = cfg
            .timeout_sigmas
            .map(|k| (est.mean + k * est.std_dev) / cat.speed)
            .unwrap_or(f64::INFINITY);

        let end = if real_dur > timeout {
            // Watchdog fires. The controller does NOT know the realized
            // duration; it estimates the remaining work as one full mean
            // weight (`w̄`) and decides: migrate only if the estimated
            // finish on a faster host — paying the lost elapsed work, the
            // re-transfers and possibly a boot — beats the estimated
            // finish of simply letting the task run.
            interruptions += 1;
            let interrupt_at = exec_start + timeout;
            let cur_speed = cat.speed;
            // Conservative remaining estimate (w̄ + σ, like the planner):
            // under-estimating it would green-light marginal migrations
            // whose realized cost busts the budget.
            let est_remaining_work = est.conservative();
            let cont_est = interrupt_at + est_remaining_work / cur_speed;
            // Restarting elsewhere must redo the work done so far too.
            let est_total_work = timeout * cur_speed + est_remaining_work;

            // Budget headroom at the interrupt instant, after reserving
            // the conservative cost of every task still to run *on the VM
            // category the plan assigned it* — migrating must never starve
            // the remaining workload.
            let future_reserve: f64 = wf
                .task_ids()
                .filter(|&u| !done[u.index()] && u != t)
                .map(|u| {
                    let cat_id = schedule
                        .assignment(u)
                        .map(|vm| schedule.vm_category(vm))
                        .unwrap_or_else(|| platform.cheapest());
                    let c = platform.category(cat_id);
                    wf.task(u).weight.conservative() / c.speed * c.cost_per_second()
                })
                .sum();
            let headroom =
                cfg.budget - projected_cost(&vms, interrupt_at) - future_reserve;
            let in_bytes_full = wf.task(t).external_input
                + wf.in_edges(t).iter().map(|&e| wf.edge(e).size).sum::<f64>();

            // Candidate moves, judged on ESTIMATED end time.
            // (vm index or None=new, category, est_end, start, cost_est)
            let mut choice: Option<(Option<usize>, CategoryId, f64, f64)> = None;
            for (cv, cvm) in vms.iter().enumerate() {
                if cv == v {
                    continue;
                }
                let c = platform.category(cvm.category);
                let occupied = in_bytes_full / bw + est_total_work / c.speed;
                let start = cvm.avail.max(interrupt_at);
                let est_end = start + occupied;
                // Re-using an idle VM re-opens its continuous rental slot:
                // the gap since its last activity is billed too.
                let reopen_gap = (start - cvm.avail).max(0.0);
                let cost = (reopen_gap + occupied) * c.cost_per_second();
                if cost * TAIL_SAFETY <= headroom && choice.is_none_or(|(_, _, e, _)| est_end < e) {
                    choice = Some((Some(cv), cvm.category, est_end, start));
                }
            }
            for cat_id in platform.category_ids() {
                let c = platform.category(cat_id);
                let occupied = in_bytes_full / bw + est_total_work / c.speed;
                let est_end = interrupt_at + c.boot_time + occupied;
                let cost = occupied * c.cost_per_second() + c.init_cost;
                if cost * TAIL_SAFETY <= headroom && choice.is_none_or(|(_, _, e, _)| est_end < e) {
                    choice = Some((None, cat_id, est_end, interrupt_at + c.boot_time));
                }
            }

            match choice {
                Some((target, cat_id, est_end, start)) if est_end < cont_est => {
                    // Migrate: the elapsed timeout stays charged on `v`.
                    migrations += 1;
                    vms[v].avail = interrupt_at;
                    vms[v].last_activity = interrupt_at;
                    let c = platform.category(cat_id);
                    let actual_end =
                        start + in_bytes_full / bw + realized[t.index()] / c.speed;
                    let host = match target {
                        Some(cv) => {
                            if vms[cv].charge_start.is_none() {
                                vms[cv].charge_start = Some(start);
                            }
                            cv
                        }
                        None => {
                            vms.push(OnlineVm {
                                category: cat_id,
                                avail: start,
                                charge_start: Some(start),
                                last_activity: start,
                            });
                            queues.push(std::collections::VecDeque::new());
                            vms.len() - 1
                        }
                    };
                    vms[host].avail = actual_end;
                    vms[host].last_activity = actual_end;
                    ran_on[t.index()] = Some(host);
                    actual_end
                }
                _ => {
                    // Continuing is (estimated) better or nothing is
                    // affordable: let the task finish in place.
                    let e = exec_start + real_dur;
                    vms[v].avail = e;
                    vms[v].last_activity = e;
                    ran_on[t.index()] = Some(v);
                    e
                }
            }
        } else {
            let e = exec_start + real_dur;
            vms[v].avail = e;
            vms[v].last_activity = e;
            ran_on[t.index()] = Some(v);
            e
        };

        done[t.index()] = true;
        finish[t.index()] = end;
        completed += 1;
        #[allow(clippy::expect_used)] // both branches above record the host
        let host = ran_on[t.index()].expect("just set");
        // Conservative uploads of every output (+ external output).
        let mut upload_end = end;
        for &e in wf.out_edges(t) {
            upload_end += wf.edge(e).size / bw;
            at_dc[e.index()] = upload_end;
        }
        upload_end += wf.task(t).external_output / bw;
        vms[host].last_activity = vms[host].last_activity.max(upload_end);
    }

    let makespan = vms
        .iter()
        .filter(|v| v.charge_start.is_some())
        .map(|v| v.last_activity)
        .fold(0.0f64, f64::max);
    let total_cost = projected_cost(&vms, makespan);
    let vm_usage = vms
        .iter()
        .filter_map(|v| {
            v.charge_start
                .map(|s| (v.category.0, (v.last_activity - s).max(0.0)))
        })
        .collect();
    OnlineOutcome {
        makespan,
        total_cost,
        interruptions,
        migrations,
        within_budget: total_cost <= cfg.budget,
        vm_usage,
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use wfs_workflow::gen::{cybershake, montage, GenConfig};

    fn paper() -> Platform {
        Platform::paper_default()
    }

    #[test]
    fn static_run_has_no_interruptions() {
        let wf = montage(GenConfig::new(30, 1));
        let p = paper();
        let out = run_online(&wf, &p, 2.0, OnlineConfig::static_run(7, 2.0));
        assert_eq!(out.interruptions, 0);
        assert_eq!(out.migrations, 0);
        assert!(out.makespan > 0.0 && out.total_cost > 0.0);
    }

    #[test]
    fn watchdog_fires_on_high_sigma() {
        // σ = 100 % of the mean: many tasks exceed w̄ + 1σ.
        let wf = montage(GenConfig::new(60, 1).with_sigma_ratio(1.0));
        let p = paper();
        let out = run_online(&wf, &p, 5.0, OnlineConfig::with_watchdog(3, 5.0, 1.0));
        assert!(out.interruptions > 0, "no interruption at sigma=100%");
    }

    #[test]
    fn deterministic_given_seed() {
        let wf = cybershake(GenConfig::new(30, 2));
        let p = paper();
        let cfg = OnlineConfig::with_watchdog(11, 3.0, 2.0);
        assert_eq!(run_online(&wf, &p, 3.0, cfg), run_online(&wf, &p, 3.0, cfg));
    }

    #[test]
    fn zero_sigma_watchdog_never_fires_spuriously() {
        // Deterministic weights: realized == mean <= timeout threshold.
        let wf = montage(GenConfig::new(30, 1).with_sigma_ratio(0.0));
        let p = paper();
        let out = run_online(&wf, &p, 2.0, OnlineConfig::with_watchdog(5, 2.0, 0.0));
        assert_eq!(out.interruptions, 0);
    }

    /// Migration-friendly setup: a wide speed ladder (16×, like real cloud
    /// size ranges), long tasks, and a budget tight enough that HEFTBUDG
    /// starts on slow VMs — the regime where killing a straggler for a
    /// fast VM can actually win despite redoing its work.
    fn straggler_setup() -> (wfs_workflow::Workflow, Platform, f64) {
        use wfs_workflow::gen::{layered_random, LayeredParams};
        let p = Platform::wide_ladder();
        let wf = layered_random(
            LayeredParams { layers: 4, width: 5, edge_prob: 0.3, work: 6000.0, data: 20e6 },
            GenConfig { tasks: 0, seed: 1, sigma_ratio: 1.0 },
        );
        let floor = {
            use wfs_simulator::{simulate, SimConfig};
            simulate(&wf, &p, &crate::min_cost_schedule(&wf, &p), &SimConfig::planning())
                .unwrap()
                .total_cost
        };
        let budget = floor * 1.2;
        (wf, p, budget)
    }

    fn avg_makespan(
        wf: &wfs_workflow::Workflow,
        p: &Platform,
        budget: f64,
        k: Option<f64>,
        heavy: bool,
        reps: u64,
    ) -> f64 {
        (0..reps)
            .map(|seed| {
                let mut cfg = match k {
                    Some(k) => OnlineConfig::with_watchdog(seed, budget, k),
                    None => OnlineConfig::static_run(seed, budget),
                };
                if heavy {
                    cfg = cfg.with_heavy_tail();
                }
                run_online(wf, p, budget, cfg).makespan
            })
            .sum::<f64>()
            / reps as f64
    }

    #[test]
    fn online_pays_off_on_heavy_tails() {
        // The benefit side of §VI: with heavy-tailed (log-normal)
        // durations, long elapsed time means a straggler with lots of work
        // left, and killing it for a much faster VM wins on average.
        let (wf, p, budget) = straggler_setup();
        let static_mk = avg_makespan(&wf, &p, budget, None, true, 20);
        let online_mk = avg_makespan(&wf, &p, budget, Some(1.0), true, 20);
        assert!(
            online_mk < static_mk,
            "online {online_mk} not better than static {static_mk} despite stragglers"
        );
    }

    #[test]
    fn gaussian_interruption_is_risky_as_the_paper_warns() {
        // The risk side of §VI: with thin Gaussian tails a task past its
        // timeout is almost done, so the (distribution-blind) controller
        // migrates wrongly and typically loses a little. Assert the loss
        // exists-or-is-bounded: online must NOT beat static here, and must
        // not blow up either.
        let (wf, p, budget) = straggler_setup();
        let static_mk = avg_makespan(&wf, &p, budget, None, false, 20);
        let online_mk = avg_makespan(&wf, &p, budget, Some(1.0), false, 20);
        assert!(
            online_mk >= static_mk * 0.99,
            "Gaussian interruption should not win: online {online_mk} vs static {static_mk}"
        );
        assert!(
            online_mk <= static_mk * 1.35,
            "online {online_mk} catastrophically worse than static {static_mk}"
        );
    }

    #[test]
    fn migrations_happen_in_the_straggler_regime() {
        let (wf, p, budget) = straggler_setup();
        let total: usize = (0..10)
            .map(|seed| {
                run_online(
                    &wf,
                    &p,
                    budget,
                    OnlineConfig::with_watchdog(seed, budget, 1.0).with_heavy_tail(),
                )
                .migrations
            })
            .sum();
        assert!(total > 0, "no migration ever happened");
    }

    #[test]
    fn redispatch_does_not_wreck_budget_compliance() {
        // Migrations draw on real headroom only (future work is reserved
        // at cheapest-category cost first), so the online compliance rate
        // stays close to the static one even with stragglers.
        let (wf, p, budget) = straggler_setup();
        let reps = 20u64;
        let count_ok = |k: Option<f64>| -> u64 {
            (0..reps)
                .filter(|&seed| {
                    let cfg = match k {
                        Some(k) => OnlineConfig::with_watchdog(seed, budget, k).with_heavy_tail(),
                        None => OnlineConfig::static_run(seed, budget).with_heavy_tail(),
                    };
                    run_online(&wf, &p, budget, cfg).within_budget
                })
                .count() as u64
        };
        let static_ok = count_ok(None);
        let online_ok = count_ok(Some(1.0));
        assert!(
            online_ok + 3 >= static_ok,
            "online compliance {online_ok}/{reps} collapsed vs static {static_ok}/{reps}"
        );
    }
}
