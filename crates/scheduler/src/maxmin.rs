//! MAX-MIN and SUFFERAGE — the other two classic list heuristics of the
//! MIN-MIN family ([6], [14]), plus budget-aware variants built from the
//! same Algorithm 1/2 machinery as MIN-MINBUDG. Extensions beyond the
//! paper (its §IV notes the approach applies to any list scheduler).
//!
//! - MAX-MIN commits, among the ready tasks, the one whose *best* EFT is
//!   **largest** (big tasks first, small ones fill the gaps);
//! - SUFFERAGE commits the task that would *suffer* most if denied its
//!   best host: maximal difference between its second-best and best EFT.

use crate::best_host::{select, BestHostCache, COST_EPS};
use crate::budget::{divide_budget, Pot};
use crate::plan::{HostEval, PlanState};
use wfs_platform::Platform;
use wfs_simulator::{Schedule, VmId};
use wfs_workflow::{OrdF64, TaskId, Workflow};

/// Task-selection rule within the ready set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rule {
    MaxMin,
    Sufferage,
}

/// Run MAX-MIN (unbounded budget).
pub fn max_min(wf: &Workflow, platform: &Platform) -> Schedule {
    run(wf, platform, None, Rule::MaxMin)
}

/// Run the budget-aware MAX-MINBUDG.
pub fn max_min_budg(wf: &Workflow, platform: &Platform, b_ini: f64) -> Schedule {
    run(wf, platform, Some(b_ini), Rule::MaxMin)
}

/// Run SUFFERAGE (unbounded budget).
pub fn sufferage(wf: &Workflow, platform: &Platform) -> Schedule {
    run(wf, platform, None, Rule::Sufferage)
}

/// Run the budget-aware SUFFERAGEBUDG.
pub fn sufferage_budg(wf: &Workflow, platform: &Platform, b_ini: f64) -> Schedule {
    run(wf, platform, Some(b_ini), Rule::Sufferage)
}

fn run(wf: &Workflow, platform: &Platform, b_ini: Option<f64>, rule: Rule) -> Schedule {
    let split = b_ini.map(|b| divide_budget(wf, platform, b));
    let mut pot = Pot::new();
    let mut plan = PlanState::new(wf, platform);

    let mut missing: Vec<usize> = wf.task_ids().map(|t| wf.in_edges(t).len()).collect();
    let mut ready: Vec<TaskId> = wf.task_ids().filter(|&t| missing[t.index()] == 0).collect();

    // MAX-MIN reuses the incremental best-host cache (its score is just the
    // best EFT). SUFFERAGE cannot: its score depends on the whole affordable
    // candidate *set*, so it runs one combined zero-allocation sweep instead.
    let mut cache = BestHostCache::new(wf.task_count());
    let mut last_commit: Option<VmId> = None;

    while !ready.is_empty() {
        let mut best: Option<(usize, HostEval, f64)> = None; // (idx, eval, score)
        for (i, &t) in ready.iter().enumerate() {
            let limit = match &split {
                Some(s) => s.share(t) + pot.available(),
                None => f64::INFINITY,
            };
            let (eval, score) = match rule {
                Rule::MaxMin => {
                    let eval = cache.best(&plan, t, limit, last_commit);
                    (eval, eval.eft)
                }
                Rule::Sufferage => plan.with_candidate_evals(t, |evals| {
                    // Sufferage = second-best EFT − best EFT among the
                    // affordable candidates (∞ limit for the baseline);
                    // 0 when none is affordable, ∞ when exactly one is.
                    let (mut e1, mut e2) = (f64::INFINITY, f64::INFINITY);
                    let mut affordable = 0usize;
                    for e in evals {
                        if e.cost <= limit + COST_EPS {
                            affordable += 1;
                            if e.eft < e1 {
                                (e1, e2) = (e.eft, e1);
                            } else if e.eft < e2 {
                                e2 = e.eft;
                            }
                        }
                    }
                    let score = match affordable {
                        0 => 0.0,
                        1 => f64::INFINITY,
                        _ => e2 - e1,
                    };
                    (select(evals, limit).best, score)
                }),
            };
            // Maximize the score; tie-break on smaller EFT, then id.
            // `total_cmp` keeps the rule total: sufferage scores are
            // differences of EFTs and the ordering must not fall apart if
            // one of them degenerates to NaN.
            let better = best.as_ref().is_none_or(|(bi, be, bs)| {
                match score.total_cmp(bs) {
                    std::cmp::Ordering::Greater => true,
                    std::cmp::Ordering::Equal => {
                        (OrdF64(eval.eft), t.0) < (OrdF64(be.eft), ready[*bi].0)
                    }
                    std::cmp::Ordering::Less => false,
                }
            });
            if better {
                best = Some((i, eval, score));
            }
        }
        #[allow(clippy::expect_used)] // loop guard: `ready` is non-empty
        let (idx, eval, _) = best.expect("ready set is non-empty");
        let t = ready.swap_remove(idx);
        last_commit = Some(plan.commit(t, eval.candidate));
        cache.forget(t);
        if let Some(s) = &split {
            pot.settle(s.share(t), eval.cost);
        }
        for succ in wf.successors(t) {
            missing[succ.index()] -= 1;
            if missing[succ.index()] == 0 {
                ready.push(succ);
            }
        }
    }
    debug_assert!(plan.is_complete());
    plan.into_schedule()
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-constant assertions are intentional in tests
mod tests {
    use super::*;
    use wfs_simulator::{simulate, SimConfig};
    use wfs_workflow::gen::{bag_of_tasks, cybershake, montage, GenConfig};

    fn paper() -> Platform {
        Platform::paper_default()
    }

    #[test]
    fn all_variants_produce_valid_schedules() {
        let wf = montage(GenConfig::new(30, 1));
        let p = paper();
        for s in [
            max_min(&wf, &p),
            max_min_budg(&wf, &p, 1.0),
            sufferage(&wf, &p),
            sufferage_budg(&wf, &p, 1.0),
        ] {
            s.validate(&wf).unwrap();
        }
    }

    #[test]
    fn budget_variants_hold_planned_cost() {
        let wf = cybershake(GenConfig::new(60, 1));
        let p = paper();
        let floor = simulate(
            &wf,
            &p,
            &crate::min_cost_schedule(&wf, &p),
            &SimConfig::planning(),
        )
        .unwrap()
        .total_cost;
        for mult in [1.2, 2.0] {
            let budget = floor * mult;
            for s in [max_min_budg(&wf, &p, budget), sufferage_budg(&wf, &p, budget)] {
                let r = simulate(&wf, &p, &s, &SimConfig::planning()).unwrap();
                assert!(
                    r.total_cost <= budget * 1.1,
                    "cost {} for budget {budget}",
                    r.total_cost
                );
            }
        }
    }

    #[test]
    fn max_min_prefers_big_tasks_first() {
        // A bag with one huge and several small tasks: MAX-MIN schedules
        // the huge one first (earliest start), MIN-MIN last.
        use wfs_workflow::{StochasticWeight, WorkflowBuilder};
        let mut b = WorkflowBuilder::new("mix");
        let big = b.add_task("big", StochasticWeight::fixed(10_000.0));
        for i in 0..4 {
            b.add_task(format!("small{i}"), StochasticWeight::fixed(100.0));
        }
        let wf = b.build().unwrap();
        let p = paper();
        let s_max = max_min(&wf, &p);
        let s_min = crate::min_min(&wf, &p);
        let cfg = SimConfig::planning();
        let r_max = simulate(&wf, &p, &s_max, &cfg).unwrap();
        let r_min = simulate(&wf, &p, &s_min, &cfg).unwrap();
        assert!(
            r_max.task(big).start <= r_min.task(big).start,
            "MAX-MIN should not start the big task later than MIN-MIN"
        );
    }

    #[test]
    fn sufferage_handles_bags() {
        let wf = bag_of_tasks(10, 500.0, 0.0);
        let p = paper();
        let s = sufferage(&wf, &p);
        s.validate(&wf).unwrap();
        assert!(s.used_vm_count() >= 1);
    }

    #[test]
    fn deterministic() {
        let wf = montage(GenConfig::new(60, 2));
        let p = paper();
        assert_eq!(max_min_budg(&wf, &p, 2.0), max_min_budg(&wf, &p, 2.0));
        assert_eq!(sufferage_budg(&wf, &p, 2.0), sufferage_budg(&wf, &p, 2.0));
    }
}
