//! Chrome-trace-event JSON exporter (loadable in `chrome://tracing` and
//! Perfetto).
//!
//! Layout: one *process* per recovery epoch (`pid` = epoch; single runs are
//! epoch 0) and three *threads* per VM — compute (`tid = 3·vm`), downloads
//! (`3·vm + 1`) and uploads (`3·vm + 2`) — plus one datacenter track
//! ([`DC_TID`]) for degradation windows. Boots, tasks and transfers become
//! complete spans (`ph:"X"`, `ts`/`dur` in microseconds); crashes, aborts
//! and abandoned boots become instants (`ph:"i"`). Multi-epoch recovery runs
//! are laid onto one global timeline via [`Event::EpochStarted`]'s
//! wall-clock offset.
//!
//! The JSON is hand-formatted (the crate is dependency-free); timestamps are
//! finite by construction so the output is always valid JSON.

use crate::event::Event;
use crate::sink::EventSink;
use std::collections::BTreeMap;

/// The `tid` of the datacenter track (degradation windows).
pub const DC_TID: u64 = u64::MAX;

/// Microseconds per simulated second (trace-event `ts`/`dur` unit).
const US: f64 = 1e6;

#[derive(Debug, Clone)]
struct Span {
    name: String,
    cat: &'static str,
    ts: f64,
    dur: f64,
    pid: u32,
    tid: u64,
}

#[derive(Debug, Clone)]
struct Inst {
    name: String,
    ts: f64,
    pid: u32,
    tid: u64,
}

#[derive(Debug, Clone)]
struct Open {
    name: String,
    cat: &'static str,
    ts: f64,
}

/// Incremental Chrome-trace builder; also an [`EventSink`], so it can be
/// fed live or via [`ChromeTrace::from_events`].
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    epoch: u32,
    t_offset: f64,
    open: BTreeMap<(u32, u64), Open>,
    spans: Vec<Span>,
    instants: Vec<Inst>,
    threads: BTreeMap<(u32, u64), String>,
    processes: BTreeMap<u32, String>,
}

impl ChromeTrace {
    /// An empty trace (epoch 0, zero offset).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a trace from a recorded event stream.
    pub fn from_events(events: &[Event]) -> Self {
        let mut t = Self::new();
        for e in events {
            t.record(e);
        }
        t
    }

    /// Number of complete spans accumulated so far.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Number of instant markers accumulated so far.
    pub fn instant_count(&self) -> usize {
        self.instants.len()
    }

    fn ts(&self, t: f64) -> f64 {
        (self.t_offset + t) * US
    }

    fn ensure_vm_threads(&mut self, vm: u32, category: Option<u32>) {
        let base = u64::from(vm) * 3;
        let pid = self.epoch;
        self.processes.entry(pid).or_insert_with(|| format!("epoch {pid}"));
        self.threads.entry((pid, base)).or_insert_with(|| match category {
            Some(c) => format!("vm{vm} cat{c} compute"),
            None => format!("vm{vm} compute"),
        });
        self.threads.entry((pid, base + 1)).or_insert_with(|| format!("vm{vm} download"));
        self.threads.entry((pid, base + 2)).or_insert_with(|| format!("vm{vm} upload"));
    }

    fn open_span(&mut self, tid: u64, name: String, cat: &'static str, t: f64) {
        let ts = self.ts(t);
        // A still-open span on this track is closed degenerately first; the
        // engine serializes activities per track, so this only fires on
        // truncated (stalled) runs.
        self.close_span(tid, t, None);
        self.open.insert((self.epoch, tid), Open { name, cat, ts });
    }

    fn close_span(&mut self, tid: u64, t: f64, rename: Option<&str>) {
        if let Some(o) = self.open.remove(&(self.epoch, tid)) {
            let ts_end = self.ts(t);
            let name = match rename {
                Some(r) => format!("{} {}", o.name, r),
                None => o.name,
            };
            self.spans.push(Span {
                name,
                cat: o.cat,
                ts: o.ts,
                dur: (ts_end - o.ts).max(0.0),
                pid: self.epoch,
                tid,
            });
        }
    }

    fn instant(&mut self, tid: u64, name: String, t: f64) {
        let ts = self.ts(t);
        self.instants.push(Inst { name, ts, pid: self.epoch, tid });
    }

    /// Serialize as a trace-event-format JSON object
    /// (`{"traceEvents":[...]}`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
            out.push_str("\n  ");
        };
        for (pid, name) in &self.processes {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
                escape(name)
            );
        }
        for ((pid, tid), name) in &self.threads {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
                escape(name)
            );
        }
        for s in &self.spans {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":{}}}",
                escape(&s.name),
                s.cat,
                s.ts,
                s.dur,
                s.pid,
                s.tid
            );
        }
        // Spans left open (stalled runs) are flushed as zero-duration spans
        // at their start so the file is still well-formed.
        for ((pid, tid), o) in &self.open {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"name\":\"{} (unclosed)\",\"cat\":\"{}\",\"ts\":{:.3},\"dur\":0.0,\"pid\":{},\"tid\":{}}}",
                escape(&o.name),
                o.cat,
                o.ts,
                pid,
                tid
            );
        }
        for i in &self.instants {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"i\",\"name\":\"{}\",\"s\":\"t\",\"ts\":{:.3},\"pid\":{},\"tid\":{}}}",
                escape(&i.name),
                i.ts,
                i.pid,
                i.tid
            );
        }
        out.push_str("\n]}\n");
        out
    }
}

fn escape(s: &str) -> String {
    // Names are generated from numeric ids, but escape defensively.
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if u32::from(c) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out
}

impl EventSink for ChromeTrace {
    fn record(&mut self, event: &Event) {
        match *event {
            Event::EpochStarted { epoch, t_offset } => {
                self.epoch = epoch;
                self.t_offset = t_offset;
                self.processes.entry(epoch).or_insert_with(|| format!("epoch {epoch}"));
            }
            Event::VmBooked { vm, category, t } => {
                self.ensure_vm_threads(vm, Some(category));
                self.open_span(u64::from(vm) * 3, format!("boot vm{vm}"), "boot", t);
            }
            Event::VmReady { vm, t } => self.close_span(u64::from(vm) * 3, t, None),
            Event::BootAbandoned { vm, t } => {
                self.close_span(u64::from(vm) * 3, t, Some("(abandoned)"));
                self.instant(u64::from(vm) * 3, format!("boot abandoned vm{vm}"), t);
            }
            Event::TaskStarted { task, vm, t } => {
                self.ensure_vm_threads(vm, None);
                self.open_span(u64::from(vm) * 3, format!("task {task}"), "task", t);
            }
            Event::TaskFinished { vm, t, .. } => self.close_span(u64::from(vm) * 3, t, None),
            Event::TaskAborted { task, vm, t } => {
                self.close_span(u64::from(vm) * 3, t, Some("(aborted)"));
                self.instant(u64::from(vm) * 3, format!("task {task} lost"), t);
            }
            Event::TransferStarted { vm, up, edge, bytes, t } => {
                self.ensure_vm_threads(vm, None);
                let tid = u64::from(vm) * 3 + if up { 2 } else { 1 };
                let dir = if up { "up" } else { "down" };
                let name = if edge < 0 {
                    format!("{dir} ext {:.0}B", bytes)
                } else {
                    format!("{dir} e{edge} {:.0}B", bytes)
                };
                self.open_span(tid, name, "transfer", t);
            }
            Event::TransferFinished { vm, up, t, .. } => {
                self.close_span(u64::from(vm) * 3 + if up { 2 } else { 1 }, t, None);
            }
            Event::TransferAborted { vm, up, t } => {
                let tid = u64::from(vm) * 3 + if up { 2 } else { 1 };
                self.close_span(tid, t, Some("(aborted)"));
            }
            Event::VmCrashed { vm, t } => {
                self.instant(u64::from(vm) * 3, format!("crash vm{vm}"), t);
            }
            Event::DegradationStarted { t, factor } => {
                let pid = self.epoch;
                self.processes.entry(pid).or_insert_with(|| format!("epoch {pid}"));
                self.threads.entry((pid, DC_TID)).or_insert_with(|| "datacenter".to_string());
                self.open_span(DC_TID, format!("degraded x{factor}"), "fault", t);
            }
            Event::DegradationEnded { t } => self.close_span(DC_TID, t, None),
            // Planning decisions and billing do not draw on the timeline.
            _ => {}
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn spans_close_in_order_and_serialize() {
        let events = [
            Event::VmBooked { vm: 0, category: 1, t: 0.0 },
            Event::VmReady { vm: 0, t: 10.0 },
            Event::TaskStarted { task: 3, vm: 0, t: 10.0 },
            Event::TaskFinished { task: 3, vm: 0, t: 25.0 },
            Event::TransferStarted { vm: 0, up: true, edge: 7, bytes: 1e6, t: 25.0 },
            Event::TransferFinished { vm: 0, up: true, edge: 7, t: 30.0 },
        ];
        let tr = ChromeTrace::from_events(&events);
        assert_eq!(tr.span_count(), 3);
        let json = tr.to_json();
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("task 3"));
        assert!(json.contains("thread_name"));
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn crash_closes_open_work_with_instants() {
        let events = [
            Event::VmBooked { vm: 1, category: 0, t: 0.0 },
            Event::VmReady { vm: 1, t: 5.0 },
            Event::TaskStarted { task: 9, vm: 1, t: 5.0 },
            Event::TransferStarted { vm: 1, up: false, edge: -1, bytes: 10.0, t: 5.0 },
            Event::TaskAborted { task: 9, vm: 1, t: 8.0 },
            Event::TransferAborted { vm: 1, up: false, t: 8.0 },
            Event::VmCrashed { vm: 1, t: 8.0 },
        ];
        let tr = ChromeTrace::from_events(&events);
        // boot + aborted task + aborted download are complete spans.
        assert_eq!(tr.span_count(), 3);
        assert!(tr.instant_count() >= 2);
        let json = tr.to_json();
        assert!(json.contains("(aborted)"));
        assert!(json.contains("crash vm1"));
        assert!(json.contains("down ext"));
    }

    #[test]
    fn epoch_offsets_shift_timestamps() {
        let events = [
            Event::EpochStarted { epoch: 1, t_offset: 100.0 },
            Event::VmBooked { vm: 0, category: 0, t: 0.0 },
            Event::VmReady { vm: 0, t: 1.0 },
        ];
        let tr = ChromeTrace::from_events(&events);
        assert_eq!(tr.spans[0].ts, 100.0 * 1e6);
        assert_eq!(tr.spans[0].pid, 1);
    }
}
