//! The budget ledger: every share/spend/pot movement on the planning side,
//! every Eq. 1–2 charge on the execution side, reconciled bit-exactly.
//!
//! Reconciliation works because the emission order mirrors the arithmetic:
//! the engine emits one [`Event::VmBilled`] per VM in report order followed
//! by [`Event::DcBilled`], and the ledger folds costs in that exact order
//! (`vm₀ + vm₁ + … + C_DC`), reproducing `SimulationReport::total_cost`
//! bit-for-bit; recovery accumulates epoch totals the same way the recovery
//! loop accumulates `spent`. [`BudgetLedger::reconcile`] therefore compares
//! with `to_bits` equality — no epsilon.

use crate::event::Event;
use crate::sink::EventSink;

/// The Eq. 5 budget-division record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReservationRecord {
    /// The full initial budget.
    pub initial: f64,
    /// Reserved for datacenter transfers.
    pub reserved_datacenter: f64,
    /// Reserved for VM boot intervals.
    pub reserved_init: f64,
    /// Remainder divided into per-task shares.
    pub b_calc: f64,
}

/// Audit ledger over the budget-relevant slice of the event stream; also an
/// [`EventSink`] (ignores non-budget events), so it can be fed live or via
/// [`BudgetLedger::from_events`].
#[derive(Debug, Clone, Default)]
pub struct BudgetLedger {
    /// The budget-relevant events, in order (the audit trail).
    pub entries: Vec<Event>,
    reservation: Option<ReservationRecord>,
    share_total: f64,
    share_count: u32,
    planned_cost: f64,
    placed_count: u32,
    last_share: f64,
    pot_violations: u32,
    final_pot: f64,
    epoch_vm_sum: f64,
    epoch_totals: Vec<f64>,
    billed_total: f64,
}

impl BudgetLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a ledger from a recorded event stream.
    pub fn from_events(events: &[Event]) -> Self {
        let mut l = Self::new();
        for e in events {
            l.record(e);
        }
        l
    }

    /// The Eq. 5 division, if a budget-aware planner ran.
    pub fn reservation(&self) -> Option<ReservationRecord> {
        self.reservation
    }

    /// Sum of Eq. 6 shares handed out.
    pub fn share_total(&self) -> f64 {
        self.share_total
    }

    /// Planner-side marginal cost committed across all placements.
    pub fn planned_cost(&self) -> f64 {
        self.planned_cost
    }

    /// Tasks placed.
    pub fn placed_count(&self) -> u32 {
        self.placed_count
    }

    /// Leftover pot after the last placement.
    pub fn final_pot(&self) -> f64 {
        self.final_pot
    }

    /// Placements whose pot movement did not replay as
    /// `max(0, pot_before + share − cost)` — always 0 for a well-formed
    /// stream.
    pub fn pot_violations(&self) -> u32 {
        self.pot_violations
    }

    /// Per-epoch billed totals (one entry per [`Event::DcBilled`]).
    pub fn epoch_totals(&self) -> &[f64] {
        &self.epoch_totals
    }

    /// The billed grand total (Σ epochs of `Σ C_v + C_DC`).
    pub fn billed_total(&self) -> f64 {
        self.billed_total
    }

    /// Bit-exact reconciliation against the simulator's bill
    /// (`SimulationReport::total_cost`, or recovery's accumulated `spent`).
    pub fn reconcile(&self, bill: f64) -> bool {
        self.billed_total.to_bits() == bill.to_bits()
    }

    /// Human-readable audit summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "budget ledger ({} entries)", self.entries.len());
        if let Some(r) = self.reservation {
            let _ = writeln!(
                s,
                "  reserved: initial {:.6}  datacenter {:.6}  boot {:.6}  b_calc {:.6}",
                r.initial, r.reserved_datacenter, r.reserved_init, r.b_calc
            );
        }
        let _ = writeln!(
            s,
            "  planning: {} placements  shares {:.6}  committed {:.6}  final pot {:.6}  pot violations {}",
            self.placed_count, self.share_total, self.planned_cost, self.final_pot, self.pot_violations
        );
        for (i, t) in self.epoch_totals.iter().enumerate() {
            let _ = writeln!(s, "  epoch {i}: billed {t:.6}");
        }
        let _ = writeln!(s, "  billed total {:.6}", self.billed_total);
        s
    }
}

impl EventSink for BudgetLedger {
    fn record(&mut self, event: &Event) {
        match *event {
            Event::BudgetReserved { initial, reserved_datacenter, reserved_init, b_calc } => {
                self.reservation = Some(ReservationRecord {
                    initial,
                    reserved_datacenter,
                    reserved_init,
                    b_calc,
                });
                self.entries.push(*event);
            }
            Event::TaskShare { share, .. } => {
                self.share_total += share;
                self.share_count += 1;
                self.last_share = share;
                self.entries.push(*event);
            }
            Event::TaskPlaced { cost, pot_before, pot_after, .. } => {
                self.planned_cost += cost;
                self.placed_count += 1;
                // Replay the pot movement with the same arithmetic as
                // `Pot::settle`; a share-less placement (unconstrained
                // planner) moves nothing.
                let expected = if self.share_count > self.placed_count.saturating_sub(1) {
                    (pot_before + self.last_share - cost).max(0.0)
                } else {
                    pot_before
                };
                if pot_after.to_bits() != expected.to_bits() {
                    self.pot_violations += 1;
                }
                self.final_pot = pot_after;
                self.entries.push(*event);
            }
            Event::EpochStarted { .. } | Event::RecoveryEpoch { .. } => {
                self.entries.push(*event);
            }
            Event::VmBilled { cost, .. } => {
                self.epoch_vm_sum += cost;
                self.entries.push(*event);
            }
            Event::DcBilled { cost, .. } => {
                // Mirrors `total_cost = vm_cost + datacenter_cost` …
                let epoch_total = self.epoch_vm_sum + cost;
                self.epoch_vm_sum = 0.0;
                self.epoch_totals.push(epoch_total);
                // … and recovery's `spent += run.report.total_cost`.
                self.billed_total += epoch_total;
                self.entries.push(*event);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn vm_and_dc_bills_fold_in_order() {
        let costs = [0.125, 0.25, 0.0625];
        let mut l = BudgetLedger::new();
        for (i, &c) in costs.iter().enumerate() {
            l.record(&Event::VmBilled {
                vm: u32::try_from(i).unwrap(),
                category: 0,
                booked_at: 0.0,
                ready_at: 1.0,
                released_at: 2.0,
                cost: c,
                tasks_run: 1,
            });
        }
        l.record(&Event::DcBilled { cost: 0.5, makespan: 2.0 });
        let expected: f64 = costs.iter().sum::<f64>() + 0.5;
        assert!(l.reconcile(expected));
        assert_eq!(l.epoch_totals(), &[expected]);
        assert!(!l.reconcile(expected + 1e-12));
    }

    #[test]
    fn multi_epoch_totals_accumulate() {
        let mut l = BudgetLedger::new();
        for epoch in 0..2u32 {
            l.record(&Event::EpochStarted { epoch, t_offset: f64::from(epoch) * 10.0 });
            l.record(&Event::VmBilled {
                vm: 0,
                category: 0,
                booked_at: 0.0,
                ready_at: 1.0,
                released_at: 2.0,
                cost: 1.0,
                tasks_run: 1,
            });
            l.record(&Event::DcBilled { cost: 0.25, makespan: 5.0 });
        }
        assert_eq!(l.epoch_totals().len(), 2);
        assert!(l.reconcile(2.5));
    }

    #[test]
    fn pot_replay_flags_inconsistencies() {
        let mut l = BudgetLedger::new();
        l.record(&Event::TaskShare { task: 0, share: 2.0 });
        l.record(&Event::TaskPlaced {
            task: 0,
            vm: 0,
            new_vm: true,
            eft: 1.0,
            cost: 1.5,
            limit: 2.0,
            pot_before: 0.0,
            pot_after: 0.5,
        });
        assert_eq!(l.pot_violations(), 0);
        l.record(&Event::TaskShare { task: 1, share: 1.0 });
        l.record(&Event::TaskPlaced {
            task: 1,
            vm: 0,
            new_vm: false,
            eft: 2.0,
            cost: 0.5,
            limit: 1.5,
            pot_before: 0.5,
            pot_after: 99.0, // wrong on purpose
        });
        assert_eq!(l.pot_violations(), 1);
        assert_eq!(l.placed_count(), 2);
        assert_eq!(l.share_total(), 3.0);
        assert!(l.summary().contains("pot violations 1"));
    }
}
