//! Deterministic counters and log-bucket histograms.
//!
//! Counters are named monotone `u64`s in a `BTreeMap`, so iteration (and
//! the rendered table) is deterministic. Histograms bucket durations by
//! `ceil(log2(nanos))` — 64 fixed buckets, no configuration, identical
//! layout on every platform.

use crate::event::Event;
use crate::sink::EventSink;
use std::collections::BTreeMap;

/// A 64-bucket base-2 log histogram of nanosecond durations.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self { buckets: [0; 64], count: 0, sum: 0 }
    }
}

impl Histogram {
    /// Bucket index of a value: 0 holds {0, 1}, bucket `i` holds
    /// `(2^(i-1), 2^i]`.
    pub fn bucket_of(value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            64 - usize::try_from((value - 1).leading_zeros()).unwrap_or(0)
        }
    }

    /// Record one value.
    pub fn add(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value).min(63)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of recorded values, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)] // display statistic only
            {
                self.sum as f64 / self.count as f64
            }
        }
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs; the upper bound
    /// of bucket `i` is `2^i` nanoseconds (`u64::MAX` for bucket 63).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| {
            let bound = if i >= 63 { u64::MAX } else { 1u64 << i };
            (bound, c)
        })
    }
}

/// Counter/histogram sink. Consumes explicit [`Event::Counter`] and
/// [`Event::PhaseNanos`] events and additionally derives a few structural
/// counters (candidate evaluations, placements, simulator activity) from
/// the rest of the stream.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    counts: BTreeMap<&'static str, u64>,
    histos: BTreeMap<&'static str, Histogram>,
}

impl Counters {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a recorded event stream.
    pub fn from_events(events: &[Event]) -> Self {
        let mut c = Self::new();
        for e in events {
            c.record(e);
        }
        c
    }

    /// Increment a named counter.
    pub fn bump(&mut self, name: &'static str, delta: u64) {
        *self.counts.entry(name).or_insert(0) += delta;
    }

    /// Current value of a counter (0 if never bumped).
    pub fn get(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// All counters, in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// The histogram for a phase, if any durations were recorded.
    pub fn histogram(&self, phase: &str) -> Option<&Histogram> {
        self.histos.get(phase)
    }

    /// Render a deterministic text table of counters, followed by phase
    /// timing summaries.
    pub fn table(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let width = self.counts.keys().map(|k| k.len()).max().unwrap_or(8).max(8);
        for (name, v) in &self.counts {
            let _ = writeln!(s, "{name:width$}  {v:>12}");
        }
        for (phase, h) in &self.histos {
            let _ = writeln!(
                s,
                "{phase:width$}  n={} mean={:.0}ns total={}ns",
                h.count(),
                h.mean(),
                h.sum()
            );
            for (bound, c) in h.nonzero_buckets() {
                let _ = writeln!(s, "{:width$}    <= {bound:>12} ns: {c}", "");
            }
        }
        s
    }
}

impl EventSink for Counters {
    fn record(&mut self, event: &Event) {
        match *event {
            Event::Counter { name, delta } => self.bump(name, delta),
            Event::PhaseNanos { phase, nanos } => {
                self.histos.entry(phase).or_default().add(nanos);
            }
            Event::CandidateEvaluated { .. } => self.bump("candidate_evals", 1),
            Event::TaskPlaced { new_vm, .. } => {
                self.bump("tasks_placed", 1);
                if new_vm {
                    self.bump("vms_provisioned", 1);
                }
            }
            Event::RefineMove { .. } => self.bump("refine_moves", 1),
            Event::RecoveryEpoch { .. } => self.bump("recovery_epochs", 1),
            Event::VmBooked { .. } => self.bump("sim_vm_boots", 1),
            Event::BootAbandoned { .. } => self.bump("sim_boots_abandoned", 1),
            Event::TaskStarted { .. } => self.bump("sim_task_starts", 1),
            Event::TaskAborted { .. } => self.bump("sim_tasks_lost", 1),
            Event::TransferStarted { .. } => self.bump("sim_transfers", 1),
            Event::VmCrashed { .. } => self.bump("sim_vm_crashes", 1),
            Event::DegradationStarted { .. } => self.bump("sim_degradations", 1),
            _ => {}
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(5), 3);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64); // clamped by add()
    }

    #[test]
    fn counters_accumulate_and_render() {
        let events = [
            Event::Counter { name: "cache_hits", delta: 3 },
            Event::Counter { name: "cache_hits", delta: 2 },
            Event::PhaseNanos { phase: "plan", nanos: 1500 },
            Event::PhaseNanos { phase: "plan", nanos: 700 },
            Event::CandidateEvaluated {
                task: 0,
                used: false,
                host: 0,
                eft: 1.0,
                cost: 1.0,
                affordable: true,
            },
        ];
        let c = Counters::from_events(&events);
        assert_eq!(c.get("cache_hits"), 5);
        assert_eq!(c.get("candidate_evals"), 1);
        assert_eq!(c.get("absent"), 0);
        let h = c.histogram("plan").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 2200);
        assert_eq!(h.mean(), 1100.0);
        let t = c.table();
        assert!(t.contains("cache_hits"));
        assert!(t.contains("n=2"));
    }
}
