//! # wfs-observe — zero-cost tracing & metrics for the scheduler/simulator
//!
//! A dependency-free observability layer (DESIGN.md §11). Producers —
//! the planners in `wfs-scheduler` and the discrete-event engine in
//! `wfs-simulator` — are generic over [`EventSink`] and emit structured
//! [`Event`]s at every decision and execution point: Eq. 5–6 budget shares,
//! pot movements, candidate EFT/cost evaluations, refinement swaps, recovery
//! epochs, VM boots, task/transfer spans, fault injections, and the Eq. 1–2
//! bill.
//!
//! Three concrete sinks consume the stream:
//!
//! - [`ChromeTrace`] — Chrome-trace-event JSON (per-VM tracks, task and
//!   transfer spans, fault instants), loadable in `chrome://tracing` and
//!   Perfetto;
//! - [`BudgetLedger`] — every share/spend/pot movement, reconciled
//!   *bit-exactly* against the simulator's bill;
//! - [`Counters`] — deterministic named counters plus base-2 log-bucket
//!   histograms of phase timings.
//!
//! [`RecordingSink`] captures the raw stream once and replays it into any
//! of the above. [`NoopSink`] is the zero-cost default: its
//! `ENABLED = false` const makes every guarded emission site dead code, so
//! the untraced entry points compile to the same machine code as before
//! this crate existed.

pub mod chrome;
pub mod counters;
pub mod event;
pub mod ledger;
pub mod sink;

pub use chrome::ChromeTrace;
pub use counters::{Counters, Histogram};
pub use event::Event;
pub use ledger::BudgetLedger;
pub use sink::{EventSink, NoopSink, RecordingSink};
