//! The structured event vocabulary shared by scheduler and simulator.
//!
//! [`Event`] is a flat `Copy` enum over primitives only (`u32`/`u64`/`i64`/
//! `f64`/`&'static str`): the observe crate sits *below* the scheduler and
//! simulator in the dependency graph, so it cannot name their id newtypes.
//! Producers widen `TaskId(u32)`/`VmId(u32)`/`CategoryId(u32)` to bare `u32`
//! at the emission site; `edge` uses `i64` with `-1` meaning "external input"
//! (staged at the datacenter before the run, no [`wfs_workflow`] edge id).
//!
//! Simulation timestamps `t` are seconds on the engine clock of the current
//! epoch; [`Event::EpochStarted`] carries the cumulative wall-clock offset so
//! multi-epoch recovery runs can be laid out on one global timeline.

/// One observation from the planner or the simulator.
///
/// Scheduler-side events describe *decisions* (Eq. 5–6 budget shares, the
/// leftover pot, EFT-vs-cost host filtering, refinement swaps, recovery
/// epochs); simulator-side events describe *execution* (boots, task and
/// transfer spans, fault injections, the Eq. 1–2 bill).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    // ---- scheduler: planning decisions -------------------------------
    /// A planning pass began.
    PlanStarted {
        /// Paper-style algorithm name (e.g. `"HEFTBUDG"`).
        algorithm: &'static str,
        /// Number of tasks in the (residual) workflow.
        tasks: u32,
        /// Budget handed to the planner; `f64::INFINITY` when unconstrained.
        budget: f64,
    },
    /// The Eq. 5 budget division: what was carved off the initial budget.
    BudgetReserved {
        /// The full initial budget `b`.
        initial: f64,
        /// Reserved for datacenter transfers (Eq. 2 provision).
        reserved_datacenter: f64,
        /// Reserved for VM boot intervals.
        reserved_init: f64,
        /// What remains for compute shares (`b_calc`).
        b_calc: f64,
    },
    /// Position of a task in the priority list (HEFT ranking order).
    TaskRanked {
        /// 0-based position in the scheduling order.
        pos: u32,
        /// The task.
        task: u32,
    },
    /// The Eq. 6 per-task budget share.
    TaskShare {
        /// The task.
        task: u32,
        /// Its proportional share of `b_calc`.
        share: f64,
    },
    /// One host candidate was evaluated during selection.
    CandidateEvaluated {
        /// The task being placed.
        task: u32,
        /// `true` = an already-provisioned VM, `false` = a fresh instance.
        used: bool,
        /// VM id when `used`, category id otherwise.
        host: u32,
        /// Earliest finish time on this host.
        eft: f64,
        /// Marginal cost of the placement.
        cost: f64,
        /// Whether the cost fits `share + pot` (rejected candidates carry
        /// `false`).
        affordable: bool,
    },
    /// A task was committed to a host.
    TaskPlaced {
        /// The task.
        task: u32,
        /// The (possibly freshly provisioned) VM.
        vm: u32,
        /// `true` when the commit provisioned a new instance.
        new_vm: bool,
        /// Earliest finish time of the winning candidate.
        eft: f64,
        /// Marginal cost actually spent.
        cost: f64,
        /// The affordability limit used (`share + pot`, or infinity).
        limit: f64,
        /// Leftover pot before settling this task.
        pot_before: f64,
        /// Leftover pot after settling (`max(0, pot + share − cost)`).
        pot_after: f64,
    },
    /// HEFTBUDG+ refinement accepted a reassignment.
    RefineMove {
        /// The task that moved.
        task: u32,
        /// Simulated makespan before the move.
        makespan_before: f64,
        /// Simulated makespan after the move.
        makespan_after: f64,
    },
    /// A recovery epoch is about to simulate.
    EpochStarted {
        /// Epoch number (0 = the initial plan).
        epoch: u32,
        /// Cumulative wall-clock seconds elapsed before this epoch; add to
        /// simulator timestamps to place them on the global timeline.
        t_offset: f64,
    },
    /// A recovery epoch finished simulating.
    RecoveryEpoch {
        /// Epoch number.
        epoch: u32,
        /// Tasks in this epoch's (residual) plan.
        scheduled: u32,
        /// Tasks that became durably complete this epoch.
        newly_durable: u32,
        /// This epoch's bill (`total_cost`).
        cost: f64,
        /// Remaining budget before the epoch was planned.
        budget_before: f64,
        /// This epoch's makespan.
        makespan: f64,
    },

    // ---- cross-cutting: counters and timings -------------------------
    /// A named monotone counter moved by `delta`.
    Counter {
        /// Counter name (static so the event stays `Copy`).
        name: &'static str,
        /// Increment.
        delta: u64,
    },
    /// A named phase took `nanos` wall-clock nanoseconds.
    PhaseNanos {
        /// Phase name.
        phase: &'static str,
        /// Duration in nanoseconds.
        nanos: u64,
    },

    // ---- simulator: execution ----------------------------------------
    /// A VM was booked (boot begins; `H_start,v`).
    VmBooked {
        /// The VM.
        vm: u32,
        /// Its category.
        category: u32,
        /// Engine time.
        t: f64,
    },
    /// A VM finished booting and became operational (charging starts).
    VmReady {
        /// The VM.
        vm: u32,
        /// Engine time.
        t: f64,
    },
    /// A VM exhausted its boot retries and was abandoned (fault layer).
    BootAbandoned {
        /// The VM.
        vm: u32,
        /// Engine time.
        t: f64,
    },
    /// A task's computation started.
    TaskStarted {
        /// The task.
        task: u32,
        /// Host VM.
        vm: u32,
        /// Engine time.
        t: f64,
    },
    /// A task's computation finished.
    TaskFinished {
        /// The task.
        task: u32,
        /// Host VM.
        vm: u32,
        /// Engine time.
        t: f64,
    },
    /// A task's in-flight computation was lost to a crash.
    TaskAborted {
        /// The task.
        task: u32,
        /// Host VM.
        vm: u32,
        /// Engine time.
        t: f64,
    },
    /// A datacenter transfer started on a VM link.
    TransferStarted {
        /// The VM endpoint.
        vm: u32,
        /// `true` = upload to the datacenter, `false` = download.
        up: bool,
        /// Workflow edge id, or `-1` for an externally staged input.
        edge: i64,
        /// Payload size in bytes.
        bytes: f64,
        /// Engine time.
        t: f64,
    },
    /// A datacenter transfer completed.
    TransferFinished {
        /// The VM endpoint.
        vm: u32,
        /// Direction (see [`Event::TransferStarted`]).
        up: bool,
        /// Workflow edge id, or `-1` for an externally staged input.
        edge: i64,
        /// Engine time.
        t: f64,
    },
    /// An in-flight transfer was lost to a crash.
    TransferAborted {
        /// The VM endpoint.
        vm: u32,
        /// Direction.
        up: bool,
        /// Engine time.
        t: f64,
    },
    /// A VM crash-stopped with work remaining.
    VmCrashed {
        /// The VM.
        vm: u32,
        /// Engine time.
        t: f64,
    },
    /// A datacenter bandwidth-degradation window opened.
    DegradationStarted {
        /// Engine time.
        t: f64,
        /// Bandwidth multiplier while the window is active.
        factor: f64,
    },
    /// The degradation window closed.
    DegradationEnded {
        /// Engine time.
        t: f64,
    },

    // ---- simulator: the Eq. 1–2 bill ---------------------------------
    /// One VM's final bill (Eq. 1), emitted in report order so a ledger
    /// summing costs in event order reproduces `vm_cost` bit-exactly.
    VmBilled {
        /// The VM.
        vm: u32,
        /// Its category.
        category: u32,
        /// `H_start,v`.
        booked_at: f64,
        /// Charging start (boot is uncharged).
        ready_at: f64,
        /// `H_end,v`.
        released_at: f64,
        /// Eq. 1 cost of this VM.
        cost: f64,
        /// Tasks it executed.
        tasks_run: u32,
    },
    /// The datacenter bill (Eq. 2) and makespan, closing one run's billing.
    DcBilled {
        /// `C_DC`.
        cost: f64,
        /// The run's makespan.
        makespan: f64,
    },
}

impl Event {
    /// Short stable tag, used for counting and debugging.
    pub fn tag(&self) -> &'static str {
        match self {
            Event::PlanStarted { .. } => "plan_started",
            Event::BudgetReserved { .. } => "budget_reserved",
            Event::TaskRanked { .. } => "task_ranked",
            Event::TaskShare { .. } => "task_share",
            Event::CandidateEvaluated { .. } => "candidate_evaluated",
            Event::TaskPlaced { .. } => "task_placed",
            Event::RefineMove { .. } => "refine_move",
            Event::EpochStarted { .. } => "epoch_started",
            Event::RecoveryEpoch { .. } => "recovery_epoch",
            Event::Counter { .. } => "counter",
            Event::PhaseNanos { .. } => "phase_nanos",
            Event::VmBooked { .. } => "vm_booked",
            Event::VmReady { .. } => "vm_ready",
            Event::BootAbandoned { .. } => "boot_abandoned",
            Event::TaskStarted { .. } => "task_started",
            Event::TaskFinished { .. } => "task_finished",
            Event::TaskAborted { .. } => "task_aborted",
            Event::TransferStarted { .. } => "transfer_started",
            Event::TransferFinished { .. } => "transfer_finished",
            Event::TransferAborted { .. } => "transfer_aborted",
            Event::VmCrashed { .. } => "vm_crashed",
            Event::DegradationStarted { .. } => "degradation_started",
            Event::DegradationEnded { .. } => "degradation_ended",
            Event::VmBilled { .. } => "vm_billed",
            Event::DcBilled { .. } => "dc_billed",
        }
    }
}
