//! The zero-cost sink trait and the two structural sinks.
//!
//! Everything is static dispatch: producers are generic over `S: EventSink`
//! and guard each emission with `if S::ENABLED { sink.record(&...) }`. For
//! [`NoopSink`] the associated const is `false`, so the guard — *including
//! the construction of the event payload* — is dead code the optimizer
//! removes entirely. That is the crate's zero-cost guarantee: the untraced
//! entry points (`simulate`, `Algorithm::run`, …) delegate to the generic
//! implementations with a `NoopSink` and compile to the same machine code as
//! before the observability layer existed (pinned by the equivalence suite
//! and the quickbench zero-overhead gate in `scripts/ci.sh`).

use crate::event::Event;

/// A consumer of [`Event`]s, monomorphized into every producer.
///
/// Implementors are plain accumulators; `record` must not panic. The
/// `ENABLED` const lets producers skip event *construction*, not just
/// delivery, when the sink is the no-op.
pub trait EventSink {
    /// `false` only for [`NoopSink`]; producers guard emissions on it.
    const ENABLED: bool = true;

    /// Consume one event.
    fn record(&mut self, event: &Event);
}

/// The do-nothing sink: `ENABLED = false` makes every guarded emission
/// site dead code.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl EventSink for NoopSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: &Event) {}
}

/// Records the raw event stream for later replay into any number of
/// concrete sinks — the fan-out primitive (`wfs trace` records once, then
/// replays into the Chrome exporter, the ledger, and the counters).
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    /// The events, in emission order.
    pub events: Vec<Event>,
}

impl RecordingSink {
    /// An empty recording.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replay the recorded stream into another sink, in order.
    pub fn replay<S: EventSink>(&self, sink: &mut S) {
        for e in &self.events {
            sink.record(e);
        }
    }
}

impl EventSink for RecordingSink {
    #[inline]
    fn record(&mut self, event: &Event) {
        self.events.push(*event);
    }
}

#[cfg(test)]
// The constant assertions are the point: they pin each sink's ENABLED flag.
#[allow(clippy::unwrap_used, clippy::assertions_on_constants)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_inert() {
        assert!(!NoopSink::ENABLED);
        let mut s = NoopSink;
        s.record(&Event::DegradationEnded { t: 1.0 });
    }

    #[test]
    fn recording_keeps_order_and_replays() {
        let mut r = RecordingSink::new();
        assert!(RecordingSink::ENABLED);
        r.record(&Event::VmReady { vm: 0, t: 1.0 });
        r.record(&Event::VmCrashed { vm: 0, t: 2.0 });
        assert_eq!(r.events.len(), 2);
        assert_eq!(r.events[0].tag(), "vm_ready");

        let mut copy = RecordingSink::new();
        r.replay(&mut copy);
        assert_eq!(copy.events, r.events);
    }
}
