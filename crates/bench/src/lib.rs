//! Shared helpers for the Criterion benchmarks (one bench target per paper
//! table/figure; see DESIGN.md §4).

use wfs_platform::Platform;
use wfs_scheduler::{min_cost_schedule, Algorithm};
use wfs_simulator::{simulate, SimConfig};
use wfs_workflow::gen::{BenchmarkType, GenConfig};
use wfs_workflow::Workflow;

/// The paper's platform.
pub fn platform() -> Platform {
    Platform::paper_default()
}

/// Instance 1 of a benchmark type at a given size, σ = 50 %.
pub fn workflow(ty: BenchmarkType, tasks: usize) -> Workflow {
    ty.generate(GenConfig::new(tasks, 1))
}

/// Cost floor of a workflow (all tasks on one cheapest VM).
pub fn floor_cost(wf: &Workflow, platform: &Platform) -> f64 {
    simulate(wf, platform, &min_cost_schedule(wf, platform), &SimConfig::planning())
        .expect("min-cost schedule is valid")
        .total_cost
}

/// The three characteristic budgets of Table III: low (minimum), high
/// (unconstrained), medium (their average).
pub fn characteristic_budgets(wf: &Workflow, platform: &Platform) -> [(&'static str, f64); 3] {
    let low = floor_cost(wf, platform);
    let heft = Algorithm::Heft.run(wf, platform, f64::INFINITY);
    let high =
        simulate(wf, platform, &heft, &SimConfig::planning()).expect("valid").total_cost * 2.0;
    [("low", low), ("medium", (low + high) / 2.0), ("high", high)]
}
