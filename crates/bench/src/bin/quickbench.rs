//! Dependency-free scheduling-time microbenchmark (Table III(b) trajectory).
//!
//! Times every [`Algorithm`] on MONTAGE / LIGO / CYBERSHAKE at 30, 90 and
//! 400 tasks with `std::time::Instant`, both on the optimized planner fast
//! path and in naive reference mode, and writes the medians (ns per
//! schedule) plus the fast-vs-naive speedup to `BENCH_sched_time.json` at
//! the repository root.
//!
//! Usage: `quickbench [iterations]` — `iterations` is the sample count per
//! cell (default 9; CI smoke runs use 1). Medians over an odd sample count
//! keep one-off scheduler hiccups out of the reported number.

use std::time::Instant;

use wfs_bench::{characteristic_budgets, platform, workflow};
use wfs_scheduler::{reference, Algorithm};
use wfs_workflow::gen::BenchmarkType;
use wfs_workflow::Workflow;

const SIZES: [usize; 3] = [30, 90, 400];
const TYPES: [(&str, BenchmarkType); 3] = [
    ("montage", BenchmarkType::Montage),
    ("ligo", BenchmarkType::Ligo),
    ("cybershake", BenchmarkType::CyberShake),
];

/// Median of `samples` nanosecond measurements (odd counts expected).
fn median(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Time `iterations` runs of `alg` on `wf` and return the median ns.
fn time_algorithm(
    alg: Algorithm,
    wf: &Workflow,
    budget: f64,
    iterations: usize,
) -> u128 {
    let p = platform();
    let mut samples = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let start = Instant::now();
        let schedule = alg.run(wf, &p, budget);
        let elapsed = start.elapsed().as_nanos();
        std::hint::black_box(schedule);
        samples.push(elapsed);
    }
    median(&mut samples)
}

fn main() {
    let iterations: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("iterations must be a positive integer"))
        .unwrap_or(9)
        .max(1);

    let p = platform();
    let mut cells = Vec::new();
    for (ty_name, ty) in TYPES {
        for size in SIZES {
            let wf = workflow(ty, size);
            // Medium budget: the constrained-but-feasible regime where the
            // budget machinery (shares, pot, affordability) is fully active.
            let budget = characteristic_budgets(&wf, &p)[1].1;
            for alg in Algorithm::ALL {
                // The refinement algorithms (HEFTBUDG+/+INV, CG+) spend
                // their time in whole-schedule re-simulations, not in the
                // planner — tens of seconds per run at 400 tasks. Keep them
                // at 30/90 and skip the 400-task cells so the harness stays
                // quick (their planner path is HEFT's / CG's anyway).
                let refinement = matches!(
                    alg,
                    Algorithm::HeftBudgPlus | Algorithm::HeftBudgPlusInv | Algorithm::CgPlus
                );
                if refinement && size == 400 {
                    continue;
                }
                let fast = time_algorithm(alg, &wf, budget, iterations);
                let naive =
                    reference::with_naive(|| time_algorithm(alg, &wf, budget, iterations));
                let speedup = naive as f64 / fast.max(1) as f64;
                eprintln!(
                    "{ty_name}-{size} {:<16} fast {:>12} ns  naive {:>12} ns  speedup {speedup:.2}x",
                    alg.name(),
                    fast,
                    naive
                );
                cells.push(format!(
                    concat!(
                        "    {{\"workflow\": \"{}\", \"tasks\": {}, \"algorithm\": \"{}\", ",
                        "\"fast_ns\": {}, \"naive_ns\": {}, \"speedup\": {:.3}}}"
                    ),
                    ty_name,
                    size,
                    alg.name(),
                    fast,
                    naive,
                    speedup
                ));
            }
        }
    }

    let json = format!(
        "{{\n  \"unit\": \"ns per schedule (median of {iterations})\",\n  \"results\": [\n{}\n  ]\n}}\n",
        cells.join(",\n")
    );
    let out = "BENCH_sched_time.json";
    std::fs::write(out, &json).expect("write benchmark results");
    eprintln!("wrote {out}");
}
