//! Dependency-free scheduling-time microbenchmark (Table III(b) trajectory).
//!
//! Times every [`Algorithm`] on MONTAGE / LIGO / CYBERSHAKE at 30, 90 and
//! 400 tasks with `std::time::Instant`, both on the optimized planner fast
//! path and in naive reference mode, and writes the medians (ns per
//! schedule) plus the fast-vs-naive speedup to `BENCH_sched_time.json` at
//! the repository root.
//!
//! ```text
//! quickbench [iterations] [--out FILE] [--gate PINNED] [--tolerance R]
//! ```
//!
//! `iterations` is the sample count per cell (default 9; CI smoke runs
//! pass 1) — medians over an odd sample count keep one-off scheduler
//! hiccups out of the reported number. `--out` redirects the JSON (so CI can write to a
//! temp file instead of clobbering the pinned numbers). `--gate` compares
//! the measured `fast_ns` medians against a pinned results file and fails
//! (exit 1) when the *median ratio* across all shared cells exceeds
//! `--tolerance` (default 1.5): per-cell times are noisy at low iteration
//! counts, but a genuine systematic regression — e.g. an observability sink
//! that stopped compiling away — shifts every cell, and the median ratio is
//! robust to the handful of outliers that sub-millisecond cells produce.
//! (Full 9-iteration runs on a quiet machine reproduce the pinned medians
//! to within a few percent; the refinement algorithms' cells are dominated
//! by whole-schedule re-simulations and swing the most — see DESIGN.md §11.)

use std::time::Instant;

use wfs_bench::{characteristic_budgets, platform, workflow};
use wfs_scheduler::{reference, Algorithm};
use wfs_workflow::gen::BenchmarkType;
use wfs_workflow::Workflow;

const SIZES: [usize; 3] = [30, 90, 400];
const TYPES: [(&str, BenchmarkType); 3] = [
    ("montage", BenchmarkType::Montage),
    ("ligo", BenchmarkType::Ligo),
    ("cybershake", BenchmarkType::CyberShake),
];

/// Median of `samples` nanosecond measurements (odd counts expected).
fn median(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Time `iterations` runs of `alg` on `wf` and return the median ns.
fn time_algorithm(
    alg: Algorithm,
    wf: &Workflow,
    budget: f64,
    iterations: usize,
) -> u128 {
    let p = platform();
    let mut samples = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let start = Instant::now();
        let schedule = alg.run(wf, &p, budget);
        let elapsed = start.elapsed().as_nanos();
        std::hint::black_box(schedule);
        samples.push(elapsed);
    }
    median(&mut samples)
}

/// Extract a `"key": "string"` field from one line of the results JSON
/// (the file is our own fixed single-cell-per-line format; no JSON parser
/// needed, and the bench crate stays dependency-free).
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extract a `"key": 123` numeric field from one line of the results JSON.
fn json_num_field(line: &str, key: &str) -> Option<u128> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let digits: String =
        line[start..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Load a pinned results file as `(workflow, tasks, algorithm) -> fast_ns`.
fn load_pinned(path: &str) -> Vec<((String, u128, String), u128)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read pinned results {path}: {e}"));
    let mut cells = Vec::new();
    for line in text.lines() {
        let (Some(wf), Some(tasks), Some(alg), Some(fast)) = (
            json_str_field(line, "workflow"),
            json_num_field(line, "tasks"),
            json_str_field(line, "algorithm"),
            json_num_field(line, "fast_ns"),
        ) else {
            continue;
        };
        cells.push(((wf, tasks, alg), fast));
    }
    assert!(!cells.is_empty(), "no benchmark cells found in {path}");
    cells
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut iterations = 9usize;
    let mut out_path = String::from("BENCH_sched_time.json");
    let mut gate_path: Option<String> = None;
    let mut tolerance = 1.5f64;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                i += 1;
                out_path = argv.get(i).expect("--out wants a path").clone();
            }
            "--gate" => {
                i += 1;
                gate_path = Some(argv.get(i).expect("--gate wants a pinned results path").clone());
            }
            "--tolerance" => {
                i += 1;
                tolerance = argv
                    .get(i)
                    .expect("--tolerance wants a ratio")
                    .parse()
                    .expect("tolerance must be a number");
            }
            s => iterations = s.parse().expect("iterations must be a positive integer"),
        }
        i += 1;
    }
    let iterations = iterations.max(1);

    let p = platform();
    let mut cells = Vec::new();
    let mut measured: Vec<((String, u128, String), u128)> = Vec::new();
    for (ty_name, ty) in TYPES {
        for size in SIZES {
            let wf = workflow(ty, size);
            // Medium budget: the constrained-but-feasible regime where the
            // budget machinery (shares, pot, affordability) is fully active.
            let budget = characteristic_budgets(&wf, &p)[1].1;
            for alg in Algorithm::ALL {
                // The refinement algorithms (HEFTBUDG+/+INV, CG+) spend
                // their time in whole-schedule re-simulations, not in the
                // planner — tens of seconds per run at 400 tasks. Keep them
                // at 30/90 and skip the 400-task cells so the harness stays
                // quick (their planner path is HEFT's / CG's anyway).
                let refinement = matches!(
                    alg,
                    Algorithm::HeftBudgPlus | Algorithm::HeftBudgPlusInv | Algorithm::CgPlus
                );
                if refinement && size == 400 {
                    continue;
                }
                let fast = time_algorithm(alg, &wf, budget, iterations);
                let naive =
                    reference::with_naive(|| time_algorithm(alg, &wf, budget, iterations));
                let speedup = naive as f64 / fast.max(1) as f64;
                eprintln!(
                    "{ty_name}-{size} {:<16} fast {:>12} ns  naive {:>12} ns  speedup {speedup:.2}x",
                    alg.name(),
                    fast,
                    naive
                );
                measured.push(
                    ((ty_name.to_string(), size as u128, alg.name().to_string()), fast),
                );
                cells.push(format!(
                    concat!(
                        "    {{\"workflow\": \"{}\", \"tasks\": {}, \"algorithm\": \"{}\", ",
                        "\"fast_ns\": {}, \"naive_ns\": {}, \"speedup\": {:.3}}}"
                    ),
                    ty_name,
                    size,
                    alg.name(),
                    fast,
                    naive,
                    speedup
                ));
            }
        }
    }

    let json = format!(
        "{{\n  \"unit\": \"ns per schedule (median of {iterations})\",\n  \"results\": [\n{}\n  ]\n}}\n",
        cells.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write benchmark results");
    eprintln!("wrote {out_path}");

    if let Some(pin) = gate_path {
        let pinned = load_pinned(&pin);
        let mut ratios: Vec<(f64, String)> = Vec::new();
        for (key, pinned_fast) in &pinned {
            let Some((_, fast)) = measured.iter().find(|(k, _)| k == key) else {
                continue;
            };
            let ratio = *fast as f64 / (*pinned_fast).max(1) as f64;
            ratios.push((ratio, format!("{}-{} {}", key.0, key.1, key.2)));
        }
        assert!(!ratios.is_empty(), "no cells shared between this run and {pin}");
        ratios.sort_by(|a, b| a.0.total_cmp(&b.0));
        let median_ratio = ratios[ratios.len() / 2].0;
        eprintln!(
            "gate vs {pin}: {} cells, median ratio {median_ratio:.3} (tolerance {tolerance:.2})",
            ratios.len()
        );
        for (r, name) in ratios.iter().rev().take(3) {
            eprintln!("  slowest vs pin: {name} at {r:.2}x");
        }
        if median_ratio > tolerance {
            eprintln!(
                "GATE FAILED: median fast-path ratio {median_ratio:.3} exceeds {tolerance:.2} — \
                 a systematic slowdown (is the NoopSink still compiling away?)"
            );
            std::process::exit(1);
        }
        eprintln!("gate OK");
    }
}
