//! Fig. 4 bench: refined competitors — HEFTBUDG+/+INV vs CG+ (the paper
//! reports CG+ an order of magnitude slower than HEFTBUDG+). 30 tasks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfs_bench::{characteristic_budgets, platform, workflow};
use wfs_scheduler::Algorithm;
use wfs_workflow::gen::BenchmarkType;

fn bench_fig4(c: &mut Criterion) {
    let p = platform();
    let mut g = c.benchmark_group("fig4_refined_competitors_30");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.sample_size(10);
    for ty in BenchmarkType::ALL {
        let wf = workflow(ty, 30);
        let [_, (_, medium), _] = characteristic_budgets(&wf, &p);
        for alg in [Algorithm::HeftBudgPlus, Algorithm::HeftBudgPlusInv, Algorithm::CgPlus] {
            g.bench_with_input(
                BenchmarkId::new(alg.name(), ty.name()),
                &(&wf, medium),
                |b, (wf, budget)| b.iter(|| alg.run(wf, &p, *budget)),
            );
        }
    }
    g.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench_fig4
}
criterion_main!(benches);
