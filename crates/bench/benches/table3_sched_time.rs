//! Table III bench: schedule-computation time (a) for MONTAGE-90 at the
//! three characteristic budgets, and (b) vs task count at a high budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfs_bench::{characteristic_budgets, platform, workflow};
use wfs_scheduler::Algorithm;
use wfs_workflow::gen::BenchmarkType;

/// Table III(a): time to schedule MONTAGE-90 under low/medium/high budgets.
fn bench_table3a(c: &mut Criterion) {
    let p = platform();
    let wf = workflow(BenchmarkType::Montage, 90);
    let budgets = characteristic_budgets(&wf, &p);
    let mut g = c.benchmark_group("table3a_montage90");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.sample_size(10);
    for (level, budget) in budgets {
        for alg in [
            Algorithm::MinMin,
            Algorithm::Heft,
            Algorithm::MinMinBudg,
            Algorithm::HeftBudg,
            Algorithm::Bdt,
            Algorithm::Cg,
        ] {
            g.bench_with_input(
                BenchmarkId::new(alg.name(), level),
                &budget,
                |b, &budget| b.iter(|| alg.run(&wf, &p, budget)),
            );
        }
    }
    g.finish();
}

/// Table III(b): time to schedule MONTAGE at 30/60/90/400 tasks, high
/// budget (unrefined algorithms only; the refined ones are covered at
/// realistic sizes by the fig2/fig4 benches).
fn bench_table3b(c: &mut Criterion) {
    let p = platform();
    let mut g = c.benchmark_group("table3b_scaling");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.sample_size(10);
    for n in [30usize, 60, 90, 400] {
        let wf = workflow(BenchmarkType::Montage, n);
        let [_, _, (_, high)] = characteristic_budgets(&wf, &p);
        for alg in [
            Algorithm::MinMin,
            Algorithm::Heft,
            Algorithm::MinMinBudg,
            Algorithm::HeftBudg,
            Algorithm::Bdt,
            Algorithm::Cg,
        ] {
            g.bench_with_input(BenchmarkId::new(alg.name(), n), &high, |b, &budget| {
                b.iter(|| alg.run(&wf, &p, budget))
            });
        }
    }
    g.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench_table3a, bench_table3b
}
criterion_main!(benches);
