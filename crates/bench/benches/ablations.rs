//! Ablation benches for the design choices called out in DESIGN.md §5:
//! the leftover-budget pot, the conservative `w̄+σ` margin (via σ = 0
//! workflows), billing granularity, and finite datacenter capacity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfs_bench::{floor_cost, platform, workflow};
use wfs_platform::BillingPolicy;
use wfs_scheduler::{heft_budg_with_pot, Pot};
use wfs_simulator::{simulate, SimConfig};
use wfs_workflow::gen::{BenchmarkType, GenConfig};

/// Pot on/off: scheduling time and (printed once) the makespan impact.
fn bench_pot(c: &mut Criterion) {
    let p = platform();
    let wf = workflow(BenchmarkType::Montage, 90);
    let budget = floor_cost(&wf, &p) * 2.0;
    // Report the quality effect once, outside the timing loop.
    let cfg = SimConfig::planning();
    let with =
        simulate(&wf, &p, &heft_budg_with_pot(&wf, &p, budget, Pot::new()).0, &cfg).unwrap();
    let without =
        simulate(&wf, &p, &heft_budg_with_pot(&wf, &p, budget, Pot::disabled()).0, &cfg).unwrap();
    println!(
        "ablation_pot: makespan with pot {:.0}s vs without {:.0}s (budget ${budget:.2})",
        with.makespan, without.makespan
    );

    let mut g = c.benchmark_group("ablation_pot");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.sample_size(10);
    g.bench_function("heftbudg_pot_on", |b| {
        b.iter(|| heft_budg_with_pot(&wf, &p, budget, Pot::new()))
    });
    g.bench_function("heftbudg_pot_off", |b| {
        b.iter(|| heft_budg_with_pot(&wf, &p, budget, Pot::disabled()))
    });
    g.finish();
}

/// Conservative margin: scheduling deterministic (σ=0) vs uncertain (σ=1)
/// instances — the margin changes the plan, not the algorithmic cost.
fn bench_sigma_margin(c: &mut Criterion) {
    let p = platform();
    let mut g = c.benchmark_group("ablation_sigma_margin");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.sample_size(10);
    for (label, sigma) in [("sigma0", 0.0), ("sigma100", 1.0)] {
        let wf = BenchmarkType::Montage.generate(GenConfig::new(90, 1).with_sigma_ratio(sigma));
        let budget = floor_cost(&wf, &p) * 2.0;
        g.bench_with_input(BenchmarkId::new("heftbudg", label), &budget, |b, &budget| {
            b.iter(|| heft_budg_with_pot(&wf, &p, budget, Pot::new()))
        });
    }
    g.finish();
}

/// Billing granularity and DC capacity: simulation-side ablations.
fn bench_sim_ablations(c: &mut Criterion) {
    let p = platform();
    let wf = workflow(BenchmarkType::Ligo, 90);
    let budget = floor_cost(&wf, &p) * 2.0;
    let s = heft_budg_with_pot(&wf, &p, budget, Pot::new()).0;

    let mut g = c.benchmark_group("ablation_simulation");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.sample_size(20);
    for (label, billing) in [
        ("per_second", BillingPolicy::PerSecond),
        ("per_hour", BillingPolicy::PerHour),
        ("continuous", BillingPolicy::Continuous),
    ] {
        let pb = platform().with_billing(billing);
        g.bench_function(BenchmarkId::new("billing", label), |b| {
            b.iter(|| simulate(&wf, &pb, &s, &SimConfig::stochastic(1)).unwrap())
        });
    }
    let link = p.datacenter.bandwidth;
    g.bench_function(BenchmarkId::new("dc", "infinite"), |b| {
        b.iter(|| simulate(&wf, &p, &s, &SimConfig::stochastic(1)).unwrap())
    });
    g.bench_function(BenchmarkId::new("dc", "finite_4links"), |b| {
        b.iter(|| {
            simulate(&wf, &p, &s, &SimConfig::stochastic(1).with_dc_capacity(4.0 * link)).unwrap()
        })
    });
    g.finish();
}

/// Extension algorithms: MAX-MIN/SUFFERAGE (budget-aware) and the online
/// controller, timed on the standard 90-task workloads.
fn bench_extensions(c: &mut Criterion) {
    use wfs_scheduler::{run_online, Algorithm, OnlineConfig};
    let p = platform();
    let wf = wfs_bench::workflow(BenchmarkType::Montage, 90);
    let budget = floor_cost(&wf, &p) * 2.0;

    let mut g = c.benchmark_group("extension_algorithms");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.sample_size(10);
    for alg in [Algorithm::MaxMinBudg, Algorithm::SufferageBudg] {
        g.bench_function(alg.name(), |b| b.iter(|| alg.run(&wf, &p, budget)));
    }
    g.bench_function("online_watchdog", |b| {
        b.iter(|| run_online(&wf, &p, budget, OnlineConfig::with_watchdog(1, budget, 1.0)))
    });
    g.bench_function("online_static", |b| {
        b.iter(|| run_online(&wf, &p, budget, OnlineConfig::static_run(1, budget)))
    });
    g.finish();
}

/// Deadline planning: the budget binary search of Eq. 3.
fn bench_deadline(c: &mut Criterion) {
    use wfs_scheduler::min_budget_for_deadline;
    let p = platform();
    let wf = wfs_bench::workflow(BenchmarkType::Montage, 60);
    let mut g = c.benchmark_group("deadline_search");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.sample_size(10);
    g.bench_function("min_budget_loose", |b| {
        b.iter(|| min_budget_for_deadline(&wf, &p, 5000.0))
    });
    g.bench_function("min_budget_tight", |b| {
        b.iter(|| min_budget_for_deadline(&wf, &p, 300.0))
    });
    g.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench_pot, bench_sigma_margin, bench_sim_ablations, bench_extensions, bench_deadline
}
criterion_main!(benches);
