//! Substrate benches: workflow generation, DAG analyses, and raw simulator
//! throughput — the building blocks every figure rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfs_bench::{floor_cost, platform, workflow};
use wfs_scheduler::Algorithm;
use wfs_simulator::{simulate, SimConfig};
use wfs_workflow::analysis::{bottom_levels, levels, WeightMode};
use wfs_workflow::gen::{BenchmarkType, GenConfig};

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("gen");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_millis(1500));
    for ty in BenchmarkType::ALL {
        for n in [90usize, 400] {
            g.bench_with_input(BenchmarkId::new(ty.name(), n), &n, |b, &n| {
                b.iter(|| ty.generate(GenConfig::new(n, 1)))
            });
        }
    }
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let p = platform();
    let wf = workflow(BenchmarkType::Montage, 400);
    let mut g = c.benchmark_group("analysis_montage400");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.bench_function("bottom_levels", |b| {
        b.iter(|| {
            bottom_levels(&wf, WeightMode::Conservative, p.mean_speed(), p.datacenter.bandwidth)
        })
    });
    g.bench_function("levels", |b| b.iter(|| levels(&wf)));
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let p = platform();
    let mut g = c.benchmark_group("simulate");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_millis(1500));
    for n in [90usize, 400] {
        let wf = workflow(BenchmarkType::Montage, n);
        let budget = floor_cost(&wf, &p) * 3.0;
        let s = Algorithm::HeftBudg.run(&wf, &p, budget);
        g.bench_with_input(BenchmarkId::new("montage", n), &s, |b, s| {
            b.iter(|| simulate(&wf, &p, s, &SimConfig::stochastic(1)).unwrap())
        });
    }
    g.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench_generators, bench_analysis, bench_simulator
}
criterion_main!(benches);
