//! Fig. 1 bench: scheduling cost of the four main algorithms on 90-task
//! workflows of each type, at a medium budget — the work one point of
//! Figure 1 requires.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfs_bench::{characteristic_budgets, platform, workflow};
use wfs_scheduler::Algorithm;
use wfs_simulator::{simulate, SimConfig};
use wfs_workflow::gen::BenchmarkType;

fn bench_fig1(c: &mut Criterion) {
    let p = platform();
    let mut g = c.benchmark_group("fig1_schedule_90");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.sample_size(10);
    for ty in BenchmarkType::ALL {
        let wf = workflow(ty, 90);
        let [_, (_, medium), _] = characteristic_budgets(&wf, &p);
        for alg in [
            Algorithm::MinMin,
            Algorithm::Heft,
            Algorithm::MinMinBudg,
            Algorithm::HeftBudg,
        ] {
            g.bench_with_input(
                BenchmarkId::new(alg.name(), ty.name()),
                &(&wf, medium),
                |b, (wf, budget)| b.iter(|| alg.run(wf, &p, *budget)),
            );
        }
    }
    g.finish();

    // The replay cost: one stochastic simulation of a HEFTBUDG schedule.
    let mut g = c.benchmark_group("fig1_replay_90");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.sample_size(20);
    for ty in BenchmarkType::ALL {
        let wf = workflow(ty, 90);
        let [_, (_, medium), _] = characteristic_budgets(&wf, &p);
        let s = Algorithm::HeftBudg.run(&wf, &p, medium);
        g.bench_function(BenchmarkId::new("simulate", ty.name()), |b| {
            b.iter(|| simulate(&wf, &p, &s, &SimConfig::stochastic(1)).unwrap())
        });
    }
    g.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench_fig1
}
criterion_main!(benches);
