//! Fig. 3 bench: the unrefined competitors BDT and CG against MIN-MINBUDG
//! and HEFTBUDG on 90-task workflows (the paper observes their scheduling
//! times are of the same order — Table III backs Fig. 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfs_bench::{characteristic_budgets, platform, workflow};
use wfs_scheduler::Algorithm;
use wfs_workflow::gen::BenchmarkType;

fn bench_fig3(c: &mut Criterion) {
    let p = platform();
    let mut g = c.benchmark_group("fig3_competitors_90");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.sample_size(10);
    for ty in BenchmarkType::ALL {
        let wf = workflow(ty, 90);
        let [_, (_, medium), _] = characteristic_budgets(&wf, &p);
        for alg in
            [Algorithm::MinMinBudg, Algorithm::HeftBudg, Algorithm::Bdt, Algorithm::Cg]
        {
            g.bench_with_input(
                BenchmarkId::new(alg.name(), ty.name()),
                &(&wf, medium),
                |b, (wf, budget)| b.iter(|| alg.run(wf, &p, *budget)),
            );
        }
    }
    g.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench_fig3
}
criterion_main!(benches);
